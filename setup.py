"""Setuptools shim.

The offline environment used for this reproduction ships setuptools without
the ``wheel`` package, so PEP 660 editable installs (which need
``bdist_wheel``) fail.  This shim lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
