"""Table 3 — main results: memory, perplexity and task accuracy per method.

Paper shape (both models): all W3A16 methods use a fraction of the FP16
memory; MiLo-s1 / MiLo-s2 add only a few percent of memory over plain INT3
yet recover most of the perplexity / accuracy loss, beating RTN, GPTQ and
HQQ on every aggregate metric; MiLo-s2 (larger ranks) is at least as good as
MiLo-s1.
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.models import FULL_MODEL_SPECS
from repro.runtime import quantized_model_memory_gb, strategy_compensator_gb

CONFIGS = {
    "mixtral-mini": {
        "spec": "mixtral-8x7b",
        "methods": [
            ("RTN", "rtn", None),
            ("GPTQ", "gptq", None),
            ("HQQ", "hqq", None),
            ("MiLo-s1", "milo", "mixtral-s1"),
            ("MiLo-s2", "milo", "mixtral-s2"),
        ],
    },
    "deepseek-moe-mini": {
        "spec": "deepseek-moe",
        "methods": [
            ("RTN", "rtn", None),
            ("GPTQ", "gptq", None),
            ("HQQ", "hqq", None),
            ("MiLo-s1", "milo", "deepseek-s1"),
            ("MiLo-s2", "milo", "deepseek-s2"),
        ],
    },
}


def full_scale_memory_gb(spec_name: str, strategy: str | None) -> float:
    spec = FULL_MODEL_SPECS[spec_name]
    base = quantized_model_memory_gb(spec, bits=3, group_size=64, asymmetric=True)
    if strategy is None:
        return base
    return base + strategy_compensator_gb(spec, strategy)


def run_table3(evaluation_setups):
    rows = []
    results = {}
    for model_name, config in CONFIGS.items():
        teacher, harness = evaluation_setups(model_name)
        fp16_row = harness.evaluate(teacher, "FP16")
        results[(model_name, "FP16")] = fp16_row
        rows.append(
            {"model": model_name, "method": "FP16",
             "fullscale_gb": round(FULL_MODEL_SPECS[config["spec"]].fp16_gb, 1),
             **fp16_row.as_row()}
        )
        for label, method, strategy in config["methods"]:
            model, report = compress_model(model_name, method, bits=3, strategy=strategy)
            row = harness.evaluate(model, label)
            results[(model_name, label)] = row
            rows.append(
                {"model": model_name, "method": label,
                 "fullscale_gb": round(full_scale_memory_gb(config["spec"], strategy), 2),
                 **row.as_row()}
            )
    return rows, results


@pytest.mark.benchmark(group="table3")
def test_table3_main_results(benchmark, evaluation_setups):
    rows, results = benchmark.pedantic(
        run_table3, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "table3_main_results",
        format_rows(rows, title="Table 3: main results (W3A16, group size 64)"),
    )

    for model_name in CONFIGS:
        fp16 = results[(model_name, "FP16")]
        rtn = results[(model_name, "RTN")]
        hqq = results[(model_name, "HQQ")]
        gptq = results[(model_name, "GPTQ")]
        s1 = results[(model_name, "MiLo-s1")]
        s2 = results[(model_name, "MiLo-s2")]

        # Quantization degrades quality; MiLo recovers most of it.
        for baseline in (rtn, hqq, gptq):
            assert baseline.wikitext2_ppl > fp16.wikitext2_ppl
        best_milo_ppl = min(s1.wikitext2_ppl, s2.wikitext2_ppl)
        assert best_milo_ppl < rtn.wikitext2_ppl
        assert best_milo_ppl < hqq.wikitext2_ppl
        assert best_milo_ppl < gptq.wikitext2_ppl

        # Zero-shot and few-shot accuracy favour MiLo over the calibration-free baselines.
        best_milo_avg = max(s1.zero_shot_average, s2.zero_shot_average)
        assert best_milo_avg > rtn.zero_shot_average
        assert best_milo_avg > hqq.zero_shot_average
        assert max(s1.task_scores["mmlu-syn"], s2.task_scores["mmlu-syn"]) > min(
            rtn.task_scores["mmlu-syn"], hqq.task_scores["mmlu-syn"]
        )

        # Memory: compensators cost only a few percent over plain INT3.
        assert s1.memory_mb < 1.12 * hqq.memory_mb
        assert s2.memory_mb >= s1.memory_mb

    # Full-scale memory projections reproduce the Table 3 "Memory" column shape:
    # ~20.5 GB -> ~20.8 GB for Mixtral, ~7.7 GB -> ~8.0 GB for DeepSeek.
    assert full_scale_memory_gb("mixtral-8x7b", None) == pytest.approx(20.5, rel=0.1)
    assert full_scale_memory_gb("mixtral-8x7b", "mixtral-s1") == pytest.approx(20.8, rel=0.1)
    assert full_scale_memory_gb("deepseek-moe", None) == pytest.approx(7.67, rel=0.1)
    assert full_scale_memory_gb("deepseek-moe", "deepseek-s1") == pytest.approx(7.98, rel=0.1)
