"""Fig. 4 — information loss and its recovery by low-rank compensation.

Paper shape: for a heavy-tailed attention projection the INT3 histogram
overlaps the FP16 histogram poorly at moderate magnitudes, INT4 closes part
of the gap, and INT3 + a low-rank compensator closes most of it.  For a
light-tailed expert projection the effect is much weaker.
"""

import pytest

from _helpers import format_rows, save_result
from repro.analysis import information_loss_report
from repro.models import build_model


def _relative_recovery(weight, rank=16):
    """Fraction of the INT3 Frobenius error removed by the low-rank compensator."""
    import numpy as np

    from repro.core import MiLoConfig, MiLoMatrixOptimizer
    from repro.quant import HQQConfig, HQQQuantizer

    base = np.linalg.norm(
        weight - HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(weight).dequantize()
    )
    milo = MiLoMatrixOptimizer(MiLoConfig(bits=3, group_size=64, max_iterations=3))
    compensated = np.linalg.norm(weight - milo.optimize(weight, rank).reconstructed())
    return (base - compensated) / base


def run_fig4():
    model = build_model("mixtral-mini")
    attn_weight = model.get_submodule("layer_0.attn.q_proj").weight.data
    expert_weight = model.get_submodule("layer_0.ffn.expert_0.w1").weight.data
    attn = information_loss_report(attn_weight, rank=16)
    expert = information_loss_report(expert_weight, rank=16)
    recovery = {
        "attention": _relative_recovery(attn_weight),
        "expert": _relative_recovery(expert_weight),
    }
    rows = []
    for kind, report in (("attention", attn), ("expert", expert)):
        for variant, overlap in report.items():
            rows.append(
                {
                    "layer_kind": kind,
                    "variant": variant,
                    "histogram_overlap": round(overlap, 4),
                    "relative_error_recovered_by_lorc": round(recovery[kind], 4),
                }
            )
    return rows, attn, expert, recovery


@pytest.mark.benchmark(group="fig4")
def test_fig4_information_loss(benchmark):
    rows, attn, expert, recovery = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    save_result(
        "fig4_information_loss",
        format_rows(rows, title="Fig. 4: distribution overlap with FP16 (higher = less information loss)"),
    )

    # Attention (heavy-tailed): INT3 < INT4, and the compensator closes the gap.
    assert attn["int3"] < attn["int4"]
    assert attn["int3+lorc"] > attn["int3"]
    assert attn["int3+lorc"] >= attn["int4"] - 0.05

    # The expert weight also loses information at INT3 but the compensator's
    # *relative error recovery* is clearly larger on the heavy-tailed
    # attention weight (the operative claim behind Fig. 4a vs 4b).
    assert expert["int3+lorc"] > expert["int3"]
    assert recovery["attention"] > recovery["expert"]
