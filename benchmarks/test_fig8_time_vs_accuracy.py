"""Fig. 8 — quantization time vs MMLU accuracy.

Paper shape: RTN and HQQ are fast but less accurate, GPTQ is the slowest by a
wide margin, and MiLo reaches the best accuracy at roughly 3x less
(full-scale) quantization time than GPTQ.
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.quant import project_full_model_time

METHODS = [
    ("RTN", "rtn", None),
    ("HQQ", "hqq", None),
    ("GPTQ", "gptq", None),
    ("MiLo", "milo", "mixtral-s1"),
]


def run_fig8(evaluation_setups):
    teacher, harness = evaluation_setups("mixtral-mini")
    rows, results = [], {}
    for label, method, strategy in METHODS:
        model, report = compress_model("mixtral-mini", method, bits=3, strategy=strategy)
        mmlu = harness.evaluate(model, label, tasks=["mmlu-syn"]).task_scores["mmlu-syn"]
        projected = project_full_model_time(method, 46.7)
        results[label] = {"mmlu": mmlu, "measured_s": report.quant_time_s, "projected_s": projected}
        rows.append(
            {
                "method": label,
                "mmlu_syn": round(mmlu, 2),
                "measured_quant_time_s": round(report.quant_time_s, 2),
                "projected_fullscale_time_s": round(projected, 0),
            }
        )
    return rows, results


@pytest.mark.benchmark(group="fig8")
def test_fig8_quantization_time_vs_accuracy(benchmark, evaluation_setups):
    rows, results = benchmark.pedantic(
        run_fig8, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "fig8_time_vs_accuracy",
        format_rows(rows, title="Fig. 8: quantization time vs MMLU accuracy (Mixtral)"),
    )

    # MiLo reaches the best accuracy of all methods.
    assert results["MiLo"]["mmlu"] >= max(r["mmlu"] for r in results.values()) - 1e-9

    # Calibration-free methods are fast; GPTQ is the slowest at full scale and
    # MiLo sits in between, at least 3x cheaper than GPTQ (the paper's claim).
    assert results["RTN"]["projected_s"] < results["HQQ"]["projected_s"]
    assert results["HQQ"]["projected_s"] < results["MiLo"]["projected_s"]
    assert results["MiLo"]["projected_s"] * 3 <= results["GPTQ"]["projected_s"]

    # Measured mini-scale times keep RTN fastest.
    assert results["RTN"]["measured_s"] <= min(
        results["HQQ"]["measured_s"], results["GPTQ"]["measured_s"], results["MiLo"]["measured_s"]
    )
