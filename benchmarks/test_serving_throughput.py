"""Serving throughput under load — MiLo vs FP16 / GPTQ / MARLIN backends.

Beyond Table 7: the paper reports single-step decode latency per backend;
this bench drives the same latency models through the continuous-batching
serving engine (:mod:`repro.serving`) and checks that the memory savings
translate into *serving capacity*:

* PyTorch FP16 cannot host Mixtral-8x7B at all (max batch 0 via the shared
  typed OOM path), and even where it fits (DeepSeek-MoE) its KV block pool —
  and therefore its max sustainable batch — is strictly smaller than the
  3-bit MiLo backend's under the same 40 GB budget;
* GPTQ's batch-1 GeMV kernel collapses under concurrent load (its sustained
  QPS sits far below the offered rate);
* MiLo sustains at least MARLIN's throughput with lower p50 TTFT/TPOT, the
  serving-level reflection of the 1.2x kernel gap;
* on a KV-bound workload, the on-demand allocation policy packs a strictly
  larger concurrent batch into the same 40 GB MiLo pool than full-extent
  reservation (the policy comparison section of the results file), because
  reservation pins the unwritten decode budget of every running sequence.
"""

import pytest

from _helpers import format_rows, save_result
from repro.runtime import OutOfMemoryError
from repro.runtime.backends import (
    GPTQ3bitBackend,
    MarlinBackend,
    MiLoBackend,
    PyTorchFP16Backend,
)
from repro.serving import EngineConfig, ServingEngine, poisson_workload

SEQ_TOKENS = 192  # 128-token prompt + 64 decode tokens
CAPACITY_CONFIG = EngineConfig(max_batch_size=100_000)  # let KV capacity bind



def _backends():
    return {
        "PyTorch-FP16": PyTorchFP16Backend(),
        "GPTQ3bit": GPTQ3bitBackend(),
        "MARLIN": MarlinBackend(serve_asymmetric_model=True),
        "MiLo": MiLoBackend(),
    }


def _max_batch(backend, model: str) -> int:
    try:
        return ServingEngine(backend, model, CAPACITY_CONFIG).max_batch_size(SEQ_TOKENS)
    except OutOfMemoryError:
        return 0


def run_serving_comparison():
    workload = poisson_workload(80, qps=6.0, seed=0)
    rows = []
    reports = {}
    for name, backend in _backends().items():
        max_batch = _max_batch(backend, "mixtral-8x7b")
        row = {"backend": name, "max_batch@192tok": max_batch}
        try:
            report = ServingEngine(backend, "mixtral-8x7b").run(workload)
            reports[name] = report
            row.update(
                qps=round(report.sustained_qps, 2),
                ttft_p50_ms=round(report.ttft["p50"] * 1e3, 2),
                ttft_p95_ms=round(report.ttft["p95"] * 1e3, 2),
                tpot_p50_ms=round(report.tpot["p50"] * 1e3, 2),
                peak_batch=report.peak_batch,
            )
        except OutOfMemoryError:
            reports[name] = None
            row.update(qps="OOM", ttft_p50_ms="-", ttft_p95_ms="-", tpot_p50_ms="-", peak_batch="-")
        rows.append(row)

    capacity = {
        name: {
            "mixtral-8x7b": _max_batch(backend, "mixtral-8x7b"),
            "deepseek-moe": _max_batch(backend, "deepseek-moe"),
        }
        for name, backend in _backends().items()
    }
    return rows, reports, capacity


def run_policy_comparison():
    """Reservation vs on-demand KV allocation on a KV-bound MiLo workload.

    Both engines see the identical 40 GB device and config; a large
    activation/workspace reservation leaves a tight KV budget, the regime
    where decode batches are small enough to stay memory-bound — so every
    extra concurrent sequence the allocation policy packs in converts almost
    directly into sustained QPS.  Lengths are constant (jitter 0) so each
    request reserves exactly ``prompt + max_new`` tokens under the
    reservation policy while writing them only gradually — the gap the
    on-demand policy spends on additional concurrency.
    """
    workload = poisson_workload(
        300, qps=16.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=256, length_jitter=0.0
    )
    rows = []
    reports = {}
    for policy in ("reserve", "ondemand"):
        config = EngineConfig(max_batch_size=100_000, kv_policy=policy, reserve_gb=17.0)
        report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
        reports[policy] = report
        rows.append(
            {
                "kv_policy": policy,
                "peak_batch": report.peak_batch,
                "qps": round(report.sustained_qps, 2),
                "ttft_p50_s": round(report.ttft["p50"], 2),
                "preemptions": report.preemptions,
                "recomputed_tokens": report.recomputed_tokens,
                "kv_util_peak": round(report.kv_utilization_peak, 3),
            }
        )
    return rows, reports


@pytest.mark.benchmark(group="serving")
def test_serving_throughput_under_load(benchmark):
    def run_all():
        return run_serving_comparison(), run_policy_comparison()

    (rows, reports, capacity), (policy_rows, policy_reports) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    save_result(
        "serving_throughput",
        format_rows(
            rows,
            title="Serving under load: Poisson 6 QPS, 80 requests, Mixtral-8x7B (modeled A100-40GB)",
        )
        + "\n\n"
        + format_rows(
            policy_rows,
            title=(
                "KV policy comparison: MiLo backend, Poisson 16 QPS, 300 requests of "
                "128+256 tokens (KV-bound: 17 GB activation reserve, same 40 GB device)"
            ),
        ),
    )

    # On-demand allocation packs a strictly larger concurrent batch into the
    # same pool than full-extent reservation AND sustains higher QPS (the
    # memory-bound decode regime, where concurrency is throughput), without
    # dropping requests; reservation by construction never preempts.
    reserve, ondemand = policy_reports["reserve"], policy_reports["ondemand"]
    assert reserve.completed == ondemand.completed == 300
    assert ondemand.peak_batch > reserve.peak_batch
    assert ondemand.sustained_qps > reserve.sustained_qps
    assert reserve.preemptions == 0 and reserve.recomputed_tokens == 0

    # FP16 cannot host Mixtral at all; the quantized backends can.
    assert reports["PyTorch-FP16"] is None
    assert capacity["PyTorch-FP16"]["mixtral-8x7b"] == 0
    assert capacity["MiLo"]["mixtral-8x7b"] > 0

    # Memory savings -> strictly larger sustainable batch, on both models
    # (including DeepSeek-MoE where FP16 does fit).
    for model in ("mixtral-8x7b", "deepseek-moe"):
        assert capacity["MiLo"][model] > capacity["PyTorch-FP16"][model]
    assert capacity["MiLo"]["deepseek-moe"] > 0 and capacity["PyTorch-FP16"]["deepseek-moe"] > 0

    milo, marlin, gptq = reports["MiLo"], reports["MARLIN"], reports["GPTQ3bit"]

    # GPTQ's batch-1 GeMV kernel cannot keep up with concurrent traffic.
    assert gptq.sustained_qps < 0.5 * milo.sustained_qps

    # MiLo at least matches MARLIN's throughput with lower latency.
    assert milo.sustained_qps >= 0.95 * marlin.sustained_qps
    assert milo.ttft["p50"] < marlin.ttft["p50"]
    assert milo.tpot["p50"] < marlin.tpot["p50"]

    # Everyone who fits completes the whole workload (queue-mode admission).
    for name in ("GPTQ3bit", "MARLIN", "MiLo"):
        assert reports[name].completed == 80
        assert reports[name].rejected == 0
