"""Serving throughput under load — MiLo vs FP16 / GPTQ / MARLIN backends.

Beyond Table 7: the paper reports single-step decode latency per backend;
this bench drives the same latency models through the continuous-batching
serving engine (:mod:`repro.serving`) and checks that the memory savings
translate into *serving capacity*:

* PyTorch FP16 cannot host Mixtral-8x7B at all (max batch 0 via the shared
  typed OOM path), and even where it fits (DeepSeek-MoE) its KV block pool —
  and therefore its max sustainable batch — is strictly smaller than the
  3-bit MiLo backend's under the same 40 GB budget;
* GPTQ's batch-1 GeMV kernel collapses under concurrent load (its sustained
  QPS sits far below the offered rate);
* MiLo sustains at least MARLIN's throughput with lower p50 TTFT/TPOT, the
  serving-level reflection of the 1.2x kernel gap;
* on a KV-bound workload, the on-demand allocation policy packs a strictly
  larger concurrent batch into the same 40 GB MiLo pool than full-extent
  reservation (the policy comparison section of the results file), because
  reservation pins the unwritten decode budget of every running sequence;
* on shared-prefix traffic (K system prompts), prefix caching stores each
  group's common KV blocks once: the same VRAM sustains a strictly larger
  peak batch with strictly fewer physical block allocations and higher QPS
  than the identical traffic without sharing (the prefix-sharing section);
* sharding the KV pool and the routed experts across 1/2/4 devices scales
  sustained QPS, and — at equal total VRAM — frequency-aware expert
  placement strictly beats round-robin under the paper's Fig. 3 routing
  skew, because the iteration cost is the max over per-device expert loads
  (the cluster-scaling section).
"""

from dataclasses import replace

import pytest

from _helpers import format_rows, save_result
from repro.analysis.expert_frequency import (
    fig3_layer_frequencies,
    fig3_reference_frequencies,
)
from repro.runtime import OutOfMemoryError
from repro.runtime.backends import (
    GPTQ3bitBackend,
    MarlinBackend,
    MiLoBackend,
    PyTorchFP16Backend,
)
from repro.serving import EngineConfig, ServingEngine, poisson_workload

SEQ_TOKENS = 192  # 128-token prompt + 64 decode tokens
CAPACITY_CONFIG = EngineConfig(max_batch_size=100_000)  # let KV capacity bind



def _backends():
    return {
        "PyTorch-FP16": PyTorchFP16Backend(),
        "GPTQ3bit": GPTQ3bitBackend(),
        "MARLIN": MarlinBackend(serve_asymmetric_model=True),
        "MiLo": MiLoBackend(),
    }


def _max_batch(backend, model: str) -> int:
    try:
        return ServingEngine(backend, model, CAPACITY_CONFIG).max_batch_size(SEQ_TOKENS)
    except OutOfMemoryError:
        return 0


def run_serving_comparison():
    workload = poisson_workload(80, qps=6.0, seed=0)
    rows = []
    reports = {}
    for name, backend in _backends().items():
        max_batch = _max_batch(backend, "mixtral-8x7b")
        row = {"backend": name, "max_batch@192tok": max_batch}
        try:
            report = ServingEngine(backend, "mixtral-8x7b").run(workload)
            reports[name] = report
            row.update(
                qps=round(report.sustained_qps, 2),
                ttft_p50_ms=round(report.ttft["p50"] * 1e3, 2),
                ttft_p95_ms=round(report.ttft["p95"] * 1e3, 2),
                tpot_p50_ms=round(report.tpot["p50"] * 1e3, 2),
                peak_batch=report.peak_batch,
            )
        except OutOfMemoryError:
            reports[name] = None
            row.update(qps="OOM", ttft_p50_ms="-", ttft_p95_ms="-", tpot_p50_ms="-", peak_batch="-")
        rows.append(row)

    capacity = {
        name: {
            "mixtral-8x7b": _max_batch(backend, "mixtral-8x7b"),
            "deepseek-moe": _max_batch(backend, "deepseek-moe"),
        }
        for name, backend in _backends().items()
    }
    return rows, reports, capacity


def run_policy_comparison():
    """Reservation vs on-demand KV allocation on a KV-bound MiLo workload.

    Both engines see the identical 40 GB device and config; a large
    activation/workspace reservation leaves a tight KV budget, the regime
    where decode batches are small enough to stay memory-bound — so every
    extra concurrent sequence the allocation policy packs in converts almost
    directly into sustained QPS.  Lengths are constant (jitter 0) so each
    request reserves exactly ``prompt + max_new`` tokens under the
    reservation policy while writing them only gradually — the gap the
    on-demand policy spends on additional concurrency.
    """
    workload = poisson_workload(
        300, qps=16.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=256, length_jitter=0.0
    )
    rows = []
    reports = {}
    for policy in ("reserve", "ondemand"):
        config = EngineConfig(max_batch_size=100_000, kv_policy=policy, reserve_gb=17.0)
        report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
        reports[policy] = report
        rows.append(
            {
                "kv_policy": policy,
                "peak_batch": report.peak_batch,
                "qps": round(report.sustained_qps, 2),
                "ttft_p50_s": round(report.ttft["p50"], 2),
                "preemptions": report.preemptions,
                "recomputed_tokens": report.recomputed_tokens,
                "kv_util_peak": round(report.kv_utilization_peak, 3),
            }
        )
    return rows, reports


def run_prefix_sharing_comparison():
    """Prefix caching vs no sharing on identical shared-prefix traffic.

    Four 512-token system prompts front a short per-request private part; a
    tight KV budget makes the pool bind.  With prefix caching each group's
    common blocks are stored once (and their prefill compute skipped), so at
    equal VRAM the engine packs a strictly larger concurrent batch from
    strictly fewer physical block allocations — the memory half of the vLLM
    design compounding the paper's quantization savings.
    """
    workload = poisson_workload(
        200, qps=16.0, seed=0, mean_prompt_tokens=64, mean_new_tokens=128,
        length_jitter=0.0, shared_prefix_tokens=512, prefix_groups=4,
    )
    unshared = [replace(r, prefix_id=None, prefix_tokens=0) for r in workload]
    rows = []
    results = {}
    for label, wl in (("shared-prefix", workload), ("no-sharing", unshared)):
        config = EngineConfig(max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0)
        engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        report = engine.run(wl)
        results[label] = (report, engine.block_manager.physical_allocs)
        rows.append(
            {
                "workload": label,
                "peak_batch": report.peak_batch,
                "qps": round(report.sustained_qps, 2),
                "ttft_p50_s": round(report.ttft["p50"], 2),
                "blocks_allocated": engine.block_manager.physical_allocs,
                "hit_tokens": report.prefix_hit_tokens,
                "shared_blocks_peak": report.prefix_shared_blocks_peak,
                "dedup_ratio": round(report.prefix_dedup_ratio, 2),
            }
        )
    return rows, results


def run_cluster_scaling():
    """QPS at 1/2/4 devices under Fig. 3-skewed routing, per placement.

    DeepSeek-grade skew (11.7x max/min) over Mixtral's 8 experts.  The
    iteration cost is the max over per-device costs, so whichever device the
    round-robin placement hands the hot experts becomes the straggler every
    iteration; frequency-aware (LPT) placement flattens the expert mass.
    The acceptance comparison is *equal total VRAM*: both placements run on
    the identical 4-device group, and the only difference is which device
    hosts which expert.
    """
    freqs = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))
    workload = poisson_workload(
        250, qps=32.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=192,
        length_jitter=0.0,
    )
    rows = []
    reports = {}
    for devices in (1, 2, 4):
        for placement in ("balanced", "frequency"):
            if devices == 1 and placement == "frequency":
                continue  # one device hosts every expert either way
            config = EngineConfig(
                max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0,
                devices=devices, placement=placement, expert_frequencies=freqs,
            )
            report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
            reports[(devices, placement)] = report
            cluster = report.to_dict().get("cluster")
            rows.append(
                {
                    "devices": devices,
                    "placement": placement if devices > 1 else "-",
                    "qps": round(report.sustained_qps, 2),
                    "ttft_p50_s": round(report.ttft["p50"], 2),
                    "peak_batch": report.peak_batch,
                    "straggler": round(cluster["straggler_ratio"], 3) if cluster else 1.0,
                    "alltoall_tok": int(cluster["alltoall_tokens"]) if cluster else 0,
                    "experts/dev": (
                        "/".join(str(p["experts"]) for p in cluster["per_device"])
                        if cluster
                        else "8"
                    ),
                }
            )
    return rows, reports


def run_overlap_scaling():
    """Serial vs overlap-aware layered cost model at 2/4/8 devices.

    Both rows of each pair share everything — device group, frequency
    placement packed from the flat Fig. 3 profile, KV pools, workload.  The
    overlap rows additionally model the per-layer truth (depth-varying skew,
    rotated hot expert — :func:`fig3_layer_frequencies`), hide each layer's
    all-to-all under the next layer's compute, and re-pack layers whose
    measured routing drifts from the profile (pricing the moved expert
    weights over the interconnect).  Overlap hides most of the
    communication and flattens the per-layer stragglers the whole-model
    placement cannot see, so sustained QPS rises and the straggler ratio
    falls at every device count.
    """
    freqs = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))
    layer_rows = tuple(tuple(r) for r in fig3_layer_frequencies(32, 8))
    workload = poisson_workload(
        250, qps=32.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=192,
        length_jitter=0.0,
    )
    rows = []
    reports = {}
    for devices in (2, 4, 8):
        for mode in ("serial", "overlap"):
            config = EngineConfig(
                max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0,
                devices=devices, placement="frequency", expert_frequencies=freqs,
                overlap=(mode == "overlap"),
                layer_frequencies=layer_rows if mode == "overlap" else None,
                replacement_threshold=0.1 if mode == "overlap" else None,
            )
            report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
            reports[(devices, mode)] = report
            d = report.to_dict()
            overlap = d.get("overlap") or {}
            rows.append(
                {
                    "devices": devices,
                    "mode": mode,
                    "qps": round(report.sustained_qps, 3),
                    "sim_time_s": round(report.sim_time_s, 2),
                    "straggler": round(d["cluster"]["straggler_ratio"], 4),
                    "overlap_ratio": (
                        round(overlap["overlap_ratio"], 3) if overlap else "-"
                    ),
                    "hidden_ms": (
                        round(overlap["hidden_comm_s"] * 1e3, 2) if overlap else "-"
                    ),
                    "repl": overlap.get("replacements", "-"),
                    "migration_ms": (
                        round(overlap["migration_s"] * 1e3, 2) if overlap else "-"
                    ),
                }
            )
    return rows, reports


def run_disagg_comparison():
    """Colocated vs disaggregated prefill/decode, recompute vs swap resume.

    Four devices, on-demand allocation, pools shrunk to 40 blocks so
    preemption pressure is real.  Disaggregation pays for every
    prefill→decode handoff over the interconnect, and under recompute
    preemption a full decode pool livelocks handoffs into preempt/retry
    churn; swap-to-host converts that churn into cheap host-bandwidth
    stalls — the migration section prices the swap-in seconds next to what
    recompute of the same KV would have cost, making the tradeoff a
    measured number instead of a design argument.
    """
    workload_kwargs = dict(
        num_requests=40, qps=60.0, seed=13, mean_prompt_tokens=96,
        mean_new_tokens=96,
    )
    cases = {
        "colocated": dict(),
        "disagg-recompute": dict(prefill_devices=1, decode_devices=3),
        "disagg-swap": dict(
            prefill_devices=1, decode_devices=3, preempt_mode="swap"
        ),
    }
    rows = []
    results = {}
    for label, extra in cases.items():
        config = EngineConfig(
            devices=4, kv_policy="ondemand", block_size=8,
            max_batch_size=1000, **extra,
        )
        engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        for pool in engine.block_manager.pools:
            pool.num_blocks = 40
        report = engine.run(poisson_workload(**workload_kwargs))
        migration = report.to_dict().get("migration", {})
        results[label] = (report, migration)
        rows.append(
            {
                "config": label,
                "sim_time_s": round(report.sim_time_s, 2),
                "qps": round(report.sustained_qps, 2),
                "preempt": report.preemptions,
                "handoffs": migration.get("handoffs", 0),
                "handoff_ms": round(migration.get("handoff_s", 0.0) * 1e3, 3),
                "rebal": migration.get("rebalances", 0),
                "swap_in_ms": round(migration.get("swap_in_s", 0.0) * 1e3, 3),
                "recompute_eq_s": round(
                    migration.get("recompute_equivalent_s", 0.0), 3
                ),
            }
        )
    return rows, results


@pytest.mark.benchmark(group="serving")
def test_serving_throughput_under_load(benchmark):
    def run_all():
        return (
            run_serving_comparison(),
            run_policy_comparison(),
            run_prefix_sharing_comparison(),
            run_cluster_scaling(),
            run_overlap_scaling(),
            run_disagg_comparison(),
        )

    (
        (rows, reports, capacity),
        (policy_rows, policy_reports),
        (prefix_rows, prefix_results),
        (cluster_rows, cluster_reports),
        (overlap_rows, overlap_reports),
        (disagg_rows, disagg_results),
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        "serving_throughput",
        format_rows(
            rows,
            title="Serving under load: Poisson 6 QPS, 80 requests, Mixtral-8x7B (modeled A100-40GB)",
        )
        + "\n\n"
        + format_rows(
            policy_rows,
            title=(
                "KV policy comparison: MiLo backend, Poisson 16 QPS, 300 requests of "
                "128+256 tokens (KV-bound: 17 GB activation reserve, same 40 GB device)"
            ),
        )
        + "\n\n"
        + format_rows(
            prefix_rows,
            title=(
                "Prefix sharing: MiLo ondemand, Poisson 16 QPS, 200 requests of "
                "512 shared + 64 private prompt tokens across 4 prefix groups "
                "(same KV-bound 40 GB device, with vs without prefix caching)"
            ),
        )
        + "\n\n"
        + format_rows(
            cluster_rows,
            title=(
                "Cluster scaling: MiLo ondemand, Poisson 32 QPS, 250 requests of "
                "128+192 tokens, Fig. 3 skew 11.7x over 8 experts "
                "(expert-parallel A100-40GB group; placement compared at equal "
                "total VRAM per device count)"
            ),
        )
        + "\n\n"
        + format_rows(
            overlap_rows,
            title=(
                "Overlap-aware layered cost model: serial vs --overlap at 2/4/8 "
                "devices (MiLo ondemand, frequency placement, Poisson 32 QPS, "
                "250 requests of 128+192 tokens; per-layer Fig. 3 skew with "
                "drift-triggered expert re-placement at TV 0.1)"
            ),
        )
        + "\n\n"
        + format_rows(
            disagg_rows,
            title=(
                "Disaggregated prefill/decode: colocated vs --disagg 1:3, "
                "recompute vs swap preemption (MiLo ondemand, 4 devices, "
                "40-block pools, Poisson 60 QPS, 40 requests of 96+96 tokens)"
            ),
        ),
    )

    # Disaggregation under pressure: handoffs actually fire and are priced;
    # swap-to-host resumes beat recompute decisively in the same regime
    # (fewer preemptions, less simulated time, and the per-run report
    # prices the swap-in seconds orders of magnitude below the
    # recompute-equivalent of the same KV).
    colocated, colocated_migration = disagg_results["colocated"]
    recompute, recompute_migration = disagg_results["disagg-recompute"]
    swapped, swapped_migration = disagg_results["disagg-swap"]
    assert colocated_migration == {}  # no migration section when colocated
    for report, _ in disagg_results.values():
        assert report.completed + report.rejected == 40
    for migration in (recompute_migration, swapped_migration):
        assert migration["handoffs"] > 0 and migration["handoff_s"] > 0.0
        assert migration["prefill_devices"] == 1
        assert migration["decode_devices"] == 3
    assert recompute_migration["swaps"] == 0
    assert swapped_migration["swaps"] == swapped.preemptions > 0
    assert swapped.preemptions < recompute.preemptions
    assert swapped.sim_time_s < recompute.sim_time_s
    assert swapped.sustained_qps > recompute.sustained_qps
    assert (
        swapped_migration["swap_in_s"]
        < 0.1 * swapped_migration["recompute_equivalent_s"]
    )

    # Overlap-aware layered cost model: hiding the all-to-all under the next
    # layer's compute and re-packing drifted layers never loses throughput,
    # and at 4+ devices reduces the straggler ratio the whole-model
    # placement cannot see (per-layer routing skew).
    for devices in (2, 4, 8):
        serial_r = overlap_reports[(devices, "serial")]
        overlap_r = overlap_reports[(devices, "overlap")]
        assert overlap_r.sustained_qps >= serial_r.sustained_qps
        assert overlap_r.completed == serial_r.completed == 250
        section = overlap_r.to_dict()["overlap"]
        assert 0.0 < section["overlap_ratio"] <= 1.0
        assert section["hidden_comm_s"] > 0.0
        assert section["replacements"] >= 1 and section["migration_s"] > 0.0
    assert (
        overlap_reports[(4, "overlap")].to_dict()["cluster"]["straggler_ratio"]
        < overlap_reports[(4, "serial")].to_dict()["cluster"]["straggler_ratio"]
    )

    # Expert-parallel scaling: more devices sustain strictly higher QPS on
    # the same skewed traffic, and at 4 devices (equal total VRAM between
    # the two placements) frequency-aware placement strictly beats
    # round-robin — routing skew turned into a measured straggler cost.
    assert cluster_reports[(2, "balanced")].sustained_qps > cluster_reports[
        (1, "balanced")
    ].sustained_qps
    balanced4 = cluster_reports[(4, "balanced")]
    frequency4 = cluster_reports[(4, "frequency")]
    assert frequency4.sustained_qps > balanced4.sustained_qps
    assert frequency4.sim_time_s < balanced4.sim_time_s
    b4 = balanced4.to_dict()["cluster"]
    f4 = frequency4.to_dict()["cluster"]
    assert f4["straggler_ratio"] < b4["straggler_ratio"]
    # Equal total VRAM: the placements shard the same pool sizes in total.
    assert sum(p["kv_blocks"] for p in f4["per_device"]) == pytest.approx(
        sum(p["kv_blocks"] for p in b4["per_device"]), rel=0.02
    )
    for rep in cluster_reports.values():
        assert rep.completed == 250 and rep.rejected == 0

    # Prefix caching on shared-prefix traffic: strictly larger peak batch
    # from strictly fewer physical block allocations, and higher sustained
    # QPS, at equal VRAM (the ISSUE 3 acceptance property).
    shared, shared_allocs = prefix_results["shared-prefix"]
    plain, plain_allocs = prefix_results["no-sharing"]
    assert shared.completed == plain.completed == 200
    assert shared.peak_batch > plain.peak_batch
    assert shared_allocs < plain_allocs
    assert shared.sustained_qps > plain.sustained_qps
    assert shared.prefix_hit_tokens > 0 and shared.prefix_shared_blocks_peak > 0
    assert shared.prefix_dedup_ratio > 1.0
    assert plain.prefix_hit_tokens == 0 and plain.prefix_dedup_ratio == 1.0

    # On-demand allocation packs a strictly larger concurrent batch into the
    # same pool than full-extent reservation AND sustains higher QPS (the
    # memory-bound decode regime, where concurrency is throughput), without
    # dropping requests; reservation by construction never preempts.
    reserve, ondemand = policy_reports["reserve"], policy_reports["ondemand"]
    assert reserve.completed == ondemand.completed == 300
    assert ondemand.peak_batch > reserve.peak_batch
    assert ondemand.sustained_qps > reserve.sustained_qps
    assert reserve.preemptions == 0 and reserve.recomputed_tokens == 0

    # FP16 cannot host Mixtral at all; the quantized backends can.
    assert reports["PyTorch-FP16"] is None
    assert capacity["PyTorch-FP16"]["mixtral-8x7b"] == 0
    assert capacity["MiLo"]["mixtral-8x7b"] > 0

    # Memory savings -> strictly larger sustainable batch, on both models
    # (including DeepSeek-MoE where FP16 does fit).
    for model in ("mixtral-8x7b", "deepseek-moe"):
        assert capacity["MiLo"][model] > capacity["PyTorch-FP16"][model]
    assert capacity["MiLo"]["deepseek-moe"] > 0 and capacity["PyTorch-FP16"]["deepseek-moe"] > 0

    milo, marlin, gptq = reports["MiLo"], reports["MARLIN"], reports["GPTQ3bit"]

    # GPTQ's batch-1 GeMV kernel cannot keep up with concurrent traffic.
    assert gptq.sustained_qps < 0.5 * milo.sustained_qps

    # MiLo at least matches MARLIN's throughput with lower latency.
    assert milo.sustained_qps >= 0.95 * marlin.sustained_qps
    assert milo.ttft["p50"] < marlin.ttft["p50"]
    assert milo.tpot["p50"] < marlin.tpot["p50"]

    # Everyone who fits completes the whole workload (queue-mode admission).
    for name in ("GPTQ3bit", "MARLIN", "MiLo"):
        assert reports[name].completed == 80
        assert reports[name].rejected == 0
