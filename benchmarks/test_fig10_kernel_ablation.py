"""Fig. 10 — ablation of the MiLo kernel optimizations.

Paper shape (asymmetric kernel, batch 16, group size 64): removing the
asynchronous global weight load hurts the most on every model MLP; removing
MiLo Dequant hurts increasingly as the MLP grows; removing the MoE-specific
tile tuning matters mainly for the small (DeepSeek-like) MLPs and fades for
the largest ones.
"""

import pytest

from _helpers import format_rows, save_result
from repro.kernels import MiLoKernelSim
from repro.models import REFERENCE_FFN_SHAPES

#: MLPs ordered by size, as in the paper's Fig. 10 (left = smallest).
MODELS = ["deepseek-moe", "arctic-moe", "mixtral-8x7b", "falcon-180b"]
BATCH = 16

VARIANTS = {
    "baseline": {},
    "-async load": {"async_load": False},
    "-milo dequant": {"milo_dequant": False},
    "-tile tuning": {"tile_tuning": False},
}


def run_fig10():
    rows = []
    slowdowns: dict[tuple[str, str], float] = {}
    for model_name in MODELS:
        shapes = REFERENCE_FFN_SHAPES[model_name]
        base_latency = MiLoKernelSim(symmetric=False).mlp_latency(shapes, BATCH)
        for variant, overrides in VARIANTS.items():
            latency = MiLoKernelSim(symmetric=False, **overrides).mlp_latency(shapes, BATCH)
            slowdown = latency / base_latency
            slowdowns[(model_name, variant)] = slowdown
            rows.append(
                {
                    "model_mlp": model_name,
                    "variant": variant,
                    "latency_us": round(latency * 1e6, 1),
                    "slowdown_vs_baseline": round(slowdown, 3),
                }
            )
    return rows, slowdowns


@pytest.mark.benchmark(group="fig10")
def test_fig10_kernel_ablation(benchmark):
    rows, slowdowns = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    save_result(
        "fig10_kernel_ablation",
        format_rows(rows, title="Fig. 10: MiLo asymmetric kernel ablation (batch 16, modeled A100)"),
    )

    for model_name in MODELS:
        # Async weight loading is the most critical optimization everywhere.
        assert slowdowns[(model_name, "-async load")] > 1.2
        assert slowdowns[(model_name, "-async load")] >= slowdowns[(model_name, "-milo dequant")]
        assert slowdowns[(model_name, "-async load")] >= slowdowns[(model_name, "-tile tuning")]
        # Every removal costs something (or is at worst neutral for tile tuning
        # on the huge dense Falcon MLP).
        assert slowdowns[(model_name, "-milo dequant")] > 1.0
        assert slowdowns[(model_name, "-tile tuning")] >= 1.0

    # MiLo Dequant matters more as the MLP grows.
    assert (
        slowdowns[("falcon-180b", "-milo dequant")]
        > slowdowns[("deepseek-moe", "-milo dequant")]
    )
    # Tile tuning matters most for the small DeepSeek MLP and fades with size.
    assert (
        slowdowns[("deepseek-moe", "-tile tuning")]
        > slowdowns[("falcon-180b", "-tile tuning")]
    )
    assert slowdowns[("deepseek-moe", "-tile tuning")] > 1.05
