"""Fig. 3 — expert activation-frequency heatmaps.

Paper shape: expert activation frequencies diverge within each layer, mildly
for Mixtral's 8 coarse experts and strongly for DeepSeek's fine-grained
experts (the most-activated expert fires an order of magnitude more often
than the least-activated one).
"""

import numpy as np
import pytest

from _helpers import format_rows, save_result
from repro.analysis import profile_expert_frequency
from repro.models import build_model

MODELS = ["mixtral-mini", "deepseek-moe-mini"]


def run_fig3():
    rows, profiles = [], {}
    for model_name in MODELS:
        model = build_model(model_name)
        profile = profile_expert_frequency(model, num_tokens=4096, seed=0)
        profiles[model_name] = profile
        for layer, freq in sorted(profile.frequencies.items()):
            rows.append(
                {
                    "model": model_name,
                    "layer": layer,
                    "num_experts": len(freq),
                    "max_freq": round(float(freq.max()), 4),
                    "min_freq": round(float(freq.min()), 4),
                    "max_over_min": round(float(profile.imbalance_ratio(layer)), 2),
                    "cv": round(float(freq.std() / freq.mean()), 3),
                }
            )
    return rows, profiles


@pytest.mark.benchmark(group="fig3")
def test_fig3_expert_activation_frequency(benchmark):
    rows, profiles = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_result(
        "fig3_expert_frequency",
        format_rows(rows, title="Fig. 3: expert activation frequency per layer"),
    )

    mixtral = profiles["mixtral-mini"]
    deepseek = profiles["deepseek-moe-mini"]

    # Heatmap dimensions follow the architectures.
    assert mixtral.heatmap().shape[1] == 8
    assert deepseek.heatmap().shape[1] == 32

    # Frequencies are normalized per layer and genuinely imbalanced.
    for profile in (mixtral, deepseek):
        assert np.allclose(profile.heatmap().sum(axis=1), 1.0)
        assert profile.imbalance_ratio() > 1.2

    # The fine-grained model is far more imbalanced than the coarse one
    # (paper: ~11.7x max/min for DeepSeek-MoE).
    assert deepseek.coefficient_of_variation() > mixtral.coefficient_of_variation()
    assert deepseek.imbalance_ratio() > 5.0
