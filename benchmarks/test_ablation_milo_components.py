"""Algorithm-level ablation of MiLo's components (design-choice study).

Not a paper table, but the design choices DESIGN.md calls out deserve their
own ablation: starting from plain HQQ INT3 and adding, one at a time,

1. a one-shot low-rank compensator (LoRC-style, single iteration),
2. the iterative joint optimization (Algorithm 1, up to 20 iterations),
3. the adaptive (dense-weighted) rank allocation instead of a uniform one,
4. compensator quantization to INT3 (memory back down, quality kept).

Expected shape: each algorithmic ingredient improves perplexity (or, for
compensator quantization, retains it while cutting compensator memory).
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.core import DenseRank, KurtosisRank, CompositeRankPolicy, MiLoConfig, UniformRank
from repro.core.strategies import scale_rank
from repro.models import build_model

MODEL = "mixtral-mini"


def run_ablation(evaluation_setups):
    teacher, harness = evaluation_setups(MODEL)
    config = build_model(MODEL).config
    dense_rank = scale_rank(512, config, "mixtral")
    kurtosis_rank = scale_rank(16, config, "mixtral")
    adaptive_policy = CompositeRankPolicy([DenseRank(dense_rank), KurtosisRank(kurtosis_rank)])
    # A uniform policy with (approximately) the same total rank budget.
    uniform_equivalent = UniformRank(max(1, dense_rank // 4))

    variants = {
        "HQQ INT3 (no compensator)": dict(method="hqq", rank_policy=None),
        "+ one-shot LoRC (1 iter, uniform)": dict(
            method="milo", rank_policy=uniform_equivalent,
            milo_config=MiLoConfig(max_iterations=1), compensator_bits=None,
        ),
        "+ iterative optimization (20 iters)": dict(
            method="milo", rank_policy=uniform_equivalent,
            milo_config=MiLoConfig(max_iterations=20), compensator_bits=None,
        ),
        "+ adaptive ranks (Dense + Kurtosis)": dict(
            method="milo", rank_policy=adaptive_policy,
            milo_config=MiLoConfig(max_iterations=20), compensator_bits=None,
        ),
        "+ INT3 compensators (full MiLo)": dict(
            method="milo", rank_policy=adaptive_policy,
            milo_config=MiLoConfig(max_iterations=20), compensator_bits=3,
        ),
    }

    rows, results = [], {}
    for label, kwargs in variants.items():
        method = kwargs.pop("method")
        model, report = compress_model(MODEL, method, bits=3, **kwargs)
        row = harness.evaluate(model, label, tasks=["mmlu-syn"])
        results[label] = {"ppl": row.wikitext2_ppl, "comp_bytes": report.compensator_bytes}
        rows.append(
            {
                "variant": label,
                "wikitext2_ppl": round(row.wikitext2_ppl, 4),
                "mmlu_syn": round(row.task_scores["mmlu-syn"], 2),
                "compensator_kb": round(report.compensator_bytes / 1024, 1),
                "memory_mb": round(row.memory_mb, 3),
            }
        )
    return rows, results


@pytest.mark.benchmark(group="ablation")
def test_milo_component_ablation(benchmark, evaluation_setups):
    rows, results = benchmark.pedantic(
        run_ablation, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "ablation_milo_components",
        format_rows(rows, title="MiLo component ablation (mixtral-mini, W3A16)"),
    )

    hqq = results["HQQ INT3 (no compensator)"]["ppl"]
    oneshot = results["+ one-shot LoRC (1 iter, uniform)"]["ppl"]
    iterative = results["+ iterative optimization (20 iters)"]["ppl"]
    adaptive = results["+ adaptive ranks (Dense + Kurtosis)"]["ppl"]
    quantized = results["+ INT3 compensators (full MiLo)"]["ppl"]

    # Each algorithmic ingredient improves (or at least does not hurt) quality.
    assert oneshot < hqq
    assert iterative <= oneshot * 1.02
    assert adaptive <= iterative * 1.02
    assert adaptive < hqq

    # Quantizing the compensators keeps most of the benefit at ~37.5% of the
    # compensator memory.
    fp16_comp = results["+ adaptive ranks (Dense + Kurtosis)"]["comp_bytes"]
    int3_comp = results["+ INT3 compensators (full MiLo)"]["comp_bytes"]
    assert int3_comp < 0.5 * fp16_comp
    assert quantized < hqq
    assert quantized <= adaptive * 1.25
