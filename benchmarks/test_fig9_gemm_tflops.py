"""Fig. 9 (and Table 9) — mixed-precision GEMM throughput per backend.

Paper shape, per model MLP (DeepSeek-MoE, Arctic-MoE, Mixtral-8x7B,
Falcon-180B) and batch size (1 / 16 / 32):

* batch 1 is memory-bound: the 3-bit kernels (MiLo, GPTQ3bit GeMV) achieve
  the highest throughput, ahead of the 4-bit MARLIN;
* batch 16: the MiLo symmetric kernel beats MARLIN on every model MLP;
* batch 32 approaches the compute-bound regime, and MiLo remains at least on
  par with MARLIN (clearly ahead on the small DeepSeek MLP);
* the unfused "MiLo Dequant + CUTLASS" pipeline is far slower everywhere.

The GEMM shapes are exactly the Appendix C (Table 9) shapes.
"""

import pytest

from _helpers import format_rows, save_result
from repro.kernels import UnsupportedBatchError, default_backends
from repro.models import REFERENCE_FFN_SHAPES

MODELS = ["deepseek-moe", "arctic-moe", "mixtral-8x7b", "falcon-180b"]
BATCH_SIZES = (1, 16, 32)


def run_fig9():
    rows = []
    tflops: dict[tuple[str, str, int], float | None] = {}
    for model_name in MODELS:
        shapes = REFERENCE_FFN_SHAPES[model_name]
        for batch in BATCH_SIZES:
            for backend_name, sim in default_backends(asymmetric_model=False).items():
                try:
                    value = sim.mlp_tflops(shapes, batch)
                except UnsupportedBatchError:
                    value = None
                tflops[(model_name, backend_name, batch)] = value
                rows.append(
                    {
                        "model_mlp": model_name,
                        "batch": batch,
                        "backend": backend_name,
                        "tflops": round(value, 2) if value is not None else "-",
                    }
                )
    return rows, tflops


@pytest.mark.benchmark(group="fig9")
def test_fig9_gemm_throughput(benchmark):
    rows, tflops = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_result(
        "fig9_gemm_tflops",
        format_rows(rows, title="Fig. 9: mixed-precision GEMM TFLOPS per MLP (modeled A100)"),
    )

    # Table 9 shapes are the exact Appendix C values.
    assert REFERENCE_FFN_SHAPES["mixtral-8x7b"]["w1"] == (4096, 14336)
    assert REFERENCE_FFN_SHAPES["deepseek-moe"]["w2"] == (11008, 2048)

    milo = "MiLo Kernel (sym)"
    marlin = "MARLIN Kernel"
    gptq = "GPTQ3bit Kernel"
    unfused = "MiLo Dequant + CUTLASS"

    for model_name in MODELS:
        # Batch 1: 3-bit weight streaming wins; GPTQ's GeMV is competitive with MiLo.
        assert tflops[(model_name, milo, 1)] > tflops[(model_name, marlin, 1)]
        assert tflops[(model_name, gptq, 1)] > tflops[(model_name, marlin, 1)]

        # Batch 16: MiLo symmetric beats MARLIN on every model MLP.
        assert tflops[(model_name, milo, 16)] > tflops[(model_name, marlin, 16)]

        # Batch 32: MiLo stays at least on par with MARLIN.
        assert tflops[(model_name, milo, 32)] >= 0.95 * tflops[(model_name, marlin, 32)]

        # GPTQ GeMV cannot serve batched inference.
        assert tflops[(model_name, gptq, 16)] is None

        # The unfused pipeline is far behind the fused kernel.
        assert tflops[(model_name, unfused, 16)] < 0.5 * tflops[(model_name, milo, 16)]

        # Throughput rises with batch size for the tensor-core backends.
        assert (
            tflops[(model_name, milo, 1)]
            < tflops[(model_name, milo, 16)]
            < tflops[(model_name, milo, 32)]
        )

    # Batch 32 on the small DeepSeek MLP: MiLo clearly ahead (paper: ~17%).
    assert tflops[("deepseek-moe", milo, 32)] > 1.05 * tflops[("deepseek-moe", marlin, 32)]
