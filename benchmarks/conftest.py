"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
convention is:

* heavy work happens once inside ``benchmark.pedantic(..., rounds=1)`` so
  pytest-benchmark records the wall time without re-running the experiment;
* the regenerated rows/series are printed and also written to
  ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can reference
  them;
* each module asserts the *shape* of the paper's result (who wins, in which
  direction), never absolute values.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval import EvaluationEnvironment, EvaluationHarness
from repro.models import build_model

from _helpers import EVAL_SEQ_LEN, EVAL_SEQUENCES, TASK_ITEMS

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow``.

    The benchmarks regenerate whole paper tables (model builds, quantization
    sweeps, evaluation harness runs) and dominate the suite's wall time; CI's
    fast tier deselects them with ``-m "not slow"`` while the full tier and
    the tier-1 command still run everything.
    """
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def evaluation_setups():
    """Lazily-built (teacher, harness) pairs per mini model, shared across benches."""
    cache: dict[str, tuple] = {}

    def get(model_name: str):
        if model_name not in cache:
            teacher = build_model(model_name)
            environment = EvaluationEnvironment.from_teacher(
                teacher,
                num_sequences=EVAL_SEQUENCES,
                seq_len=EVAL_SEQ_LEN,
                num_task_items=TASK_ITEMS,
                seed=0,
            )
            cache[model_name] = (teacher, EvaluationHarness(environment))
        return cache[model_name]

    return get
