"""Fig. 7 — convergence of the iterative optimization.

Paper shape: the Frobenius error eps_t decreases and flattens within roughly
ten iterations, for attention projections (q/k/v/o) and expert projections
(w1/w2/w3) alike.
"""

import numpy as np
import pytest

from _helpers import format_table, save_result
from repro.core import MiLoConfig, MiLoMatrixOptimizer
from repro.models import build_model

ATTENTION_MATRICES = ["q_proj", "k_proj", "v_proj", "o_proj"]
EXPERT_MATRICES = ["w1", "w2", "w3"]
ITERATIONS = 20


def run_fig7():
    model = build_model("mixtral-mini")
    config = MiLoConfig(bits=3, group_size=64, max_iterations=ITERATIONS, stop_tol=0.0)
    optimizer = MiLoMatrixOptimizer(config)
    histories = {}
    for name in ATTENTION_MATRICES:
        weight = model.get_submodule(f"layer_0.attn.{name}").weight.data
        histories[f"attn.{name}"] = optimizer.optimize(weight, rank=8).error_history
    for name in EXPERT_MATRICES:
        weight = model.get_submodule(f"layer_0.ffn.expert_0.{name}").weight.data
        histories[f"expert_0.{name}"] = optimizer.optimize(weight, rank=4).error_history
    return histories


@pytest.mark.benchmark(group="fig7")
def test_fig7_iterative_convergence(benchmark):
    histories = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    max_len = max(len(h) for h in histories.values())
    headers = ["iteration"] + list(histories)
    rows = []
    for t in range(max_len):
        rows.append([t + 1] + [
            round(h[t], 5) if t < len(h) else "" for h in histories.values()
        ])
    save_result(
        "fig7_convergence",
        format_table(headers, rows, title="Fig. 7: Frobenius error vs MiLo iteration (layer 0)"),
    )

    for name, history in histories.items():
        assert len(history) >= 3
        # The error decreases overall ...
        assert history[-1] < history[0]
        # ... and most of the improvement happens in the first ~10 iterations.
        ten = min(10, len(history)) - 1
        total_drop = history[0] - min(history)
        early_drop = history[0] - history[ten]
        assert early_drop >= 0.7 * total_drop
        # No catastrophic divergence anywhere along the trajectory.
        assert max(history) <= history[0] * 1.05
