"""Shared helpers for the benchmark modules (imported as ``from _helpers import ...``)."""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core import ModelCompressor, build_strategy
from repro.data import zipfian_corpus
from repro.eval import format_rows, format_table
from repro.models import build_model

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Evaluation-environment sizes shared by the accuracy benchmarks.
EVAL_SEQUENCES = 24
EVAL_SEQ_LEN = 32
TASK_ITEMS = 128
CALIBRATION_SEQUENCES = 32
CALIBRATION_SEQ_LEN = 32


def save_result(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def calibration_tokens(vocab_size: int, seed: int = 3) -> np.ndarray:
    """Model-independent calibration corpus for GPTQ."""
    return zipfian_corpus(
        vocab_size,
        num_sequences=CALIBRATION_SEQUENCES,
        seq_len=CALIBRATION_SEQ_LEN,
        seed=seed,
    ).tokens


def compress_model(
    model_name: str,
    method: str,
    bits: int = 3,
    strategy: str | None = None,
    rank_policy=None,
    compensator_bits: int | None = 3,
    milo_config=None,
):
    """Build a fresh mini model and compress it with the requested method."""
    model = build_model(model_name)
    policy = rank_policy
    if strategy is not None:
        policy = build_strategy(strategy, model.config)
    calibration = calibration_tokens(model.config.vocab_size) if method == "gptq" else None
    compressor = ModelCompressor(
        method=method,
        bits=bits,
        rank_policy=policy,
        calibration_tokens=calibration,
        compensator_bits=compensator_bits,
        milo_config=milo_config,
    )
    return compressor.compress(model)


__all__ = [
    "save_result",
    "compress_model",
    "calibration_tokens",
    "format_rows",
    "format_table",
    "EVAL_SEQUENCES",
    "EVAL_SEQ_LEN",
    "TASK_ITEMS",
]
