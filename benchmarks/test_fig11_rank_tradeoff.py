"""Fig. 11 — compensator memory vs perplexity as the rank grows.

Paper shape: increasing the rank monotonically increases the compensator
memory and decreases perplexity, with diminishing returns at higher ranks.
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.core import MiLoConfig, UniformRank

#: Uniform ranks swept on the mini model (the paper sweeps 16..128 at full scale).
RANKS = [0, 1, 2, 4, 8]

#: Compensator group size scaled to the mini model dimensions (see Table 6 bench).
MILO_CONFIG = MiLoConfig(compensator_group_size=16)


def run_fig11(evaluation_setups):
    teacher, harness = evaluation_setups("mixtral-mini")
    fp16_ppl = harness.evaluate(teacher, "fp16", tasks=[]).wikitext2_ppl
    rows, curve = [], []
    for rank in RANKS:
        model, report = compress_model(
            "mixtral-mini", "milo", bits=3, rank_policy=UniformRank(rank),
            milo_config=MILO_CONFIG,
        )
        ppl = harness.evaluate(model, f"rank-{rank}", tasks=[]).wikitext2_ppl
        curve.append((rank, report.compensator_bytes, ppl))
        rows.append(
            {
                "uniform_rank": rank,
                "compensator_kb": round(report.compensator_bytes / 1024, 2),
                "total_memory_mb": round(report.memory_bytes / 2**20, 3),
                "wikitext2_ppl": round(ppl, 4),
                "fp16_ppl": round(fp16_ppl, 4),
            }
        )
    return rows, curve, fp16_ppl


@pytest.mark.benchmark(group="fig11")
def test_fig11_rank_memory_perplexity_tradeoff(benchmark, evaluation_setups):
    rows, curve, fp16_ppl = benchmark.pedantic(
        run_fig11, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "fig11_rank_tradeoff",
        format_rows(rows, title="Fig. 11: compensator memory vs perplexity (uniform rank sweep)"),
    )

    ranks = [r for r, _, _ in curve]
    memories = [m for _, m, _ in curve]
    ppls = [p for _, _, p in curve]

    # Memory grows monotonically with rank.
    assert all(b > a for a, b in zip(memories, memories[1:]))
    # Perplexity improves as rank grows (allowing small non-monotonic noise at
    # the tiny mini-scale ranks), and the largest rank is clearly the best.
    assert ppls[-1] < ppls[0]
    assert min(ppls) == pytest.approx(ppls[-1], rel=0.1)
    # Compensated INT3 approaches (but does not beat) the FP16 reference.
    assert ppls[-1] > fp16_ppl
    # Diminishing returns: the first rank step buys more than the last one.
    first_gain = ppls[0] - ppls[1]
    last_gain = ppls[-2] - ppls[-1]
    assert first_gain > last_gain
