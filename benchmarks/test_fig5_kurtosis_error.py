"""Fig. 5 — correlation between weight kurtosis and relative quantization error.

Paper shape: across the weight matrices of one layer (and of the whole
model), higher kurtosis means higher relative Frobenius quantization error
under INT3, with a clearly positive fitted slope.
"""

import numpy as np
import pytest

from _helpers import format_rows, save_result
from repro.analysis import kurtosis_error_correlation
from repro.models import build_model

MODELS = ["mixtral-mini", "deepseek-moe-mini"]


def run_fig5():
    rows, stats = [], {}
    for model_name in MODELS:
        model = build_model(model_name)
        kurts, errors, corr = kurtosis_error_correlation(model, bits=3, group_size=64)
        slope = float(np.polyfit(kurts, errors, 1)[0]) if len(kurts) > 1 else 0.0
        stats[model_name] = {"corr": corr, "slope": slope, "n": len(kurts)}
        rows.append(
            {
                "model": model_name,
                "num_matrices": len(kurts),
                "pearson_corr": round(corr, 3),
                "fit_slope": round(slope, 6),
                "kurtosis_range": f"[{kurts.min():.2f}, {kurts.max():.2f}]",
                "error_range": f"[{errors.min():.3f}, {errors.max():.3f}]",
            }
        )
    return rows, stats


@pytest.mark.benchmark(group="fig5")
def test_fig5_kurtosis_vs_quantization_error(benchmark):
    rows, stats = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_result(
        "fig5_kurtosis_error",
        format_rows(rows, title="Fig. 5: kurtosis vs relative quantization error (INT3, group 64)"),
    )

    for model_name in MODELS:
        assert stats[model_name]["corr"] > 0.3
        assert stats[model_name]["slope"] > 0
        assert stats[model_name]["n"] > 10
