"""Fig. 2 — weight samples: FP16 vs de-quantized INT4 / INT3, attention vs expert.

Paper shape: attention projections show channel-structured outliers that the
INT3 grid preserves while washing out moderate values; expert weights are
flatter and lose less.  We regenerate the underlying numbers: per-layer
value ranges, reconstruction errors, and the attention-vs-expert contrast.
"""

import numpy as np
import pytest

from _helpers import format_rows, save_result
from repro.analysis import sample_layer_weights
from repro.models import build_model

LAYERS = {
    "attention": "layer_0.attn.q_proj",
    "expert": "layer_0.ffn.expert_0.w1",
}


def run_fig2():
    model = build_model("mixtral-mini")
    rows, samples = [], {}
    for kind, layer in LAYERS.items():
        sample = sample_layer_weights(model, layer, max_rows=64, max_cols=64)
        samples[kind] = sample
        for variant, data in (("fp16", sample.fp16), ("int4", sample.int4), ("int3", sample.int3)):
            rows.append(
                {
                    "layer_kind": kind,
                    "variant": variant,
                    "abs_max": round(float(np.abs(data).max()), 5),
                    "std": round(float(data.std()), 5),
                    "distinct_values": int(np.unique(np.round(data, 8)).size),
                    "rel_error_vs_fp16": round(
                        float(np.linalg.norm(data - sample.fp16) / np.linalg.norm(sample.fp16)), 4
                    ),
                }
            )
    return rows, samples


@pytest.mark.benchmark(group="fig2")
def test_fig2_weight_sampling(benchmark):
    rows, samples = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_result("fig2_weight_sampling", format_rows(rows, title="Fig. 2: weight samples (Mixtral-mini)"))

    attn, expert = samples["attention"], samples["expert"]

    # INT3 keeps the extreme values (outliers survive quantization) ...
    assert np.abs(attn.int3).max() == pytest.approx(np.abs(attn.fp16).max(), rel=0.15)
    # ... but collapses the moderate values onto few grid points.
    assert np.unique(np.round(attn.int3, 8)).size < 0.5 * np.unique(np.round(attn.fp16, 8)).size

    # INT4 loses less than INT3 on both layer kinds.
    for sample in (attn, expert):
        err3 = np.linalg.norm(sample.fp16 - sample.int3)
        err4 = np.linalg.norm(sample.fp16 - sample.int4)
        assert err4 < err3

    # The heavy-tailed attention projection suffers more relative loss than the expert.
    rel = lambda s: np.linalg.norm(s.fp16 - s.int3) / np.linalg.norm(s.fp16)
    assert rel(attn) > rel(expert)
