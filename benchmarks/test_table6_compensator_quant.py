"""Table 6 — INT8 vs INT3 quantization of the low-rank compensators.

Paper shape: quantizing the compensators to INT3 uses ~37.5% of the INT8
compensator memory while increasing Wikitext-2 perplexity only marginally
(≈0.2%), across a range of ranks.
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.core import UniformRank
from repro.core.compensator import compensator_memory_bytes
from repro.models import FULL_MODEL_SPECS
from repro.runtime.memory import build_inventory

#: Paper ranks 16 / 32 / 64 on a 4096-wide model scale to 1 / 2 / 4 on the
#: 64-wide mini (same fraction of the hidden dimension, floor 1).
RANKS = {16: 1, 32: 2, 64: 4}

#: The compensator quantization group size is scaled with the matrix
#: dimensions (64 on a 4096-wide model maps to 16 on the 64-wide mini) so the
#: INT3 compensator error stays proportionally comparable to the paper's
#: setting.  See EXPERIMENTS.md for the scale caveat.
COMPENSATOR_GROUP_SIZE = 16


def full_scale_compensator_mb(paper_rank: int, bits: int) -> float:
    """Compensator memory at full Mixtral-8x7B scale for a uniform rank."""
    inventory = build_inventory(FULL_MODEL_SPECS["mixtral-8x7b"])
    shapes = (
        inventory.attention_shapes + inventory.expert_shapes + inventory.shared_expert_shapes
    )
    total = sum(compensator_memory_bytes(s, paper_rank, bits=bits, group_size=64) for s in shapes)
    return total / 2**20


def run_table6(evaluation_setups):
    teacher, harness = evaluation_setups("mixtral-mini")
    rows, results = [], {}
    from repro.core import MiLoConfig

    milo_config = MiLoConfig(compensator_group_size=COMPENSATOR_GROUP_SIZE)
    for paper_rank, mini_rank in RANKS.items():
        for bits in (8, 3):
            model, report = compress_model(
                "mixtral-mini",
                "milo",
                bits=3,
                rank_policy=UniformRank(mini_rank),
                compensator_bits=bits,
                milo_config=milo_config,
            )
            ppl = harness.evaluate(model, f"rank{paper_rank}-int{bits}", tasks=[]).wikitext2_ppl
            results[(paper_rank, bits)] = {
                "ppl": ppl,
                "compensator_mb": report.compensator_bytes / 2**20,
            }
            rows.append(
                {
                    "paper_rank": paper_rank,
                    "mini_rank": mini_rank,
                    "compensator_bits": bits,
                    "compensator_mb_mini": round(report.compensator_bytes / 2**20, 4),
                    "compensator_mb_fullscale": round(full_scale_compensator_mb(paper_rank, bits), 0),
                    "wikitext2_ppl": round(ppl, 4),
                }
            )
    return rows, results


@pytest.mark.benchmark(group="table6")
def test_table6_compensator_quantization(benchmark, evaluation_setups):
    rows, results = benchmark.pedantic(
        run_table6, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "table6_compensator_quant",
        format_rows(rows, title="Table 6: INT8 vs INT3 low-rank compensators (Mixtral)"),
    )

    for paper_rank in RANKS:
        int8 = results[(paper_rank, 8)]
        int3 = results[(paper_rank, 3)]
        # INT3 compensators use ~37.5% of the INT8 memory ...
        assert 0.3 < int3["compensator_mb"] / int8["compensator_mb"] < 0.5
        # ... with only a marginal perplexity increase.  (The paper reports
        # ~0.2% at full-scale ranks; the mini-scale ranks of 1-4 leave the
        # compensator much more exposed to its own quantization noise, so the
        # tolerance here is looser.)
        assert int3["ppl"] <= int8["ppl"] * 1.12

    # Full-scale projections match the paper's memory column
    # (rank 16: ~296 MB INT8 vs ~106 MB INT3 — we check the ratio and scale).
    assert full_scale_compensator_mb(16, 8) == pytest.approx(296, rel=0.35)
    assert full_scale_compensator_mb(16, 3) == pytest.approx(106, rel=0.35)

    # Higher rank -> lower perplexity (Fig. 11 direction), at higher memory.
    assert results[(64, 3)]["ppl"] <= results[(16, 3)]["ppl"]
    assert results[(64, 3)]["compensator_mb"] > results[(16, 3)]["compensator_mb"]
