"""Table 2 — kurtosis and residual-matrix rank per layer class.

Paper shape: dense structures (attention, shared experts) have higher
kurtosis than sparse experts (which are platykurtic), and the residual-rank
statistic separates the layer classes, correlating negatively with kurtosis.
"""

import numpy as np
import pytest

from _helpers import format_rows, save_result
from repro.analysis import kurtosis_by_kind, residual_rank_by_kind
from repro.models import build_model
from repro.models.transformer import LayerKind

MODELS = ["mixtral-mini", "deepseek-moe-mini"]


def run_table2():
    table = {}
    rows = []
    for model_name in MODELS:
        model = build_model(model_name)
        kurt = kurtosis_by_kind(model)
        rank = residual_rank_by_kind(model, bits=3, group_size=64, tau=0.5)
        table[model_name] = (kurt, rank)
        for kind in sorted(kurt):
            rows.append(
                {
                    "model": model_name,
                    "layer_class": kind,
                    "kurtosis": round(kurt[kind], 3),
                    "residual_rank": round(rank[kind], 1),
                }
            )
    return rows, table


@pytest.mark.benchmark(group="table2")
def test_table2_kurtosis_and_residual_rank(benchmark):
    rows, table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_result(
        "table2_kurtosis_rank",
        format_rows(rows, title="Table 2: kurtosis and residual rank by layer class"),
    )

    for model_name in MODELS:
        kurt, _ = table[model_name]
        # Dense attention layers are heavy-tailed; routed experts are platykurtic.
        assert kurt[LayerKind.ATTENTION] > 0
        assert kurt[LayerKind.EXPERT] < 0
        assert kurt[LayerKind.ATTENTION] > kurt[LayerKind.EXPERT]

    # DeepSeek's shared experts sit between attention and routed experts.
    deepseek_kurt, _ = table["deepseek-moe-mini"]
    assert deepseek_kurt[LayerKind.EXPERT] < deepseek_kurt[LayerKind.SHARED_EXPERT]

    # The residual-rank statistic separates the layer classes.  Note: on the
    # synthetic checkpoints the heavy-tailed attention residuals concentrate
    # *more* of their spectrum below 0.5 * sigma_max than expert residuals
    # (the opposite numeric direction from the paper's Table 2, see
    # EXPERIMENTS.md), which is consistent with the behavioural claim that
    # dense layers benefit most from low-rank compensation.
    for model_name in MODELS:
        kurt, rank = table[model_name]
        assert set(rank) == set(kurt)
        assert all(v > 0 for v in rank.values())
        values = [rank[k] for k in sorted(rank)]
        assert max(values) > 1.1 * min(values)
