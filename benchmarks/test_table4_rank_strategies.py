"""Table 4 / Table 8 — rank-strategy comparison.

Two comparisons, as in the paper:

* **Model-structure strategies under a fixed compensator memory budget**
  (paper: 200 MB): Uniform vs Dense vs Sparse.  Dense wins — always-activated
  layers are the most rank-sensitive.
* **Sparse-layer strategies with the dense rank fixed**: Uniform vs Kurtosis
  vs Frequency over the routed experts.  Kurtosis helps both models;
  Frequency helps most on the imbalanced (DeepSeek-style) router.

To isolate the rank strategy from the iterative optimization, MiLo is run
with a single iteration, exactly as in the paper's Table 4 setup.
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.core import (
    CompositeRankPolicy,
    DenseRank,
    FrequencyRank,
    KurtosisRank,
    MiLoConfig,
    SparseRank,
    UniformRank,
    build_weight_entries,
    total_compensator_memory,
    uniform_rank_for_budget,
)
from repro.core.strategies import scale_rank
from repro.models import build_model

SINGLE_ITERATION = MiLoConfig(max_iterations=1)

MODELS = {
    "mixtral-mini": {"family": "mixtral", "dense_rank_paper": 512, "sparse_avg_paper": 32},
    "deepseek-moe-mini": {"family": "deepseek", "dense_rank_paper": 512, "sparse_avg_paper": 16},
}


def _budget_for_dense_rank(model_name: str, dense_rank: int) -> float:
    """Compensator budget equal to what Dense-{r} consumes (the paper's 200 MB analogue)."""
    model = build_model(model_name)
    entries = build_weight_entries(model)
    ranks = DenseRank(dense_rank).assign(entries)
    return total_compensator_memory(entries, ranks, bits=3, group_size=64)


def run_structure_comparison(evaluation_setups, model_name, info):
    """Uniform / Dense / Sparse under the same compensator memory budget."""
    teacher, harness = evaluation_setups(model_name)
    model = build_model(model_name)
    entries = build_weight_entries(model)
    dense_rank = scale_rank(info["dense_rank_paper"], model.config, info["family"])
    budget = _budget_for_dense_rank(model_name, dense_rank)
    uniform_rank = max(
        1, uniform_rank_for_budget(entries, budget, bits=3, group_size=64, scope="all")
    )
    sparse_rank = max(
        1, uniform_rank_for_budget(entries, budget, bits=3, group_size=64, scope="sparse")
    )

    policies = {
        f"Uniform-{uniform_rank}": UniformRank(uniform_rank),
        f"Dense-{dense_rank}": DenseRank(dense_rank),
        f"Sparse-{sparse_rank}": SparseRank(sparse_rank),
    }
    rows, scores = [], {}
    for label, policy in policies.items():
        compressed, report = compress_model(
            model_name, "milo", bits=3, rank_policy=policy, milo_config=SINGLE_ITERATION
        )
        row = harness.evaluate(compressed, label, tasks=["mmlu-syn"])
        scores[label.split("-")[0]] = row
        rows.append(
            {
                "model": model_name,
                "comparison": "structure@budget",
                "strategy": label,
                "compensator_mb": round(report.compensator_bytes / 2**20, 3),
                "wikitext2_ppl": round(row.wikitext2_ppl, 4),
                "mmlu_syn": round(row.task_scores["mmlu-syn"], 2),
            }
        )
    return rows, scores


def run_sparse_comparison(evaluation_setups, model_name, info):
    """Uniform / Kurtosis / Frequency over experts, dense rank fixed."""
    teacher, harness = evaluation_setups(model_name)
    model = build_model(model_name)
    dense_rank = scale_rank(info["dense_rank_paper"], model.config, info["family"])
    sparse_avg = scale_rank(info["sparse_avg_paper"], model.config, info["family"])

    policies = {
        f"Uniform-{sparse_avg}": UniformRank(sparse_avg, scope="sparse"),
        f"Kurtosis-{sparse_avg}": KurtosisRank(sparse_avg),
        f"Frequency-{sparse_avg}": FrequencyRank(sparse_avg),
    }
    rows, scores = [], {}
    for label, sparse_policy in policies.items():
        policy = CompositeRankPolicy([DenseRank(dense_rank), sparse_policy])
        compressed, _ = compress_model(
            model_name, "milo", bits=3, rank_policy=policy, milo_config=SINGLE_ITERATION
        )
        row = harness.evaluate(compressed, label, tasks=["mmlu-syn"])
        scores[label.split("-")[0]] = row
        rows.append(
            {
                "model": model_name,
                "comparison": f"sparse@dense-{dense_rank}",
                "strategy": label,
                "compensator_mb": "",
                "wikitext2_ppl": round(row.wikitext2_ppl, 4),
                "mmlu_syn": round(row.task_scores["mmlu-syn"], 2),
            }
        )
    return rows, scores


def run_table4(evaluation_setups):
    all_rows = []
    structure, sparse = {}, {}
    for model_name, info in MODELS.items():
        rows, scores = run_structure_comparison(evaluation_setups, model_name, info)
        all_rows.extend(rows)
        structure[model_name] = scores
        rows, scores = run_sparse_comparison(evaluation_setups, model_name, info)
        all_rows.extend(rows)
        sparse[model_name] = scores
    return all_rows, structure, sparse


@pytest.mark.benchmark(group="table4")
def test_table4_rank_strategy_comparison(benchmark, evaluation_setups):
    rows, structure, sparse = benchmark.pedantic(
        run_table4, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "table4_rank_strategies",
        format_rows(rows, title="Table 4 / Table 8: rank strategy comparison (1 MiLo iteration)"),
    )

    for model_name in MODELS:
        scores = structure[model_name]
        # Dense is the best use of a fixed compensator budget; Sparse the worst.
        assert scores["Dense"].wikitext2_ppl < scores["Sparse"].wikitext2_ppl
        assert scores["Dense"].wikitext2_ppl <= scores["Uniform"].wikitext2_ppl * 1.05

        sparse_scores = sparse[model_name]
        # Adaptive sparse-layer policies are not worse than uniform sparse ranks.
        best_adaptive = min(
            sparse_scores["Kurtosis"].wikitext2_ppl, sparse_scores["Frequency"].wikitext2_ppl
        )
        assert best_adaptive <= sparse_scores["Uniform"].wikitext2_ppl * 1.05
