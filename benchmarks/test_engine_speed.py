"""Engine replay speed — the PR 6 vectorized core on 100k-request traces.

Unlike the other benchmark modules this one regenerates no paper table; it
measures the *simulator itself*: how fast :class:`repro.serving.ServingEngine`
replays a large open-loop trace after the hot-loop rework (heap waiting
queue, memoized per-device iteration costs, event-driven steady-state fast
path with macro-stepped decode, bulk KV block moves, ``debug_checks`` off).

Three scenarios, all 100k Poisson requests against the MiLo Mixtral-8x7B
backend (A100-40GB devices):

* ``replay_100k_qps2`` — low offered load: ~2.6M mostly-uneventful decode
  iterations, the macro-step compression showcase (primary scenario);
* ``replay_100k_qps8`` — saturating load: dense admission/eviction churn,
  stresses the per-event path;
* ``replay_100k_qps2_overlap`` — the qps-2 trace on a 4-device group under
  the overlap-aware layered cost model (``overlap=True``): exercises the
  epoch-keyed per-layer cost memo and the multi-device macro-step loop;
* ``replay_100k_qps2_disagg`` — the qps-2 trace on a 4-device group split
  ``--disagg 1:3``: every request pays a prefill→decode KV handoff, and
  the run stays on the general per-iteration loop (disaggregation is
  excluded from the fast path), so this tracks the disagg hot path's
  throughput and pins its ``report_sha256``.

Results land in ``benchmarks/results/BENCH_engine.json`` (schema
``engine-speed/v1``, documented in ROADMAP.md):

* per scenario: wall seconds, simulated iterations, simulated tokens (and
  tokens/sec of wall time), requests/sec, peak RSS MB, completion counts,
  and ``workload_build_s`` — the time to materialize the 100k-request
  Poisson trace (bulk-converted record building; the pre-vectorization
  per-element generator took ~0.26 s best-of-7 on this container vs
  ~0.22 s after, recorded as ``workload_build_baseline_s``);
* ``pre_pr_baseline``: scenarios measured at the pre-PR-6 commit on the
  same container, interleaved with post-PR runs to control for machine
  load — the committed ``benchmarks/BENCH_engine.json`` shows a >=10x
  tokens/sec speedup on the primary scenario against that baseline (the
  overlap scenario is new and has no pre-PR counterpart);
* ``report_checksum``: sha256 of the serialized report, which must match
  the committed value — speed must never change the simulation (the golden
  suite pins the same property per-float).

Enforcement knobs (both off by default — wall-clock assertions are
environment-dependent):

* ``ENGINE_BENCH_ENFORCE_SPEEDUP=1`` asserts >=10x tokens/sec vs the
  recorded pre-PR baseline (meaningful only on hardware comparable to the
  baseline's);
* ``ENGINE_BENCH_ENFORCE_TELEMETRY=1`` asserts the primary scenario's
  ``telemetry_overhead_frac`` — throughput cost of the *disabled* PR 9
  observability hooks vs the recorded pre-telemetry baseline — stays
  under 5% (the CI smoke job gates the committed value deterministically);
* the CI smoke job compares the regenerated tokens/sec against the
  committed ``benchmarks/BENCH_engine.json`` and fails on a >30% drop.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import resource
import time

from repro.runtime.backends import MiLoBackend
from repro.serving import EngineConfig, ServingEngine, poisson_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
COMMITTED = pathlib.Path(__file__).parent / "BENCH_engine.json"

#: Measured at the pre-PR commit (general per-iteration loop, list-sorted
#: waiting queue, per-block allocation, invariant checks always on) on the
#: same container as the committed post-PR numbers, interleaved runs.
PRE_PR_BASELINE = {
    "replay_100k_qps2": {"wall_s": 33.67, "tokens_per_s": 567469},
    "replay_100k_qps8": {"wall_s": 20.89, "tokens_per_s": 916270},
}

#: Simulator throughput at the pre-telemetry commit (no observability hooks
#: in the hot loops), best of 5 runs interleaved with the post-change build
#: on the same container.  The primary scenario's
#: ``telemetry_overhead_frac`` gauges the cost of the *disabled* hooks
#: (``tracer is None`` tests on the per-iteration path) against this —
#: the observability contract caps it below 5%, and the measured value is
#: indistinguishable from zero (the post-change best was faster than the
#: pre-change best, i.e. within run-to-run noise).
PRE_TELEMETRY_BASELINE = {
    "replay_100k_qps2": {"tokens_per_s": 10_577_902},
}

#: Each scenario names a workload and (optionally) engine-config overrides
#: on top of :data:`BENCH_CONFIG`.
SCENARIOS = {
    "replay_100k_qps2": dict(
        workload=dict(num_requests=100_000, qps=2.0, seed=0),
    ),
    "replay_100k_qps8": dict(
        workload=dict(num_requests=100_000, qps=8.0, seed=0),
    ),
    "replay_100k_qps2_overlap": dict(
        workload=dict(num_requests=100_000, qps=2.0, seed=0),
        config=dict(devices=4, overlap=True),
    ),
    "replay_100k_qps2_disagg": dict(
        workload=dict(num_requests=100_000, qps=2.0, seed=0),
        config=dict(devices=4, prefill_devices=1, decode_devices=3),
    ),
}

#: Benchmark engine configuration: invariant auditing off (the ISSUE's
#: debug_checks contract — tests keep it on, benchmarks turn it off).
BENCH_CONFIG = dict(debug_checks=False)

#: Wall seconds the pre-vectorization ``poisson_workload`` (per-element
#: ``float()``/``int()`` conversions in the record comprehension) spent
#: building the 100k-request qps-2 trace: best of 7 interleaved runs on the
#: same container as the committed numbers (~0.22 s after the bulk
#: ``ndarray.tolist()`` rework).
WORKLOAD_BUILD_BASELINE_S = 0.26


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_scenario(name: str, scenario: dict) -> dict:
    workload_kwargs = scenario["workload"]
    build_start = time.perf_counter()
    workload = poisson_workload(**workload_kwargs)
    workload_build_s = time.perf_counter() - build_start
    config = EngineConfig(**{**BENCH_CONFIG, **scenario.get("config", {})})
    engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
    start = time.perf_counter()
    report = engine.run(workload)
    wall_s = time.perf_counter() - start
    serialized = json.dumps(report.to_dict(), sort_keys=True)
    simulated_tokens = int(round(report.iterations * report.mean_batch_tokens))
    tokens_per_s = simulated_tokens / wall_s
    row = {
        **workload_kwargs,
        **scenario.get("config", {}),
        "wall_s": round(wall_s, 3),
        "workload_build_s": round(workload_build_s, 3),
        "iterations": report.iterations,
        "simulated_tokens": simulated_tokens,
        "tokens_per_s": int(tokens_per_s),
        "requests_per_s": int(workload_kwargs["num_requests"] / wall_s),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "completed": report.completed,
        "sustained_qps": round(report.sustained_qps, 4),
        "report_sha256": hashlib.sha256(serialized.encode()).hexdigest(),
    }
    baseline = PRE_PR_BASELINE.get(name)
    if baseline is not None:
        row["pre_pr_baseline"] = baseline
        row["speedup_tokens_per_s"] = round(
            tokens_per_s / baseline["tokens_per_s"], 2
        )
    telemetry_baseline = PRE_TELEMETRY_BASELINE.get(name)
    if telemetry_baseline is not None:
        # Telemetry stays disabled here — this prices the dormant hooks,
        # not tracing itself.  Clamped at zero: a negative "overhead" is
        # just the post-change build winning the noise coin-flip.
        row["pre_telemetry_baseline"] = telemetry_baseline
        row["telemetry_overhead_frac"] = max(
            0.0,
            round(1.0 - tokens_per_s / telemetry_baseline["tokens_per_s"], 4),
        )
    return row


def test_engine_replay_speed():
    # Warm numpy's generator/allocator paths so the first scenario's
    # workload_build_s measures the generator, not one-time setup (the
    # recorded baseline was measured warm the same way).
    poisson_workload(num_requests=1_000, qps=2.0, seed=0)
    results = {
        "schema": "engine-speed/v1",
        "model": "mixtral-8x7b",
        "backend": "milo",
        "device": "a100-40gb",
        "workload_build_baseline_s": WORKLOAD_BUILD_BASELINE_S,
        "scenarios": {
            name: _run_scenario(name, scenario) for name, scenario in SCENARIOS.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_engine.json"
    out_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    for name, row in results["scenarios"].items():
        speedup = (
            f" speedup={row['speedup_tokens_per_s']}x"
            if "speedup_tokens_per_s" in row
            else ""
        )
        print(
            f"{name}: wall={row['wall_s']}s tokens/s={row['tokens_per_s']:,} "
            f"req/s={row['requests_per_s']:,} rss={row['peak_rss_mb']}MB "
            f"build={row['workload_build_s']}s{speedup}"
        )

    # The simulation itself must be untouched by the speed work: every
    # scenario replays to completion with conserved accounting, and its
    # report digest matches the committed one when a committed file exists
    # (cross-machine safe — digests hash simulated results, not wall time).
    for name, row in results["scenarios"].items():
        assert row["completed"] == row["num_requests"], name
    if COMMITTED.exists():
        committed = json.loads(COMMITTED.read_text())
        for name, row in results["scenarios"].items():
            committed_row = committed["scenarios"].get(name)
            if committed_row is not None:
                assert row["report_sha256"] == committed_row["report_sha256"], (
                    f"{name}: simulated report diverged from the committed "
                    f"benchmark baseline — the engine's behavior changed"
                )

    # Wall-clock enforcement is opt-in: ratios against the recorded pre-PR
    # baseline only mean something on comparable hardware.
    if os.environ.get("ENGINE_BENCH_ENFORCE_SPEEDUP") == "1":
        primary = results["scenarios"]["replay_100k_qps2"]
        assert primary["speedup_tokens_per_s"] >= 10.0, (
            f"primary scenario speedup {primary['speedup_tokens_per_s']}x < 10x "
            f"vs the pre-PR baseline"
        )
    if os.environ.get("ENGINE_BENCH_ENFORCE_TELEMETRY") == "1":
        primary = results["scenarios"]["replay_100k_qps2"]
        assert primary["telemetry_overhead_frac"] < 0.05, (
            f"disabled-telemetry overhead "
            f"{primary['telemetry_overhead_frac']:.2%} >= 5% vs the "
            f"pre-telemetry baseline"
        )


def test_fast_path_matches_general_loop_on_bench_workload():
    """Spot-check on a 2k prefix of the primary scenario: the fast path and
    the general loop serialize byte-identically, serial and overlap alike
    (the full-size equivalence lives in the goldens +
    tests/serving/test_engine_equivalence.py)."""
    workload = poisson_workload(num_requests=2_000, qps=2.0, seed=0)
    for extra in (dict(), dict(devices=4, overlap=True)):
        reports = []
        for fast in (True, False):
            engine = ServingEngine(
                MiLoBackend(),
                "mixtral-8x7b",
                EngineConfig(fast_path=fast, **BENCH_CONFIG, **extra),
            )
            reports.append(json.dumps(engine.run(workload).to_dict(), sort_keys=True))
        assert reports[0] == reports[1], extra
