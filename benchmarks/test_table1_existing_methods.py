"""Table 1 — existing quantization methods (RTN, GPTQ) at INT4 vs INT3.

Paper shape: INT4 loses little perplexity over FP16 for both methods and both
models, while INT3 degrades substantially; GPTQ is far slower to run than RTN
(321 s vs 5315 s on Mixtral-8x7B at full scale).
"""

import pytest

from _helpers import compress_model, format_rows, save_result
from repro.quant import project_full_model_time

MODELS = [("mixtral-mini", 46.7), ("deepseek-moe-mini", 16.4)]


def run_table1(evaluation_setups):
    rows = []
    results = {}
    for model_name, params_billions in MODELS:
        teacher, harness = evaluation_setups(model_name)
        fp16_ppl = harness.evaluate(teacher, "fp16", tasks=[]).wikitext2_ppl
        results[(model_name, "fp16", 16)] = fp16_ppl
        rows.append(
            {
                "model": model_name,
                "method": "fp16",
                "bits": 16,
                "wikitext2_ppl": round(fp16_ppl, 4),
                "quant_time_s": 0.0,
                "projected_fullscale_s": 0.0,
            }
        )
        for method in ("rtn", "gptq"):
            for bits in (4, 3):
                model, report = compress_model(model_name, method, bits=bits)
                ppl = harness.evaluate(model, f"{method}{bits}", tasks=[]).wikitext2_ppl
                results[(model_name, method, bits)] = ppl
                rows.append(
                    {
                        "model": model_name,
                        "method": method,
                        "bits": bits,
                        "wikitext2_ppl": round(ppl, 4),
                        "quant_time_s": round(report.quant_time_s, 3),
                        "projected_fullscale_s": round(
                            project_full_model_time(method, params_billions), 0
                        ),
                    }
                )
    return rows, results


@pytest.mark.benchmark(group="table1")
def test_table1_existing_methods(benchmark, evaluation_setups):
    rows, results = benchmark.pedantic(
        run_table1, args=(evaluation_setups,), rounds=1, iterations=1
    )
    save_result(
        "table1_existing_methods",
        format_rows(rows, title="Table 1: existing quantization methods (INT4 vs INT3)"),
    )

    for model_name, _ in MODELS:
        fp16 = results[(model_name, "fp16", 16)]
        for method in ("rtn", "gptq"):
            int4 = results[(model_name, method, 4)]
            int3 = results[(model_name, method, 3)]
            # INT4 is a minor loss, INT3 a major one (the Table 1 message).
            assert fp16 <= int4 < int3
            assert (int4 - fp16) < 0.6 * (int3 - fp16)

    # GPTQ's full-scale quantization time dwarfs RTN's (paper: 5315 s vs 321 s).
    assert project_full_model_time("gptq", 46.7) > 10 * project_full_model_time("rtn", 46.7)
