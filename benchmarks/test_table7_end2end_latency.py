"""Table 7 — end-to-end latency per backend and batch size (Mixtral-8x7B).

Paper shape: the un-quantized PyTorch backend OOMs on a 40 GB A100; GPTQ's
3-bit GeMV backend matches MiLo at batch size 1 but cannot serve batch > 1;
MARLIN serves every batch size but is ~1.2x (batch 1) to ~1.26x (batch 32)
slower than the MiLo backend; MiLo's latency grows only mildly with batch
size because weight streaming dominates.
"""

import pytest

from _helpers import format_rows, save_result
from repro.kernels.simulators import UnsupportedBatchError
from repro.models import FULL_MODEL_SPECS
from repro.runtime import OutOfMemoryError, default_backend_lineup

BATCH_SIZES = (1, 16, 32)
SPEC = FULL_MODEL_SPECS["mixtral-8x7b"]


def run_table7():
    rows = []
    latencies = {}
    for name, backend in default_backend_lineup("mixtral-8x7b").items():
        for batch in BATCH_SIZES:
            try:
                result = backend.step_latency(SPEC, batch)
                cell = result.total
                latencies[(name, batch)] = cell
                display = round(cell * 1e3, 3)
            except OutOfMemoryError:
                display = "OOM"
                latencies[(name, batch)] = None
            except UnsupportedBatchError:
                display = "-"
                latencies[(name, batch)] = None
            rows.append({"backend": name, "batch": batch, "latency_ms": display})
    return rows, latencies


@pytest.mark.benchmark(group="table7")
def test_table7_end_to_end_latency(benchmark):
    rows, latencies = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    save_result(
        "table7_end2end_latency",
        format_rows(rows, title="Table 7: end-to-end decode-step latency, Mixtral-8x7B (modeled A100-40GB)"),
    )

    # PyTorch FP16 cannot host the ~90 GB model on a 40 GB A100.
    assert all(latencies[("PyTorch", b)] is None for b in BATCH_SIZES)

    # GPTQ3bit serves batch 1 only.
    assert latencies[("GPTQ3bit Backend", 1)] is not None
    assert latencies[("GPTQ3bit Backend", 16)] is None

    milo = {b: latencies[("MiLo Backend", b)] for b in BATCH_SIZES}
    marlin = {b: latencies[("MARLIN Backend", b)] for b in BATCH_SIZES}
    gptq1 = latencies[("GPTQ3bit Backend", 1)]

    # Batch 1: GPTQ3bit and MiLo behave similarly; MARLIN is ~1.2x slower.
    assert abs(milo[1] - gptq1) / gptq1 < 0.3
    assert 1.05 < marlin[1] / milo[1] < 1.6

    # MiLo stays ahead of MARLIN at every batch size (paper: 1.2x / 1.26x).
    for batch in BATCH_SIZES:
        assert marlin[batch] / milo[batch] > 1.05

    # Latency grows only mildly with batch size (memory-bound regime).
    assert milo[32] / milo[1] < 6.0
