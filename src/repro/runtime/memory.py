"""Full-scale deployment memory accounting.

The mini models run the algorithms; this module answers the *deployment*
questions the paper's tables pose about the full-size checkpoints:

* how many GB does a W3A16 / W4A16 model take with group-size-64 metadata
  (the "Memory" column of Table 3, e.g. 20.5 GB for INT3 Mixtral-8x7B)?
* how much extra memory does a given compensator strategy add (MiLo-s1 adds
  ~0.3 GB to Mixtral)?
* does a backend fit in a 40 GB A100 at all (the PyTorch FP16 row of
  Table 7 reports OOM because the ~90 GB model does not)?

The inventory enumerates the quantizable weight matrices of a
:class:`~repro.models.registry.FullModelSpec` (attention projections, routed
experts, shared experts) and treats everything else (embeddings, norms,
router gates, LM head) as kept in FP16.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compensator import compensator_memory_bytes
from ..core.strategies import PAPER_STRATEGIES, StrategySpec
from ..models.registry import FullModelSpec

__all__ = [
    "WeightShapeInventory",
    "build_inventory",
    "quantized_model_memory_gb",
    "strategy_compensator_gb",
    "fp16_model_memory_gb",
]

_GB = 1024**3
_FP16_BYTES = 2


@dataclass
class WeightShapeInventory:
    """Shapes (and counts) of the quantizable weights of a full-size model."""

    spec: FullModelSpec
    attention_shapes: list[tuple[int, int]]
    expert_shapes: list[tuple[int, int]]          # one entry per routed-expert matrix
    shared_expert_shapes: list[tuple[int, int]]   # always-activated FFN matrices

    @property
    def quantizable_params(self) -> float:
        total = 0.0
        for shapes in (self.attention_shapes, self.expert_shapes, self.shared_expert_shapes):
            total += sum(m * n for m, n in shapes)
        return total

    @property
    def other_params(self) -> float:
        """Parameters kept in FP16 (embeddings, norms, gates, LM head)."""
        return max(0.0, self.spec.params_billions * 1e9 - self.quantizable_params)


def build_inventory(spec: FullModelSpec) -> WeightShapeInventory:
    """Enumerate weight shapes for a full-size model spec.

    Attention is approximated as four ``hidden x hidden`` projections per
    layer (grouped-query models are slightly smaller; the error is ~1–2% of
    the total footprint).  Expert / shared-expert FFNs use the exact GEMM
    shapes from Appendix C when available.
    """
    h = spec.hidden_size
    attention = [(h, h)] * (4 * spec.num_layers)

    # Routed experts use the per-expert intermediate size (fine-grained experts
    # are small); the Appendix C kernel shapes describe the *dense/shared* FFN
    # of DeepSeek and are not per-routed-expert.
    i = spec.intermediate_size
    expert_matrix_shapes = [(i, h), (h, i), (i, h)]

    moe_layers = spec.num_layers if spec.num_shared_experts == 0 else spec.num_layers - 1
    experts = [s for _ in range(moe_layers * spec.num_experts) for s in expert_matrix_shapes]

    shared: list[tuple[int, int]] = []
    if spec.num_shared_experts:
        shared = [s for _ in range(moe_layers * spec.num_shared_experts) for s in expert_matrix_shapes]
        # Dense first-layer FFN (DeepSeek): roughly the size of the shared experts
        # scaled up to a standard dense FFN.
        dense_i = spec.intermediate_size * 8
        shared += [(dense_i, h), (h, dense_i), (dense_i, h)]

    return WeightShapeInventory(
        spec=spec,
        attention_shapes=attention,
        expert_shapes=experts,
        shared_expert_shapes=shared,
    )


def fp16_model_memory_gb(spec: FullModelSpec) -> float:
    """FP16 footprint of the full model (what needs ~90 GB for Mixtral)."""
    return spec.params_billions * 1e9 * _FP16_BYTES / _GB


def quantized_model_memory_gb(
    spec: FullModelSpec,
    bits: int = 3,
    group_size: int = 64,
    asymmetric: bool = True,
    metadata_bits: int = 16,
) -> float:
    """Weight memory of the quantized model without compensators (Table 3 column)."""
    inventory = build_inventory(spec)
    qparams = inventory.quantizable_params
    entries = 2 if asymmetric else 1
    code_bytes = qparams * bits / 8.0
    metadata_bytes = qparams / group_size * entries * metadata_bits / 8.0
    other_bytes = inventory.other_params * _FP16_BYTES
    return (code_bytes + metadata_bytes + other_bytes) / _GB


def strategy_compensator_gb(
    spec: FullModelSpec,
    strategy: StrategySpec | str,
    compensator_bits: int = 3,
    group_size: int = 64,
) -> float:
    """Extra memory a paper rank strategy adds at full scale.

    Dense ranks apply to the attention and shared-expert matrices; the
    Kurtosis / Frequency components average to their nominal rank over the
    routed experts, so the memory they add equals a uniform assignment of the
    same average (rank re-allocation is memory-neutral by construction).
    """
    if isinstance(strategy, str):
        strategy = PAPER_STRATEGIES[strategy]
    inventory = build_inventory(spec)
    total = 0.0
    if strategy.dense_rank:
        for shape in inventory.attention_shapes + inventory.shared_expert_shapes:
            total += compensator_memory_bytes(shape, strategy.dense_rank, compensator_bits, group_size)
    sparse_rank = strategy.kurtosis_rank + strategy.frequency_rank
    if sparse_rank:
        for shape in inventory.expert_shapes:
            total += compensator_memory_bytes(shape, sparse_rank, compensator_bits, group_size)
    return total / _GB
