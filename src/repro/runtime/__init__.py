"""Inference runtime: deployment memory accounting and end-to-end backends."""

from .backends import (
    BackendResult,
    GPTQ3bitBackend,
    InferenceBackend,
    MarlinBackend,
    MiLoBackend,
    OutOfMemoryError,
    PyTorchFP16Backend,
    default_backend_lineup,
)
from .memory import (
    WeightShapeInventory,
    build_inventory,
    fp16_model_memory_gb,
    quantized_model_memory_gb,
    strategy_compensator_gb,
)

__all__ = [
    "InferenceBackend",
    "PyTorchFP16Backend",
    "GPTQ3bitBackend",
    "MarlinBackend",
    "MiLoBackend",
    "BackendResult",
    "OutOfMemoryError",
    "default_backend_lineup",
    "WeightShapeInventory",
    "build_inventory",
    "fp16_model_memory_gb",
    "quantized_model_memory_gb",
    "strategy_compensator_gb",
]
