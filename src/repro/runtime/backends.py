"""End-to-end inference backends (paper Table 7).

A backend combines three ingredients:

* a **memory check** — the full-size model's deployment footprint against the
  device's VRAM (the PyTorch FP16 backend OOMs on a 40 GB A100 because
  Mixtral-8x7B needs ~90 GB);
* a **kernel simulator** — which packed-GEMM kernel executes the linear
  layers and at what cost;
* an **MoE execution model** — which experts are activated for a batch and
  how many tokens each one processes, plus the per-layer non-GEMM work
  (norms, router, attention score/score-value products, KV handling) and the
  per-step framework overhead.

``step_latency`` returns the latency of one decoding step of the full-size
model; the Table 7 bench compares backends and batch sizes with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernels.device import A100_40GB, DeviceSpec
from ..kernels.simulators import (
    FP16KernelSim,
    GemmShape,
    GPTQ3bitKernelSim,
    KernelSimulator,
    MarlinKernelSim,
    MiLoKernelSim,
    UnsupportedBatchError,
)
from ..models.registry import FULL_MODEL_SPECS, FullModelSpec
from .memory import fp16_model_memory_gb, quantized_model_memory_gb

__all__ = [
    "OutOfMemoryError",
    "BackendResult",
    "InferenceBackend",
    "PyTorchFP16Backend",
    "GPTQ3bitBackend",
    "MarlinBackend",
    "MiLoBackend",
    "default_backend_lineup",
]


class OutOfMemoryError(RuntimeError):
    """Raised when a memory demand does not fit in device VRAM.

    This is the single typed OOM signal shared by the Table 7 bench (the
    PyTorch FP16 row) and the serving admission controller
    (:mod:`repro.serving.engine`): both call :meth:`InferenceBackend.check_memory`
    / :meth:`InferenceBackend.free_memory_gb` and catch this class rather than
    matching sentinel strings.  The structured fields let callers report *how
    far* over budget a configuration is.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        required_gb: float | None = None,
        available_gb: float | None = None,
        device: str | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.required_gb = required_gb
        self.available_gb = available_gb
        #: Which device ran out (e.g. ``"gpu2"`` in a multi-GPU serving
        #: cluster); ``None`` when the demand is not device-specific.
        self.device = device

    @property
    def deficit_gb(self) -> float | None:
        """GB by which the demand exceeds the device, when both are known."""
        if self.required_gb is None or self.available_gb is None:
            return None
        return self.required_gb - self.available_gb


@dataclass
class BackendResult:
    """Latency breakdown of one decoding step."""

    backend: str
    batch_size: int
    gemm_time: float
    overhead_time: float
    memory_gb: float

    @property
    def total(self) -> float:
        return self.gemm_time + self.overhead_time


@dataclass
class InferenceBackend:
    """Base backend: FP16 weights on the modeled A100."""

    name: str = "pytorch-fp16"
    kernel: KernelSimulator = field(default_factory=FP16KernelSim)
    weight_bits: int = 16
    asymmetric: bool = True
    compensator_gb: float = 0.0
    device: DeviceSpec = A100_40GB
    #: Non-GEMM time per transformer layer per step (norms, router, attention
    #: softmax/score products, KV-cache handling, kernel launches).
    per_layer_overhead: float = 40e-6
    #: Fixed per-step framework overhead (Python dispatch, sampling, etc.).
    per_step_overhead: float = 2e-3

    # -- memory ------------------------------------------------------------------
    def model_memory_gb(self, spec: FullModelSpec) -> float:
        if self.weight_bits >= 16:
            return fp16_model_memory_gb(spec)
        return (
            quantized_model_memory_gb(
                spec,
                bits=self.weight_bits,
                group_size=self.kernel.group_size,
                asymmetric=self.asymmetric,
            )
            + self.compensator_gb
        )

    def check_memory(self, spec: FullModelSpec) -> float:
        required = self.model_memory_gb(spec)
        if required > self.device.memory_gb:
            raise OutOfMemoryError(
                f"{self.name}: {spec.name} needs {required:.1f} GB but "
                f"{self.device.name} has {self.device.memory_gb:.0f} GB",
                backend=self.name,
                required_gb=required,
                available_gb=self.device.memory_gb,
            )
        return required

    def free_memory_gb(self, spec: FullModelSpec) -> float:
        """VRAM left for the KV cache and activations after the weights.

        Raises :class:`OutOfMemoryError` when the weights alone do not fit —
        the same code path the Table 7 OOM row exercises, reused by the
        serving engine's admission controller to size its KV block pool.
        """
        return self.device.memory_gb - self.check_memory(spec)

    # -- MoE execution model -------------------------------------------------------
    @staticmethod
    def _expert_load(spec: FullModelSpec, batch: int) -> tuple[int, int]:
        """(number of activated experts, tokens per activated expert) for one step."""
        routed_tokens = batch * spec.experts_per_token
        active = min(spec.num_experts, routed_tokens)
        tokens_per_expert = max(1, routed_tokens // active)
        return active, tokens_per_expert

    def _attention_gemms(self, spec: FullModelSpec, batch: int) -> list[GemmShape]:
        h = spec.hidden_size
        return [GemmShape(m=batch, k=h, n=h) for _ in range(4)]

    def _expert_gemms(self, spec: FullModelSpec, tokens: int) -> list[GemmShape]:
        shapes = spec.ffn_shapes
        if not shapes:
            h, i = spec.hidden_size, spec.intermediate_size
            shapes = {"w1": (h, i), "w2": (i, h), "w3": (h, i)}
        return [GemmShape(m=tokens, k=k, n=n) for k, n in shapes.values()]

    # -- latency -------------------------------------------------------------------
    def step_latency(self, spec: FullModelSpec, batch_size: int) -> BackendResult:
        """Latency of one decoding step for ``batch_size`` concurrent sequences."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        memory_gb = self.check_memory(spec)
        if not self.kernel.supports_batch(batch_size):
            raise UnsupportedBatchError(
                f"{self.name} does not support batch size {batch_size}"
            )

        active_experts, tokens_per_expert = self._expert_load(spec, batch_size)
        gemm_time = 0.0
        for shape in self._attention_gemms(spec, batch_size):
            gemm_time += self.kernel.gemm_cost(shape).total
        expert_time = 0.0
        for shape in self._expert_gemms(spec, tokens_per_expert):
            expert_time += self.kernel.gemm_cost(shape).total
        gemm_time += active_experts * expert_time
        if spec.num_shared_experts:
            for shape in self._expert_gemms(spec, batch_size):
                gemm_time += spec.num_shared_experts * self.kernel.gemm_cost(shape).total
        gemm_time *= spec.num_layers

        overhead = spec.num_layers * self.per_layer_overhead + self.per_step_overhead
        return BackendResult(
            backend=self.name,
            batch_size=batch_size,
            gemm_time=gemm_time,
            overhead_time=overhead,
            memory_gb=memory_gb,
        )

    def iteration_latency(self, spec: FullModelSpec, num_tokens: int) -> BackendResult:
        """Latency of one continuous-batching iteration over ``num_tokens`` rows.

        A serving iteration mixes prefill tokens (a newly-joined request's
        whole prompt) with decode tokens (one per running sequence), so the
        GEMM batch dimension varies step to step.  Kernels with a batch-size
        cap (GPTQ's GeMV only accepts ``m == 1``) cannot run the iteration as
        one pass; this method splits the token block into the largest chunks
        the kernel supports and sums the per-chunk :meth:`step_latency`, each
        chunk paying its own per-step framework overhead — which is exactly
        why GeMV-only backends serve batched traffic so poorly.
        """
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        max_batch = self.kernel.max_batch
        if max_batch is None or num_tokens <= max_batch:
            return self.step_latency(spec, num_tokens)
        gemm_time = 0.0
        overhead_time = 0.0
        memory_gb = 0.0
        remaining = num_tokens
        while remaining > 0:
            chunk = min(remaining, max_batch)
            result = self.step_latency(spec, chunk)
            gemm_time += result.gemm_time
            overhead_time += result.overhead_time
            memory_gb = result.memory_gb
            remaining -= chunk
        return BackendResult(
            backend=self.name,
            batch_size=num_tokens,
            gemm_time=gemm_time,
            overhead_time=overhead_time,
            memory_gb=memory_gb,
        )


class PyTorchFP16Backend(InferenceBackend):
    """Un-quantized reference backend; OOMs for models larger than the device."""

    def __init__(self, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="pytorch-fp16", kernel=FP16KernelSim(device), weight_bits=16, device=device
        )


class GPTQ3bitBackend(InferenceBackend):
    """GPTQ's W3A16 GeMV backend: batch size 1 only, per-channel asymmetric."""

    def __init__(self, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="gptq3bit",
            kernel=GPTQ3bitKernelSim(device),
            weight_bits=3,
            asymmetric=True,
            device=device,
        )


class MarlinBackend(InferenceBackend):
    """MARLIN W4A16 backend (symmetric per-channel / group-128 quantization).

    When serving the MiLo-quantized (asymmetric) checkpoint, the zero-point
    correction cannot be fused into MARLIN's kernel and costs an extra pass —
    why the paper's measured end-to-end gap (1.2–1.26x) exceeds the pure GEMM
    throughput gap.
    """

    def __init__(self, serve_asymmetric_model: bool = True, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="marlin",
            kernel=MarlinKernelSim(handle_asymmetric_model=serve_asymmetric_model, device=device),
            weight_bits=4,
            asymmetric=False,
            device=device,
        )


class MiLoBackend(InferenceBackend):
    """The paper's W3A16 backend (asymmetric, group size 64, fused kernel)."""

    def __init__(
        self,
        compensator_gb: float = 0.0,
        symmetric: bool = False,
        device: DeviceSpec = A100_40GB,
    ) -> None:
        super().__init__(
            name="milo",
            kernel=MiLoKernelSim(symmetric=symmetric, device=device),
            weight_bits=3,
            asymmetric=not symmetric,
            compensator_gb=compensator_gb,
            device=device,
        )


def default_backend_lineup(
    spec_name: str = "mixtral-8x7b", device: DeviceSpec = A100_40GB
) -> dict[str, InferenceBackend]:
    """The Table 7 backend line-up for a given full-size model.

    ``device`` selects the modeled GPU for every backend in the line-up (the
    paper's Table 7 uses the 40 GB A100; serving and benchmarks can swap in
    e.g. ``A100_80GB`` to study budgets where FP16 fits).
    """
    if spec_name not in FULL_MODEL_SPECS:
        raise KeyError(f"unknown full model spec {spec_name!r}")
    return {
        "PyTorch": PyTorchFP16Backend(device=device),
        "GPTQ3bit Backend": GPTQ3bitBackend(device=device),
        "MARLIN Backend": MarlinBackend(serve_asymmetric_model=True, device=device),
        "MiLo Backend": MiLoBackend(device=device),
    }
