"""Parameter and dtype bookkeeping for the numpy model substrate.

The reproduction stores model weights as plain ``numpy.ndarray`` objects
wrapped in :class:`Parameter`, which additionally records a *logical* storage
dtype.  The logical dtype is what a real deployment would keep the tensor in
(``fp16``, ``int4``, ``int3`` ...) and is what all memory accounting in the
paper's tables is based on, while the arithmetic in this substrate is done in
float64/float32 for numerical clarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["LogicalDType", "Parameter", "bits_per_element", "tensor_bytes"]


@dataclass(frozen=True)
class LogicalDType:
    """A logical storage dtype with an explicit bit width.

    Attributes
    ----------
    name:
        Human readable name, e.g. ``"fp16"`` or ``"int3"``.
    bits:
        Number of bits one element occupies when stored (before packing
        overhead, which is zero for the MiLo packing scheme).
    """

    name: str
    bits: float

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FP32 = LogicalDType("fp32", 32)
FP16 = LogicalDType("fp16", 16)
BF16 = LogicalDType("bf16", 16)
INT8 = LogicalDType("int8", 8)
INT4 = LogicalDType("int4", 4)
INT3 = LogicalDType("int3", 3)
INT2 = LogicalDType("int2", 2)

_DTYPES = {d.name: d for d in (FP32, FP16, BF16, INT8, INT4, INT3, INT2)}


def bits_per_element(dtype: str | LogicalDType) -> float:
    """Return the storage width in bits of a logical dtype.

    Parameters
    ----------
    dtype:
        Either a :class:`LogicalDType` or its string name.
    """
    if isinstance(dtype, LogicalDType):
        return dtype.bits
    try:
        return _DTYPES[dtype].bits
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown logical dtype {dtype!r}") from exc


def tensor_bytes(shape: tuple[int, ...], dtype: str | LogicalDType) -> float:
    """Bytes needed to store a tensor of ``shape`` at logical ``dtype``."""
    n = int(np.prod(shape)) if shape else 1
    return n * bits_per_element(dtype) / 8.0


class Parameter:
    """A named weight tensor with a logical storage dtype.

    Parameters
    ----------
    data:
        The weight values.  Stored as ``float64`` internally for numerical
        reproducibility of the quantization algorithms.
    dtype:
        Logical storage dtype used for memory accounting.  Defaults to fp16,
        matching the half-precision checkpoints the paper starts from.
    name:
        Optional name; usually assigned by the owning :class:`Module`.
    """

    def __init__(
        self,
        data: np.ndarray,
        dtype: str | LogicalDType = FP16,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.logical_dtype = dtype if isinstance(dtype, LogicalDType) else _DTYPES[dtype]
        self.name = name

    # -- basic tensor-ish API -------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def numel(self) -> int:
        return self.size

    def nbytes_logical(self) -> float:
        """Storage footprint in bytes at the logical dtype."""
        return tensor_bytes(self.shape, self.logical_dtype)

    def copy(self) -> "Parameter":
        return Parameter(self.data.copy(), self.logical_dtype, self.name)

    def __array__(self, dtype=None) -> np.ndarray:
        return self.data if dtype is None else self.data.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape}, dtype={self.logical_dtype})"


def iter_chunks(a: np.ndarray, chunk: int) -> Iterator[np.ndarray]:
    """Yield contiguous row chunks of ``a`` of at most ``chunk`` rows."""
    for start in range(0, a.shape[0], chunk):
        yield a[start : start + chunk]
