"""Minimal module system for the numpy model substrate.

This mirrors the small subset of ``torch.nn.Module`` the reproduction needs:
registration of parameters and submodules, recursive iteration with dotted
names, and a uniform ``__call__ -> forward`` convention.  Keeping the surface
tiny makes the quantization drivers in :mod:`repro.core` easy to reason about:
they walk ``named_parameters()`` / ``named_modules()`` and swap weights in
place.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base class for all layers in the substrate."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}

    # -- registration ---------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            if not hasattr(self, "_parameters"):
                super().__setattr__("_parameters", {})
            self._parameters[name] = value
            value.name = name
        elif isinstance(value, Module):
            if not hasattr(self, "_modules"):
                super().__setattr__("_modules", {})
            self._modules[name] = value
        super().__setattr__(name, value)

    # -- iteration ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}" if not prefix else f"{prefix}.{name}", param) if prefix else (name, param)
        for mod_name, module in self._modules.items():
            sub_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from module.named_parameters(sub_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for mod_name, module in self._modules.items():
            sub_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from module.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def get_submodule(self, path: str) -> "Module":
        """Resolve a dotted path such as ``"layers.0.attn.q_proj"``."""
        module: Module = self
        if not path:
            return module
        for part in path.split("."):
            if part in module._modules:
                module = module._modules[part]
            else:
                raise KeyError(f"no submodule {part!r} in path {path!r}")
        return module

    def get_parameter(self, path: str) -> Parameter:
        """Resolve a dotted parameter path such as ``"layers.0.attn.q_proj.weight"``."""
        if "." in path:
            mod_path, param_name = path.rsplit(".", 1)
            try:
                module = self.get_submodule(mod_path)
            except KeyError:
                module = self
                param_name = path
        else:
            module, param_name = self, path
        if param_name not in module._parameters:
            raise KeyError(f"no parameter {path!r}")
        return module._parameters[param_name]

    # -- accounting -----------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.numel() for p in self.parameters())

    def memory_bytes(self) -> float:
        """Total logical storage footprint in bytes.

        Counts every parameter at its logical dtype plus any per-module extra
        storage (quantization scales/zero-points, packed side tables, low-rank
        compensators) reported by :meth:`extra_memory_bytes`.
        """
        total = sum(p.nbytes_logical() for p in self.parameters())
        total += sum(module.extra_memory_bytes() for module in self.modules())
        return total

    def extra_memory_bytes(self) -> float:
        """Extra storage not captured by parameters (e.g. quantization metadata).

        Subclasses such as quantized linear layers override this to account
        for scales, zero points and packed-weight side tables.
        """
        return 0.0

    # -- forward --------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            if param.data.shape != np.asarray(values).shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {np.asarray(values).shape}"
                )
            param.data = np.asarray(values, dtype=np.float64).copy()
