"""Weight initializers that reproduce the paper's distributional observations.

MiLo's adaptive rank policies are driven by two statistical properties of
real MoE checkpoints (paper §3.1.1, Table 2, Fig. 2):

* **Dense layers are heavy-tailed.**  Attention projections (and the shared /
  dense FFN components of DeepSeek-MoE) have positive excess kurtosis, i.e.
  pronounced channel-wise outliers.
* **Sparse expert weights are platykurtic.**  Expert FFN weights have negative
  excess kurtosis (lighter tails than a Gaussian).

Since the original multi-billion-parameter checkpoints are unavailable in
this environment, we *construct* weight matrices whose kurtosis matches the
ranges the paper reports (Table 2: attention ≈ +1.6 for Mixtral, experts
≈ -0.5 to -0.9), so every downstream analysis and policy sees the same
signal it would see on the real models.

The heavy-tailed generator mixes a Gaussian bulk with a small fraction of
channel-structured outliers (outliers concentrated in a few input channels,
as in Fig. 2a).  The light-tailed generator draws from a symmetric
Beta-shaped distribution whose excess kurtosis is negative.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "heavy_tailed_weight",
    "light_tailed_weight",
    "gaussian_weight",
    "excess_kurtosis",
]


def excess_kurtosis(w: np.ndarray) -> float:
    """Excess kurtosis ``E[(x-mu)^4]/sigma^4 - 3`` of a weight matrix."""
    x = np.asarray(w, dtype=np.float64).ravel()
    mu = x.mean()
    sigma2 = x.var()
    if sigma2 == 0:
        return 0.0
    return float(np.mean((x - mu) ** 4) / sigma2**2 - 3.0)


def gaussian_weight(
    shape: tuple[int, int],
    std: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Plain Gaussian initialization (used for embeddings and router logits)."""
    rng = rng or np.random.default_rng(0)
    return rng.normal(0.0, std, size=shape)


def heavy_tailed_weight(
    shape: tuple[int, int],
    std: float = 0.02,
    outlier_fraction: float = 0.01,
    outlier_scale: float = 3.5,
    channel_structured: bool = True,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Heavy-tailed weights mimicking attention projections.

    A Gaussian bulk plus a sparse set of large-magnitude outliers.  With
    ``channel_structured=True`` the outliers are concentrated along a few
    input channels, reproducing the channel-wise streaks visible in the
    paper's Fig. 2(a).

    The resulting excess kurtosis is strongly positive (typically between 1
    and 15 depending on ``outlier_fraction`` / ``outlier_scale``).
    """
    rng = rng or np.random.default_rng(0)
    out_features, in_features = shape
    w = rng.normal(0.0, std, size=shape)

    n_outliers = max(1, int(outlier_fraction * w.size))
    if channel_structured:
        # Pick a small number of "hot" input channels and put most outliers there.
        n_channels = max(1, int(np.ceil(0.02 * in_features)))
        hot_channels = rng.choice(in_features, size=n_channels, replace=False)
        rows = rng.integers(0, out_features, size=n_outliers)
        cols = rng.choice(hot_channels, size=n_outliers, replace=True)
    else:
        rows = rng.integers(0, out_features, size=n_outliers)
        cols = rng.integers(0, in_features, size=n_outliers)
    signs = rng.choice([-1.0, 1.0], size=n_outliers)
    magnitudes = outlier_scale * std * (1.0 + rng.exponential(0.4, size=n_outliers))
    w[rows, cols] += signs * magnitudes
    return w


def light_tailed_weight(
    shape: tuple[int, int],
    std: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Light-tailed (platykurtic) weights mimicking sparse expert projections.

    Samples a symmetric Beta(2, 2)-shaped variable rescaled to the requested
    standard deviation; its excess kurtosis is -6/7 ≈ -0.857, in the range the
    paper reports for expert weights (-0.53 for Mixtral, -0.89 for DeepSeek).
    """
    rng = rng or np.random.default_rng(0)
    raw = rng.beta(2.0, 2.0, size=shape) - 0.5  # symmetric around zero, var = 1/20
    return raw * (std / np.sqrt(1.0 / 20.0))


def intermediate_tailed_weight(
    shape: tuple[int, int],
    std: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Mildly leptokurtic weights for shared-expert / dense FFN layers.

    The paper's Table 2 reports kurtosis ≈ +0.32 for DeepSeek shared experts —
    between attention and sparse experts.  We mix a Gaussian bulk with a light
    sprinkling of outliers to land in that range.
    """
    rng = rng or np.random.default_rng(0)
    return heavy_tailed_weight(
        shape,
        std=std,
        outlier_fraction=0.004,
        outlier_scale=2.5,
        channel_structured=False,
        rng=rng,
    )
