"""Top-k expert router with controllable load imbalance.

The router decides which experts process each token.  Two properties matter
for the reproduction:

* **Expert activation frequency is imbalanced**, especially for fine-grained
  MoEs (paper Fig. 3: DeepSeek's most-activated expert fires ~11.7x more
  often than its least-activated sibling in the same layer).  The
  ``imbalance`` parameter injects a fixed per-expert bias into the router
  logits so the synthetic models show the same skew; ``imbalance=0`` keeps a
  Mixtral-like mild skew driven only by the learned-like gate weights.
* The router also **counts activations**, which is the signal MiLo's
  Frequency-{r} rank policy consumes.
"""

from __future__ import annotations

import numpy as np

from .functional import one_hot, softmax, top_k_indices
from .init import gaussian_weight
from .linear import Linear
from .module import Module

__all__ = ["TopKRouter", "RoutingResult"]


class RoutingResult:
    """Routing decision for a batch of tokens.

    Attributes
    ----------
    expert_indices:
        ``(num_tokens, k)`` integer array of selected experts per token.
    expert_weights:
        ``(num_tokens, k)`` normalized gate weights for the selected experts.
    counts:
        ``(num_experts,)`` activation counts accumulated from this batch.
    """

    def __init__(
        self, expert_indices: np.ndarray, expert_weights: np.ndarray, counts: np.ndarray
    ) -> None:
        self.expert_indices = expert_indices
        self.expert_weights = expert_weights
        self.counts = counts


class TopKRouter(Module):
    """Softmax top-k gate over ``num_experts`` experts."""

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        k: int,
        imbalance: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if k <= 0 or k > num_experts:
            raise ValueError(f"invalid top-k {k} for {num_experts} experts")
        rng = rng or np.random.default_rng(0)
        self.num_experts = num_experts
        self.k = k
        self.gate = Linear(
            hidden_size, num_experts, weight=gaussian_weight((num_experts, hidden_size), rng=rng)
        )
        # Fixed per-expert popularity bias.  Drawing from an exponential and
        # scaling by `imbalance` produces a long-tailed activation frequency
        # profile similar to DeepSeek-MoE's fine-grained experts.
        if imbalance > 0:
            bias = rng.exponential(1.0, size=num_experts)
            bias = bias - bias.mean()
            self.popularity_bias = imbalance * bias
        else:
            self.popularity_bias = np.zeros(num_experts)
        # Cumulative activation counts, used by analysis and the Frequency
        # rank policy.
        self.activation_counts = np.zeros(num_experts, dtype=np.int64)

    def reset_counts(self) -> None:
        self.activation_counts = np.zeros(self.num_experts, dtype=np.int64)

    def forward(self, hidden: np.ndarray) -> RoutingResult:
        """Route flattened tokens of shape ``(num_tokens, hidden)``."""
        hidden = np.asarray(hidden, dtype=np.float64)
        if hidden.ndim != 2:
            raise ValueError(f"router expects flattened tokens, got shape {hidden.shape}")
        logits = self.gate(hidden) + self.popularity_bias
        indices = top_k_indices(logits, self.k, axis=-1)
        selected_logits = np.take_along_axis(logits, indices, axis=-1)
        weights = softmax(selected_logits, axis=-1)
        counts = one_hot(indices, self.num_experts).sum(axis=(0, 1)).astype(np.int64)
        self.activation_counts += counts
        return RoutingResult(indices, weights, counts)
