"""Normalization layers."""

from __future__ import annotations

import numpy as np

from .functional import rms_norm
from .module import Module
from .parameter import FP16, Parameter

__all__ = ["RMSNorm"]


class RMSNorm(Module):
    """Root-mean-square normalization with a learned scale (Mixtral/DeepSeek style)."""

    def __init__(self, hidden_size: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.eps = eps
        self.weight = Parameter(np.ones(hidden_size), dtype=FP16)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return rms_norm(x, self.weight.data, eps=self.eps)
