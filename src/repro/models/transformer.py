"""Decoder-only MoE transformer.

This is the substrate the whole reproduction runs on: quantization algorithms
walk its layers, the evaluation harness computes perplexity and task scores
from its logits, and the analysis tooling inspects its weights and router
counts.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .attention import MultiHeadAttention
from .config import MoEModelConfig
from .functional import log_softmax
from .init import gaussian_weight
from .linear import Linear
from .moe import DenseFeedForward, FineGrainedMoEFeedForward, MoEFeedForward
from .module import Module
from .norm import RMSNorm
from .parameter import FP16, Parameter

__all__ = ["TransformerBlock", "MoETransformer", "LayerKind", "classify_parameter"]


class TransformerBlock(Module):
    """Pre-norm block: attention + (MoE or dense) feed-forward with residuals."""

    def __init__(self, config: MoEModelConfig, layer_index: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.input_norm = RMSNorm(config.hidden_size, eps=config.rms_eps)
        self.attn = MultiHeadAttention(config, rng)
        self.post_attn_norm = RMSNorm(config.hidden_size, eps=config.rms_eps)
        if config.first_layer_dense and layer_index == 0:
            self.ffn: Module = DenseFeedForward(
                config.hidden_size, config.dense_intermediate_size, rng, init_std=config.init_std
            )
        elif config.num_shared_experts > 0:
            self.ffn = FineGrainedMoEFeedForward(config, rng)
        else:
            self.ffn = MoEFeedForward(config, rng)

    @property
    def is_moe(self) -> bool:
        return isinstance(self.ffn, MoEFeedForward)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        hidden = hidden + self.attn(self.input_norm(hidden))
        hidden = hidden + self.ffn(self.post_attn_norm(hidden))
        return hidden


class LayerKind:
    """Categories a weight matrix can belong to, per the paper's Table 2."""

    ATTENTION = "attention"          # dense (D), attention projections
    SHARED_EXPERT = "shared_expert"  # dense (D), DeepSeek shared experts / dense FFN
    EXPERT = "expert"                # sparse (S), routed experts
    OTHER = "other"                  # embeddings, norms, router gates, lm head

    DENSE_KINDS = frozenset({ATTENTION, SHARED_EXPERT})
    QUANTIZABLE_KINDS = frozenset({ATTENTION, SHARED_EXPERT, EXPERT})


def classify_parameter(name: str) -> str:
    """Classify a dotted parameter/module name into a :class:`LayerKind`.

    The naming scheme is fixed by the substrate's modules:
    ``layers.<i>.attn.{q,k,v,o}_proj.weight``,
    ``layers.<i>.ffn.expert_<e>.w{1,2,3}.weight``,
    ``layers.<i>.ffn.shared_expert_<e>.w{1,2,3}.weight``,
    ``layers.<i>.ffn.w{1,2,3}.weight`` (dense first layer), plus embeddings,
    norms, gate, and the LM head.
    """
    if ".attn." in name and name.endswith("weight") and "norm" not in name:
        return LayerKind.ATTENTION
    if ".ffn.shared_expert_" in name:
        return LayerKind.SHARED_EXPERT
    if ".ffn.expert_" in name:
        return LayerKind.EXPERT
    if ".ffn.w1." in name or ".ffn.w2." in name or ".ffn.w3." in name:
        # Dense first-layer FFN in DeepSeek-style models.
        return LayerKind.SHARED_EXPERT
    return LayerKind.OTHER


class MoETransformer(Module):
    """Decoder-only MoE language model.

    Parameters
    ----------
    config:
        Architecture definition.  The constructor synthesizes a checkpoint
        whose layer-wise weight statistics follow the calibration targets in
        :mod:`repro.models.init`.
    """

    def __init__(self, config: MoEModelConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embedding = Parameter(
            gaussian_weight((config.vocab_size, config.hidden_size), std=config.init_std, rng=rng),
            dtype=FP16,
        )
        self.layers = [
            TransformerBlock(config, layer_index=i, rng=rng) for i in range(config.num_layers)
        ]
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer_{i}", layer)
        self.final_norm = RMSNorm(config.hidden_size, eps=config.rms_eps)
        self.lm_head = Linear(
            config.hidden_size,
            config.vocab_size,
            weight=gaussian_weight((config.vocab_size, config.hidden_size), std=config.init_std, rng=rng),
        )

    # -- forward ---------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Return logits of shape ``(B, T, vocab)`` for integer ``token_ids`` (B, T)."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got {token_ids.shape}")
        if token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size:
            raise ValueError("token id out of vocabulary range")
        hidden = self.embedding.data[token_ids]
        for layer in self.layers:
            hidden = layer(hidden)
        hidden = self.final_norm(hidden)
        return self.lm_head(hidden) * self.config.logit_scale

    def log_probs(self, token_ids: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary for each position."""
        return log_softmax(self.forward(token_ids), axis=-1)

    # -- structure introspection -------------------------------------------------
    def iter_quantizable(self) -> Iterator[tuple[str, str, Linear]]:
        """Yield ``(param_path, kind, linear)`` for every quantizable weight matrix.

        Quantizable weights are the attention projections, routed expert
        projections, and shared-expert / dense-FFN projections — i.e. the
        weights that dominate model memory.  Embeddings, norms, the router
        gate, and the LM head are left in FP16, matching the paper's
        weight-only grouped quantization setting.
        """
        for mod_name, module in self.named_modules():
            # Only plain Linear layers are quantization *sources*; already
            # quantized layers (QuantizedLinear subclasses Module directly)
            # and non-linear modules are skipped.
            if type(module) is not Linear:
                continue
            param_path = f"{mod_name}.weight"
            kind = classify_parameter(param_path)
            if kind in LayerKind.QUANTIZABLE_KINDS:
                yield param_path, kind, module

    def expert_activation_counts(self) -> dict[int, np.ndarray]:
        """Per-layer cumulative expert activation counts from the routers."""
        counts: dict[int, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            ffn = layer.ffn
            if isinstance(ffn, MoEFeedForward):
                counts[i] = ffn.router.activation_counts.copy()
        return counts

    def reset_expert_counts(self) -> None:
        for layer in self.layers:
            if isinstance(layer.ffn, MoEFeedForward):
                layer.ffn.router.reset_counts()

    def weight_memory_gb(self) -> float:
        """Logical weight footprint in GiB (what Tables 3 and 7 report)."""
        return self.memory_bytes() / (1024**3)
