"""Rotary positional embeddings (RoPE)."""

from __future__ import annotations

import numpy as np

__all__ = ["RotaryEmbedding", "apply_rotary"]


class RotaryEmbedding:
    """Precomputes RoPE cos/sin tables for a given head dimension.

    Parameters
    ----------
    head_dim:
        Per-head dimension (must be even).
    base:
        Frequency base (10000 in Mixtral / DeepSeek).
    max_positions:
        Longest sequence the cache covers; extended lazily if exceeded.
    """

    def __init__(self, head_dim: int, base: float = 10000.0, max_positions: int = 512) -> None:
        if head_dim % 2 != 0:
            raise ValueError("head_dim must be even for rotary embeddings")
        self.head_dim = head_dim
        self.base = base
        self._build(max_positions)

    def _build(self, max_positions: int) -> None:
        self.max_positions = max_positions
        inv_freq = 1.0 / (
            self.base ** (np.arange(0, self.head_dim, 2, dtype=np.float64) / self.head_dim)
        )
        t = np.arange(max_positions, dtype=np.float64)
        freqs = np.outer(t, inv_freq)  # (T, head_dim/2)
        self.cos = np.cos(freqs)
        self.sin = np.sin(freqs)

    def tables(self, seq_len: int) -> tuple[np.ndarray, np.ndarray]:
        if seq_len > self.max_positions:
            self._build(int(2 ** np.ceil(np.log2(seq_len))))
        return self.cos[:seq_len], self.sin[:seq_len]


def apply_rotary(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary embedding to ``x`` of shape ``(..., T, head_dim)``.

    ``cos`` / ``sin`` have shape ``(T, head_dim/2)``.
    """
    x = np.asarray(x, dtype=np.float64)
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out
