"""Mixture-of-Experts feed-forward layers.

Two layer flavours are provided:

* :class:`MoEFeedForward` — Mixtral-style sparse MoE: ``num_experts`` SwiGLU
  experts, a top-k router, no always-on component.
* :class:`FineGrainedMoEFeedForward` — DeepSeek-style MoE: many small routed
  experts plus ``num_shared_experts`` shared experts that every token passes
  through (the *dense* component the paper's Dense-{r} policy also covers).

Both flavours expose ``iter_expert_linears()`` / ``iter_dense_linears()`` so
quantization drivers and rank policies can distinguish sparsely-activated
weights from dense ones without caring which model family they came from.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .config import MoEModelConfig
from .functional import silu
from .init import intermediate_tailed_weight, light_tailed_weight
from .linear import Linear
from .module import Module
from .router import TopKRouter

__all__ = ["SwiGLUExpert", "MoEFeedForward", "FineGrainedMoEFeedForward", "DenseFeedForward"]


class SwiGLUExpert(Module):
    """A single SwiGLU expert: ``w2(silu(w1 x) * w3 x)``.

    ``w1``/``w3`` are the gate/up projections ``(intermediate, hidden)`` and
    ``w2`` is the down projection ``(hidden, intermediate)`` — the same three
    matrices per expert as Mixtral and DeepSeek (Appendix C of the paper).
    """

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
        weight_init=light_tailed_weight,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.intermediate_size = intermediate_size
        self.w1 = Linear(
            hidden_size, intermediate_size,
            weight=weight_init((intermediate_size, hidden_size), std=init_std, rng=rng),
        )
        self.w2 = Linear(
            intermediate_size, hidden_size,
            weight=weight_init((hidden_size, intermediate_size), std=init_std, rng=rng),
        )
        self.w3 = Linear(
            hidden_size, intermediate_size,
            weight=weight_init((intermediate_size, hidden_size), std=init_std, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.w2(silu(self.w1(x)) * self.w3(x))


class DenseFeedForward(SwiGLUExpert):
    """A dense (always-activated) SwiGLU FFN, used for DeepSeek's first layer."""

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
    ) -> None:
        super().__init__(
            hidden_size,
            intermediate_size,
            rng,
            init_std=init_std,
            weight_init=intermediate_tailed_weight,
        )


class MoEFeedForward(Module):
    """Mixtral-style sparse MoE FFN with top-k routing."""

    def __init__(self, config: MoEModelConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.router = TopKRouter(
            config.hidden_size,
            config.num_experts,
            config.experts_per_token,
            imbalance=config.router_imbalance,
            rng=rng,
        )
        self.experts = [
            SwiGLUExpert(
                config.hidden_size, config.intermediate_size, rng, init_std=config.init_std
            )
            for _ in range(config.num_experts)
        ]
        for i, expert in enumerate(self.experts):
            self.register_module(f"expert_{i}", expert)

    # -- introspection for quantization / rank policies -----------------------
    def iter_expert_linears(self) -> Iterator[tuple[str, int, Linear]]:
        """Yield ``(name, expert_index, linear)`` for every routed-expert weight."""
        for i, expert in enumerate(self.experts):
            for proj in ("w1", "w2", "w3"):
                yield f"expert_{i}.{proj}", i, getattr(expert, proj)

    def iter_dense_linears(self) -> Iterator[tuple[str, Linear]]:
        """Yield always-activated linears inside the MoE block (none for Mixtral)."""
        return iter(())

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Apply the MoE FFN to ``hidden`` of shape ``(B, T, H)``."""
        hidden = np.asarray(hidden, dtype=np.float64)
        b, t, h = hidden.shape
        flat = hidden.reshape(-1, h)
        routing = self.router(flat)
        out = np.zeros_like(flat)
        for expert_idx, expert in enumerate(self.experts):
            token_mask = routing.expert_indices == expert_idx  # (tokens, k)
            token_rows, slot_cols = np.nonzero(token_mask)
            if token_rows.size == 0:
                continue
            gate = routing.expert_weights[token_rows, slot_cols][:, None]
            out[token_rows] += gate * expert(flat[token_rows])
        return out.reshape(b, t, h)


class FineGrainedMoEFeedForward(MoEFeedForward):
    """DeepSeek-style MoE FFN: fine-grained routed experts + shared experts."""

    def __init__(self, config: MoEModelConfig, rng: np.random.Generator) -> None:
        super().__init__(config, rng)
        self.shared_experts = [
            SwiGLUExpert(
                config.hidden_size,
                config.intermediate_size,
                rng,
                init_std=config.init_std,
                weight_init=intermediate_tailed_weight,
            )
            for _ in range(config.num_shared_experts)
        ]
        for i, expert in enumerate(self.shared_experts):
            self.register_module(f"shared_expert_{i}", expert)

    def iter_dense_linears(self) -> Iterator[tuple[str, Linear]]:
        for i, expert in enumerate(self.shared_experts):
            for proj in ("w1", "w2", "w3"):
                yield f"shared_expert_{i}.{proj}", getattr(expert, proj)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        routed = super().forward(hidden)
        shared = np.zeros_like(routed)
        for expert in self.shared_experts:
            shared = shared + expert(hidden)
        return routed + shared
