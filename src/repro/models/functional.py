"""Numerical primitives shared by the model substrate.

All functions are vectorized numpy implementations operating on float64
arrays.  They intentionally avoid any framework dependency so the whole
reproduction runs on a CPU-only machine.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "silu",
    "gelu",
    "cross_entropy",
    "rms_norm",
    "top_k_indices",
    "one_hot",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by Mixtral- and DeepSeek-style experts."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        Array of shape ``(..., vocab)``.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    """
    logp = log_softmax(logits, axis=-1)
    flat_logp = logp.reshape(-1, logp.shape[-1])
    flat_targets = np.asarray(targets).reshape(-1)
    if flat_targets.shape[0] != flat_logp.shape[0]:
        raise ValueError(
            f"targets ({flat_targets.shape[0]}) do not match logits rows ({flat_logp.shape[0]})"
        )
    nll = -flat_logp[np.arange(flat_logp.shape[0]), flat_targets]
    return float(np.mean(nll))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalization (as used in Mixtral/DeepSeek)."""
    x = np.asarray(x, dtype=np.float64)
    variance = np.mean(x**2, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def top_k_indices(scores: np.ndarray, k: int, axis: int = -1) -> np.ndarray:
    """Indices of the ``k`` largest entries along ``axis`` (descending order)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if k > scores.shape[axis]:
        raise ValueError(f"k={k} exceeds dimension {scores.shape[axis]}")
    part = np.argpartition(-scores, k - 1, axis=axis)
    topk = np.take(part, np.arange(k), axis=axis)
    gathered = np.take_along_axis(scores, topk, axis=axis)
    order = np.argsort(-gathered, axis=axis, kind="stable")
    return np.take_along_axis(topk, order, axis=axis)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an integer array to shape ``indices.shape + (depth,)``."""
    indices = np.asarray(indices)
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
