"""MoE transformer model substrate (numpy, CPU-only).

Public surface:

* :class:`~repro.models.transformer.MoETransformer` and
  :func:`~repro.models.registry.build_model` — instantiate synthetic MoE
  checkpoints whose weight statistics match the paper's observations.
* :class:`~repro.models.linear.Linear`,
  :class:`~repro.models.linear.QuantizedLinear`,
  :class:`~repro.models.linear.CompensatedLinear` — the three deployment
  states of a weight matrix.
* :func:`~repro.models.transformer.classify_parameter` /
  :class:`~repro.models.transformer.LayerKind` — dense vs. sparse layer
  classification used by quantization drivers and rank policies.
"""

from .config import MoEModelConfig
from .functional import cross_entropy, log_softmax, silu, softmax
from .init import excess_kurtosis, gaussian_weight, heavy_tailed_weight, light_tailed_weight
from .linear import CompensatedLinear, Linear, QuantizedLinear
from .module import Module
from .moe import DenseFeedForward, FineGrainedMoEFeedForward, MoEFeedForward, SwiGLUExpert
from .norm import RMSNorm
from .parameter import Parameter, bits_per_element, tensor_bytes
from .registry import (
    FULL_MODEL_SPECS,
    MODEL_CONFIGS,
    REFERENCE_FFN_SHAPES,
    FullModelSpec,
    available_models,
    build_model,
    get_config,
)
from .router import RoutingResult, TopKRouter
from .transformer import LayerKind, MoETransformer, TransformerBlock, classify_parameter

__all__ = [
    "MoEModelConfig",
    "MoETransformer",
    "TransformerBlock",
    "Module",
    "Parameter",
    "Linear",
    "QuantizedLinear",
    "CompensatedLinear",
    "RMSNorm",
    "TopKRouter",
    "RoutingResult",
    "MoEFeedForward",
    "FineGrainedMoEFeedForward",
    "DenseFeedForward",
    "SwiGLUExpert",
    "LayerKind",
    "classify_parameter",
    "build_model",
    "get_config",
    "available_models",
    "MODEL_CONFIGS",
    "FULL_MODEL_SPECS",
    "REFERENCE_FFN_SHAPES",
    "FullModelSpec",
    "excess_kurtosis",
    "heavy_tailed_weight",
    "light_tailed_weight",
    "gaussian_weight",
    "softmax",
    "log_softmax",
    "silu",
    "cross_entropy",
    "bits_per_element",
    "tensor_bytes",
]
