"""Model registry: mini reproductions of the paper's evaluation targets.

Two kinds of information live here:

1. **Mini model configs** that can actually be instantiated and run on CPU.
   They preserve the architectural *structure* (coarse vs. fine-grained MoE,
   shared experts, routing imbalance, dense first layer) and the weight
   *statistics* (kurtosis contrast between dense and sparse layers) of the
   full models, at a scale where quantization + evaluation complete in
   seconds.

2. **Full-size reference metadata** — parameter counts, FP16 footprints, and
   the exact FFN GEMM shapes from the paper's Appendix C (Table 9) — used by
   the kernel benchmarks (Fig. 9/10, Table 7) and the memory-accounting
   checks (e.g. "Mixtral-8x7B needs ~90 GB in FP16 and therefore OOMs a
   40 GB A100").
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MoEModelConfig
from .transformer import MoETransformer

__all__ = [
    "MODEL_CONFIGS",
    "REFERENCE_FFN_SHAPES",
    "FullModelSpec",
    "FULL_MODEL_SPECS",
    "get_config",
    "build_model",
    "available_models",
]

# ---------------------------------------------------------------------------
# Full-size GEMM shapes (paper Appendix C, Table 9).  (in_features, out_features)
# per FFN projection, expressed as the (k, n) of the weight-only GEMM
# x[m, k] @ W[k, n].
# ---------------------------------------------------------------------------
REFERENCE_FFN_SHAPES: dict[str, dict[str, tuple[int, int]]] = {
    "deepseek-moe": {
        "w1": (2048, 11008),
        "w2": (11008, 2048),
        "w3": (2048, 11008),
    },
    "arctic-moe": {
        "w1": (7168, 4864),
        "w2": (4864, 7168),
        "w3": (7168, 4864),
    },
    "mixtral-8x7b": {
        "w1": (4096, 14336),
        "w2": (14336, 4096),
        "w3": (4096, 14336),
    },
    "falcon-180b": {
        "w1": (14848, 14848 * 5),
        "w2": (14848 * 5, 14848),
    },
}


@dataclass(frozen=True)
class FullModelSpec:
    """Reference metadata about a full-size model used in the paper."""

    name: str
    params_billions: float
    fp16_gb: float
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_experts: int
    experts_per_token: int
    num_shared_experts: int = 0
    #: KV-cache geometry: number of key/value heads (grouped-query attention
    #: shares KV heads between query heads) and the per-head dimension.
    num_kv_heads: int = 8
    head_dim: int = 128
    notes: str = ""

    @property
    def ffn_shapes(self) -> dict[str, tuple[int, int]]:
        return REFERENCE_FFN_SHAPES.get(self.name, {})

    @property
    def kv_bytes_per_token(self) -> int:
        """FP16 KV-cache footprint of one token across all layers.

        One K and one V vector of ``num_kv_heads * head_dim`` FP16 entries per
        layer; the serving block manager allocates paged KV memory in units
        derived from this number.
        """
        return 2 * self.num_layers * self.num_kv_heads * self.head_dim * 2


FULL_MODEL_SPECS: dict[str, FullModelSpec] = {
    "mixtral-8x7b": FullModelSpec(
        name="mixtral-8x7b",
        params_billions=46.7,
        fp16_gb=90.0,
        num_layers=32,
        hidden_size=4096,
        intermediate_size=14336,
        num_experts=8,
        experts_per_token=2,
        num_kv_heads=8,
        head_dim=128,
        notes="Coarse-grained MoE; ~90GB FP16, exceeds one A100.",
    ),
    "deepseek-moe": FullModelSpec(
        name="deepseek-moe",
        params_billions=16.4,
        fp16_gb=31.0,
        num_layers=28,
        hidden_size=2048,
        intermediate_size=1408,
        num_experts=64,
        experts_per_token=6,
        num_shared_experts=2,
        num_kv_heads=16,
        head_dim=128,
        notes="Fine-grained MoE with shared experts and a dense first layer.",
    ),
    "arctic-moe": FullModelSpec(
        name="arctic-moe",
        params_billions=480.0,
        fp16_gb=960.0,
        num_layers=35,
        hidden_size=7168,
        intermediate_size=4864,
        num_experts=128,
        experts_per_token=2,
        num_kv_heads=8,
        head_dim=128,
        notes="Used only for kernel GEMM shape sweeps (Fig. 9).",
    ),
    "falcon-180b": FullModelSpec(
        name="falcon-180b",
        params_billions=180.0,
        fp16_gb=360.0,
        num_layers=80,
        hidden_size=14848,
        intermediate_size=14848 * 5,
        num_experts=1,
        experts_per_token=1,
        num_kv_heads=8,
        head_dim=64,
        notes="Dense model; used only for kernel GEMM shape sweeps (Fig. 9).",
    ),
}


# ---------------------------------------------------------------------------
# Mini model configurations (instantiable on CPU).
# ---------------------------------------------------------------------------
MODEL_CONFIGS: dict[str, MoEModelConfig] = {
    # Mixtral-style: 8 big experts, top-2, no shared experts, balanced-ish router.
    "mixtral-mini": MoEModelConfig(
        name="mixtral-mini",
        vocab_size=512,
        hidden_size=64,
        intermediate_size=144,
        num_layers=3,
        num_heads=4,
        num_kv_heads=2,
        num_experts=8,
        experts_per_token=2,
        router_imbalance=0.4,
        logit_scale=30.0,
        seed=1234,
        reference_params_billions=46.7,
        reference_fp16_gb=90.0,
        reference_ffn_shapes=REFERENCE_FFN_SHAPES["mixtral-8x7b"],
    ),
    # DeepSeek-style: many small experts, top-6, 2 shared experts, dense first
    # layer, strongly imbalanced router (paper Fig. 3 reports ~11.7x skew).
    "deepseek-moe-mini": MoEModelConfig(
        name="deepseek-moe-mini",
        vocab_size=512,
        hidden_size=64,
        intermediate_size=48,
        num_layers=3,
        num_heads=4,
        num_kv_heads=4,
        num_experts=32,
        experts_per_token=6,
        num_shared_experts=2,
        first_layer_dense=True,
        dense_intermediate_size=144,
        router_imbalance=1.6,
        logit_scale=30.0,
        seed=4321,
        reference_params_billions=16.4,
        reference_fp16_gb=31.0,
        reference_ffn_shapes=REFERENCE_FFN_SHAPES["deepseek-moe"],
    ),
    # Tiny configs for fast unit tests.
    "tiny-moe": MoEModelConfig(
        name="tiny-moe",
        vocab_size=64,
        hidden_size=32,
        intermediate_size=40,
        num_layers=2,
        num_heads=2,
        num_kv_heads=2,
        num_experts=4,
        experts_per_token=2,
        router_imbalance=0.5,
        logit_scale=30.0,
        seed=7,
    ),
    "tiny-finegrained": MoEModelConfig(
        name="tiny-finegrained",
        vocab_size=64,
        hidden_size=32,
        intermediate_size=24,
        num_layers=2,
        num_heads=2,
        num_kv_heads=2,
        num_experts=16,
        experts_per_token=4,
        num_shared_experts=1,
        first_layer_dense=True,
        router_imbalance=1.5,
        logit_scale=30.0,
        seed=11,
    ),
}


def available_models() -> list[str]:
    """Names of instantiable mini models."""
    return sorted(MODEL_CONFIGS)


def get_config(name: str) -> MoEModelConfig:
    """Look up a mini model configuration by name."""
    try:
        return MODEL_CONFIGS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from exc


def build_model(name: str) -> MoETransformer:
    """Instantiate a mini model with its calibrated synthetic checkpoint."""
    return MoETransformer(get_config(name))
