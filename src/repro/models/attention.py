"""Multi-head self-attention with grouped-query support and RoPE.

These are the *dense* layers of the MoE models — activated for every token —
whose heavy-tailed weight distributions (paper §3.1.1) make them the most
rank-sensitive targets for MiLo's compensators.
"""

from __future__ import annotations

import numpy as np

from .config import MoEModelConfig
from .functional import softmax
from .init import heavy_tailed_weight
from .linear import Linear
from .module import Module
from .rope import RotaryEmbedding, apply_rotary

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Causal multi-head self-attention.

    Parameters
    ----------
    config:
        Model configuration providing hidden size, head counts, and the
        distributional calibration of the synthetic checkpoint.
    rng:
        Generator used to draw this layer's weights; passing the model-level
        generator keeps every layer's weights distinct but reproducible.
    """

    def __init__(self, config: MoEModelConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        h = config.hidden_size
        kv_dim = config.num_kv_heads * config.head_dim

        def _dense(shape: tuple[int, int]) -> np.ndarray:
            return heavy_tailed_weight(
                shape,
                std=config.init_std,
                outlier_fraction=config.attention_outlier_fraction,
                outlier_scale=config.attention_outlier_scale,
                rng=rng,
            )

        self.q_proj = Linear(h, h, weight=_dense((h, h)))
        self.k_proj = Linear(h, kv_dim, weight=_dense((kv_dim, h)))
        self.v_proj = Linear(h, kv_dim, weight=_dense((kv_dim, h)))
        self.o_proj = Linear(h, h, weight=_dense((h, h)))
        self.rope = RotaryEmbedding(
            config.head_dim, base=config.rope_base, max_positions=config.max_positions
        )

    def _split_heads(self, x: np.ndarray, num_heads: int) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, num_heads, self.config.head_dim).transpose(0, 2, 1, 3)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Apply causal self-attention to ``hidden`` of shape ``(B, T, H)``."""
        hidden = np.asarray(hidden, dtype=np.float64)
        if hidden.ndim != 3:
            raise ValueError(f"expected (batch, seq, hidden), got {hidden.shape}")
        b, t, _ = hidden.shape
        cfg = self.config

        q = self._split_heads(self.q_proj(hidden), cfg.num_heads)
        k = self._split_heads(self.k_proj(hidden), cfg.num_kv_heads)
        v = self._split_heads(self.v_proj(hidden), cfg.num_kv_heads)

        cos, sin = self.rope.tables(t)
        q = apply_rotary(q, cos, sin)
        k = apply_rotary(k, cos, sin)

        # Grouped-query attention: repeat KV heads to match query heads.
        repeat = cfg.num_heads // cfg.num_kv_heads
        if repeat > 1:
            k = np.repeat(k, repeat, axis=1)
            v = np.repeat(v, repeat, axis=1)

        scale = 1.0 / np.sqrt(cfg.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k) * scale
        causal_mask = np.triu(np.full((t, t), -1e30), k=1)
        scores = scores + causal_mask
        attn = softmax(scores, axis=-1)
        context = np.einsum("bhqk,bhkd->bhqd", attn, v)
        context = context.transpose(0, 2, 1, 3).reshape(b, t, cfg.hidden_size)
        return self.o_proj(context)
