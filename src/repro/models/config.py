"""Model architecture configurations.

Two families are modeled, matching the paper's evaluation targets:

* **Mixtral-style** — coarse-grained MoE: a handful of large experts, top-2
  routing, no shared experts; the only dense (always-activated) weights are
  the attention projections.
* **DeepSeek-style** — fine-grained MoE: many small experts, top-k routing
  with k around 6, plus *shared experts* and a dense FFN in the first layer
  that are always activated.

The registry (:mod:`repro.models.registry`) instantiates scaled-down versions
of both, plus dense / other-MoE shapes used only for kernel benchmarks, and
also records the *full-size* layer shapes from the paper's Appendix C so the
kernel throughput experiments sweep the exact GEMM dimensions of Table 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MoEModelConfig"]


@dataclass
class MoEModelConfig:
    """Architecture hyper-parameters for an MoE decoder transformer."""

    name: str
    vocab_size: int = 512
    hidden_size: int = 64
    intermediate_size: int = 144
    num_layers: int = 2
    num_heads: int = 4
    num_kv_heads: int = 4
    num_experts: int = 8
    experts_per_token: int = 2
    # DeepSeek-style extensions
    num_shared_experts: int = 0
    first_layer_dense: bool = False
    dense_intermediate_size: int | None = None
    # Routing imbalance: 0 -> perfectly balanced router logit priors,
    # larger values -> more skewed expert activation frequencies (DeepSeek-like).
    router_imbalance: float = 0.0
    max_positions: int = 256
    rope_base: float = 10000.0
    rms_eps: float = 1e-6
    seed: int = 0
    # Multiplier on the LM-head logits.  Real trained checkpoints produce
    # confident (low-entropy) next-token distributions; a random-weight mini
    # model does not, so the scale is raised until the synthetic teacher's
    # predictive entropy is in the range of a trained LM.  Perplexity on the
    # teacher-consistent corpus is then sensitive to quantization error.
    logit_scale: float = 1.0
    # Distributional calibration of the synthetic checkpoint (see models.init).
    attention_outlier_fraction: float = 0.01
    attention_outlier_scale: float = 3.5
    init_std: float = 0.02
    # Metadata about the *full-size* model this mini config stands in for.
    reference_params_billions: float | None = None
    reference_fp16_gb: float | None = None
    reference_ffn_shapes: dict[str, tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")
        if self.experts_per_token > self.num_experts:
            raise ValueError("experts_per_token cannot exceed num_experts")
        if self.dense_intermediate_size is None:
            self.dense_intermediate_size = self.intermediate_size

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def is_fine_grained(self) -> bool:
        """Fine-grained MoE = many small experts (DeepSeek-style)."""
        return self.num_experts >= 16
