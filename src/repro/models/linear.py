"""Linear layers: full precision, quantized, and quantized-plus-compensated.

The three classes mirror the deployment states in the paper:

* :class:`Linear` — the FP16 checkpoint weight (``W``).
* :class:`QuantizedLinear` — a weight that has been replaced by its
  de-quantized reconstruction ``Q^{-1}(Q(W))``, carrying the group-wise
  scale/zero-point metadata so memory accounting reflects the packed INT-k
  storage plus metadata.
* :class:`CompensatedLinear` — the MiLo deployment form
  ``W̃ = Q^{-1}(W_q) + Q^{-1}(U_q) Q^{-1}(V_q)``: a quantized base weight plus
  a (possibly quantized) low-rank compensator evaluated as two skinny GEMMs.

All layers compute ``y = x @ W.T + b`` with ``W`` of shape
``(out_features, in_features)``, matching the HuggingFace convention used by
Mixtral / DeepSeek checkpoints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module
from .parameter import FP16, LogicalDType, Parameter, tensor_bytes

__all__ = ["Linear", "QuantizedLinear", "CompensatedLinear"]


class Linear(Module):
    """Full-precision linear layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        dtype: LogicalDType = FP16,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if weight is None:
            weight = np.zeros((out_features, in_features))
        if weight.shape != (out_features, in_features):
            raise ValueError(
                f"weight shape {weight.shape} != ({out_features}, {in_features})"
            )
        self.weight = Parameter(weight, dtype=dtype)
        self.bias_values = None if bias is None else np.asarray(bias, dtype=np.float64)

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float64) @ self.weight.data.T
        if self.bias_values is not None:
            y = y + self.bias_values
        return y

    def effective_weight(self) -> np.ndarray:
        """The dense weight this layer multiplies by (for analysis tooling)."""
        return self.weight.data


class QuantizedLinear(Module):
    """Linear layer whose weight is a de-quantized INT-k reconstruction.

    Parameters
    ----------
    dequantized_weight:
        ``Q^{-1}(Q(W))`` — the reconstruction actually used in the forward
        pass of a weight-only-quantized model.
    bits:
        Bit width of the stored quantized weight (e.g. 3 or 4).
    group_size:
        Quantization group size along the input dimension; determines how
        many scale / zero-point entries are stored.
    symmetric:
        Symmetric quantization stores only scales; asymmetric stores scales
        and zero points.  This affects :meth:`extra_memory_bytes`.
    metadata_dtype_bits:
        Width of each scale / zero-point entry (FP16 by default).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        dequantized_weight: np.ndarray,
        bits: int,
        group_size: int,
        symmetric: bool = False,
        bias: Optional[np.ndarray] = None,
        metadata_dtype_bits: int = 16,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.bits = bits
        self.group_size = group_size
        self.symmetric = symmetric
        self.metadata_dtype_bits = metadata_dtype_bits
        self.weight = Parameter(
            dequantized_weight, dtype=LogicalDType(f"int{bits}", bits)
        )
        self.bias_values = None if bias is None else np.asarray(bias, dtype=np.float64)

    def num_groups(self) -> int:
        return self.out_features * int(np.ceil(self.in_features / self.group_size))

    def extra_memory_bytes(self) -> float:
        entries_per_group = 1 if self.symmetric else 2
        return self.num_groups() * entries_per_group * self.metadata_dtype_bits / 8.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float64) @ self.weight.data.T
        if self.bias_values is not None:
            y = y + self.bias_values
        return y

    def effective_weight(self) -> np.ndarray:
        return self.weight.data


class CompensatedLinear(QuantizedLinear):
    """MiLo deployment layer: quantized base weight + low-rank compensator.

    The forward pass evaluates the compensator as two skinny matmuls
    (``(x V^T) U^T``), matching how a fused deployment kernel would apply it
    without materializing the dense correction.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        dequantized_weight: np.ndarray,
        U: np.ndarray,
        V: np.ndarray,
        bits: int,
        group_size: int,
        compensator_bits: int = 3,
        compensator_group_size: int = 64,
        symmetric: bool = False,
        bias: Optional[np.ndarray] = None,
        metadata_dtype_bits: int = 16,
    ) -> None:
        super().__init__(
            in_features,
            out_features,
            dequantized_weight,
            bits=bits,
            group_size=group_size,
            symmetric=symmetric,
            bias=bias,
            metadata_dtype_bits=metadata_dtype_bits,
        )
        U = np.asarray(U, dtype=np.float64)
        V = np.asarray(V, dtype=np.float64)
        if U.shape[0] != out_features or V.shape[1] != in_features:
            raise ValueError(
                f"compensator shapes {U.shape} x {V.shape} do not match weight "
                f"({out_features}, {in_features})"
            )
        if U.shape[1] != V.shape[0]:
            raise ValueError(f"rank mismatch between U {U.shape} and V {V.shape}")
        self.rank = U.shape[1]
        self.compensator_bits = compensator_bits
        self.compensator_group_size = compensator_group_size
        self.U = Parameter(U, dtype=LogicalDType(f"int{compensator_bits}", compensator_bits))
        self.V = Parameter(V, dtype=LogicalDType(f"int{compensator_bits}", compensator_bits))

    def extra_memory_bytes(self) -> float:
        base = super().extra_memory_bytes()
        if self.rank == 0:
            return base
        # Scales (and the symmetric scheme of Eq. 15 stores only scales) for
        # the compensator groups.
        comp_groups = (
            self.U.size + self.V.size
        ) / self.compensator_group_size
        comp_meta = comp_groups * self.metadata_dtype_bits / 8.0
        return base + comp_meta

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y = x @ self.weight.data.T
        if self.rank > 0:
            y = y + (x @ self.V.data.T) @ self.U.data.T
        if self.bias_values is not None:
            y = y + self.bias_values
        return y

    def effective_weight(self) -> np.ndarray:
        if self.rank == 0:
            return self.weight.data
        return self.weight.data + self.U.data @ self.V.data
