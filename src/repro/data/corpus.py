"""Synthetic corpora standing in for the public language-modeling datasets.

The paper evaluates perplexity on WikiText-2.  Without real text or trained
checkpoints, the quantity the perplexity comparison actually measures — *how
much a compressed model's predictive distribution deviates from the FP16
model's* — is reproduced with a **teacher-consistent corpus**: sequences
sampled autoregressively from the FP16 model itself.  On such a corpus the
FP16 model attains the lowest achievable perplexity by construction, and any
compression method is penalized exactly in proportion to how much it perturbs
the model's next-token distributions, which is the ordering mechanism behind
the paper's Table 1 / Table 3 / Table 4 numbers.

A second, model-independent corpus (a Zipfian bigram process) is provided for
GPTQ calibration, so the calibration data is *not* the evaluation data — the
same separation the paper's calibration-bias discussion assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.functional import softmax
from ..models.transformer import MoETransformer

__all__ = ["TokenCorpus", "generate_from_model", "teacher_corpus", "zipfian_corpus"]


@dataclass
class TokenCorpus:
    """A batch of fixed-length token sequences plus provenance metadata."""

    name: str
    tokens: np.ndarray  # (num_sequences, seq_len) int array
    source: str         # "teacher" or "zipfian"

    @property
    def num_sequences(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def seq_len(self) -> int:
        return int(self.tokens.shape[1])

    @property
    def num_tokens(self) -> int:
        return int(self.tokens.size)

    def batches(self, batch_size: int) -> list[np.ndarray]:
        """Split the corpus into forward-pass-sized batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return [
            self.tokens[i : i + batch_size] for i in range(0, self.num_sequences, batch_size)
        ]


def generate_from_model(
    model: MoETransformer,
    num_sequences: int,
    seq_len: int,
    temperature: float = 1.0,
    seed: int = 0,
    prompt_len: int = 1,
) -> np.ndarray:
    """Sample ``num_sequences`` sequences of ``seq_len`` tokens from the model.

    Sampling is plain ancestral sampling with a temperature; the prompt tokens
    are drawn uniformly from the vocabulary.  No KV cache is used (the mini
    models are small enough that re-running the prefix is cheap).
    """
    if seq_len <= prompt_len:
        raise ValueError("seq_len must exceed prompt_len")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    tokens = np.zeros((num_sequences, seq_len), dtype=np.int64)
    tokens[:, :prompt_len] = rng.integers(0, vocab, size=(num_sequences, prompt_len))
    for t in range(prompt_len, seq_len):
        logits = model.forward(tokens[:, :t])[:, -1, :]
        probs = softmax(logits / temperature, axis=-1)
        cumulative = np.cumsum(probs, axis=-1)
        draws = rng.random((num_sequences, 1))
        tokens[:, t] = np.argmax(cumulative >= draws, axis=-1)
    return tokens


def teacher_corpus(
    model: MoETransformer,
    num_sequences: int = 16,
    seq_len: int = 32,
    temperature: float = 0.8,
    seed: int = 0,
) -> TokenCorpus:
    """Teacher-consistent evaluation corpus (the reproduction's "wikitext2-syn")."""
    tokens = generate_from_model(
        model, num_sequences=num_sequences, seq_len=seq_len, temperature=temperature, seed=seed
    )
    return TokenCorpus(name="wikitext2-syn", tokens=tokens, source="teacher")


def zipfian_corpus(
    vocab_size: int,
    num_sequences: int = 16,
    seq_len: int = 32,
    alpha: float = 1.1,
    seed: int = 0,
) -> TokenCorpus:
    """Model-independent Zipfian bigram corpus used for GPTQ calibration.

    Token frequencies follow a Zipf law and consecutive tokens are correlated
    through a random bigram transition table, giving calibration activations
    some realistic structure without depending on the evaluated model.
    """
    if vocab_size < 2:
        raise ValueError("vocab_size must be at least 2")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    unigram = ranks ** (-alpha)
    unigram /= unigram.sum()
    # Bigram table: mixture of the unigram distribution and a random
    # token-specific preference, row-normalized.
    preference = rng.dirichlet(np.full(vocab_size, 0.1), size=vocab_size)
    bigram = 0.5 * unigram[None, :] + 0.5 * preference
    bigram /= bigram.sum(axis=1, keepdims=True)

    tokens = np.zeros((num_sequences, seq_len), dtype=np.int64)
    tokens[:, 0] = rng.choice(vocab_size, size=num_sequences, p=unigram)
    for t in range(1, seq_len):
        for s in range(num_sequences):
            tokens[s, t] = rng.choice(vocab_size, p=bigram[tokens[s, t - 1]])
    return TokenCorpus(name="calibration-zipf", tokens=tokens, source="zipfian")
