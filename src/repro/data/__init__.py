"""Synthetic data substrate: corpora and task suites built from the FP16 teacher."""

from .corpus import TokenCorpus, generate_from_model, teacher_corpus, zipfian_corpus
from .tasks import (
    FEW_SHOT_TASKS,
    TASK_SPECS,
    ZERO_SHOT_TASKS,
    Task,
    TaskItem,
    TaskSpec,
    TaskSuite,
    build_default_suite,
    build_task,
)

__all__ = [
    "TokenCorpus",
    "teacher_corpus",
    "zipfian_corpus",
    "generate_from_model",
    "Task",
    "TaskItem",
    "TaskSuite",
    "TaskSpec",
    "build_task",
    "build_default_suite",
    "TASK_SPECS",
    "ZERO_SHOT_TASKS",
    "FEW_SHOT_TASKS",
]
