"""Synthetic task suites standing in for the public reasoning benchmarks.

The paper evaluates six benchmarks: WikiText-2 (perplexity), PIQA, HellaSwag,
Lambada (zero-shot), and MMLU, TriviaQA (5-shot).  What those accuracy
numbers measure for a *compressed* model is agreement with the original
model's behaviour on discrimination problems.  The synthetic counterparts are
built directly from the FP16 teacher:

* **Multiple-choice tasks** (``piqa-syn``, ``hellaswag-syn``, ``mmlu-syn``):
  each item is a random context plus ``k`` single-token candidate answers
  drawn from the teacher's *top predictions* at that context (so the
  candidates are genuinely competitive), and the gold answer is the candidate
  the teacher ranks highest.  The FP16 model scores 100% by construction;
  a quantized model loses accuracy exactly where its logits are perturbed
  enough to flip a close ranking.
* **Cloze / open-ended tasks** (``lambada-syn``, ``triqa-syn``): the model
  must reproduce the teacher's greedy prediction over the full vocabulary
  (top-1 agreement), the hardest version of the same test.

"Few-shot" tasks use longer contexts (standing in for in-context
demonstrations), which stresses longer-range activations exactly as the
paper's 5-shot settings do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.functional import top_k_indices
from ..models.transformer import MoETransformer

__all__ = [
    "TaskItem",
    "Task",
    "TaskSpec",
    "TaskSuite",
    "build_task",
    "build_default_suite",
    "TASK_SPECS",
    "ZERO_SHOT_TASKS",
    "FEW_SHOT_TASKS",
]


@dataclass
class TaskItem:
    """One evaluation item."""

    prefix: np.ndarray            # (prefix_len,) context token ids
    candidates: list[int] | None  # candidate answer tokens (None for cloze tasks)
    gold: int                     # index into candidates, or the gold token id for cloze


@dataclass
class Task:
    """A named task with a fixed item format."""

    name: str
    kind: str                     # "multiple_choice" or "cloze"
    num_shots: int
    items: list[TaskItem] = field(default_factory=list)

    @property
    def prefix_len(self) -> int:
        return int(self.items[0].prefix.shape[0]) if self.items else 0

    def prefixes(self) -> np.ndarray:
        """All item prefixes stacked into a (num_items, prefix_len) batch."""
        return np.stack([item.prefix for item in self.items])


@dataclass
class TaskSuite:
    """The collection of tasks evaluated in Table 3."""

    tasks: dict[str, Task]

    def __getitem__(self, name: str) -> Task:
        return self.tasks[name]

    def __iter__(self):
        return iter(self.tasks.values())

    def names(self) -> list[str]:
        return list(self.tasks)


@dataclass(frozen=True)
class TaskSpec:
    """Generation recipe for one synthetic task."""

    name: str
    kind: str
    num_candidates: int
    prefix_len: int
    num_shots: int
    candidate_pool: int  # draw candidates from the teacher's top-`pool` tokens


#: Recipes mirroring the difficulty profile of the paper's benchmarks: binary
#: physical-commonsense (PIQA), 4-way completion (HellaSwag), open-vocabulary
#: cloze (Lambada), 4-way few-shot knowledge (MMLU), few-shot open QA (TriQA).
TASK_SPECS: dict[str, TaskSpec] = {
    "piqa-syn": TaskSpec("piqa-syn", "multiple_choice", 2, 12, 0, 8),
    "hellaswag-syn": TaskSpec("hellaswag-syn", "multiple_choice", 4, 16, 0, 12),
    "lambada-syn": TaskSpec("lambada-syn", "cloze", 0, 20, 0, 0),
    "mmlu-syn": TaskSpec("mmlu-syn", "multiple_choice", 4, 40, 5, 10),
    "triqa-syn": TaskSpec("triqa-syn", "cloze", 0, 40, 5, 0),
}

#: Zero-shot tasks averaged in the "Avg" column of Table 3.
ZERO_SHOT_TASKS = ("hellaswag-syn", "lambada-syn", "piqa-syn")
FEW_SHOT_TASKS = ("mmlu-syn", "triqa-syn")


def build_task(
    teacher: MoETransformer,
    spec: TaskSpec,
    num_items: int = 128,
    seed: int = 0,
) -> Task:
    """Generate a task from the teacher model.

    Contexts are random token sequences; candidates (for multiple-choice
    tasks) are sampled from the teacher's top-``candidate_pool`` next-token
    predictions at each context, and the gold label is the teacher's highest
    ranked candidate (or its greedy prediction for cloze tasks).
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    rng = np.random.default_rng(seed)
    vocab = teacher.config.vocab_size
    prefixes = rng.integers(0, vocab, size=(num_items, spec.prefix_len))
    logits = teacher.forward(prefixes)[:, -1, :]  # (num_items, vocab)

    items: list[TaskItem] = []
    if spec.kind == "cloze":
        golds = np.argmax(logits, axis=-1)
        for i in range(num_items):
            items.append(TaskItem(prefix=prefixes[i], candidates=None, gold=int(golds[i])))
    else:
        pool = max(spec.candidate_pool, spec.num_candidates)
        top_pool = top_k_indices(logits, pool, axis=-1)  # descending teacher rank
        for i in range(num_items):
            # Always include the teacher's argmax, fill the rest from the pool.
            others = rng.choice(pool - 1, size=spec.num_candidates - 1, replace=False) + 1
            candidate_ids = [int(top_pool[i, 0])] + [int(top_pool[i, j]) for j in others]
            order = rng.permutation(spec.num_candidates)
            candidates = [candidate_ids[j] for j in order]
            gold = int(np.where(order == 0)[0][0])
            items.append(TaskItem(prefix=prefixes[i], candidates=candidates, gold=gold))
    return Task(name=spec.name, kind=spec.kind, num_shots=spec.num_shots, items=items)


def build_default_suite(
    teacher: MoETransformer,
    num_items: int = 128,
    seed: int = 0,
) -> TaskSuite:
    """Build all five synthetic tasks of the Table 3 evaluation."""
    tasks = {}
    for i, (name, spec) in enumerate(TASK_SPECS.items()):
        tasks[name] = build_task(teacher, spec, num_items=num_items, seed=seed + i)
    return TaskSuite(tasks=tasks)
