"""Group-wise affine quantization grids.

All weight-only quantizers in this reproduction (RTN, HQQ, GPTQ, MiLo) share
the same storage model, matching the paper's setting:

* the weight ``W`` of shape ``(out_features, in_features)`` is split into
  contiguous groups of ``group_size`` elements along the input dimension;
* each group stores a scale ``s`` and (for asymmetric schemes) a zero point
  ``z`` in FP16;
* the quantized code is ``W_q = clip(round(W / s + z), 0, 2^b - 1)`` and the
  de-quantized reconstruction is ``W_dq = s * (W_q - z)`` (paper Eqs. 2–3).

The functions here implement the reshaping, the grid fitting, and the
round-trip, and are reused by every quantizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GroupedWeight",
    "QuantGrid",
    "to_groups",
    "from_groups",
    "fit_minmax_grid",
    "quantize_with_grid",
    "dequantize_with_grid",
    "quantization_error",
]


@dataclass
class GroupedWeight:
    """A weight reshaped to ``(num_groups, group_size)`` plus padding info."""

    groups: np.ndarray
    original_shape: tuple[int, int]
    group_size: int
    pad: int


def to_groups(weight: np.ndarray, group_size: int) -> GroupedWeight:
    """Reshape ``(out, in)`` weight into quantization groups along the input dim.

    If ``in_features`` is not a multiple of ``group_size`` the last group of
    each row is zero-padded; :func:`from_groups` removes the padding again.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {weight.shape}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    out_features, in_features = weight.shape
    pad = (-in_features) % group_size
    if pad:
        weight = np.concatenate([weight, np.zeros((out_features, pad))], axis=1)
    groups = weight.reshape(out_features * ((in_features + pad) // group_size), group_size)
    return GroupedWeight(groups, (out_features, in_features), group_size, pad)


def from_groups(grouped: GroupedWeight, groups: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`to_groups`."""
    data = grouped.groups if groups is None else groups
    out_features, in_features = grouped.original_shape
    padded = data.reshape(out_features, in_features + grouped.pad)
    return padded[:, :in_features].copy()


@dataclass
class QuantGrid:
    """Per-group scale / zero-point for a b-bit affine grid."""

    scale: np.ndarray  # (num_groups, 1)
    zero: np.ndarray   # (num_groups, 1)
    bits: int
    symmetric: bool

    @property
    def qmax(self) -> int:
        return 2**self.bits - 1

    def metadata_bytes(self, metadata_bits: int = 16) -> float:
        entries = 1 if self.symmetric else 2
        return self.scale.size * entries * metadata_bits / 8.0


def fit_minmax_grid(groups: np.ndarray, bits: int, symmetric: bool = False) -> QuantGrid:
    """Fit a min/max affine grid per group (the RTN grid).

    Asymmetric: scale spans ``[min, max]`` and the zero point shifts the grid
    so both extremes are representable.  Symmetric: the grid is centred on the
    mid-code and spans ``[-absmax, +absmax]``.
    """
    if bits < 2 or bits > 8:
        raise ValueError(f"unsupported bit width {bits}")
    groups = np.asarray(groups, dtype=np.float64)
    qmax = 2**bits - 1
    if symmetric:
        absmax = np.max(np.abs(groups), axis=1, keepdims=True)
        scale = 2.0 * absmax / qmax
        # Guard against all-zero groups and against subnormal ranges whose
        # division underflows to zero.
        scale = np.where(scale > 0, scale, 1.0)
        zero = np.full_like(scale, (qmax + 1) / 2.0)
    else:
        gmin = groups.min(axis=1, keepdims=True)
        gmax = groups.max(axis=1, keepdims=True)
        scale = (gmax - gmin) / qmax
        scale = np.where(scale > 0, scale, 1.0)
        zero = -gmin / scale
    return QuantGrid(scale=scale, zero=zero, bits=bits, symmetric=symmetric)


def quantize_with_grid(groups: np.ndarray, grid: QuantGrid) -> np.ndarray:
    """Quantize grouped values to integer codes in ``[0, 2^b - 1]``."""
    codes = np.round(groups / grid.scale + grid.zero)
    return np.clip(codes, 0, grid.qmax)


def dequantize_with_grid(codes: np.ndarray, grid: QuantGrid) -> np.ndarray:
    """Reconstruct grouped values from integer codes."""
    return grid.scale * (codes - grid.zero)


def quantization_error(
    weight: np.ndarray, reconstructed: np.ndarray, relative: bool = True
) -> float:
    """Frobenius-norm quantization error, optionally relative (Fig. 5's metric)."""
    err = float(np.linalg.norm(weight - reconstructed))
    if not relative:
        return err
    denom = float(np.linalg.norm(weight))
    return err / denom if denom > 0 else 0.0
