"""Symmetric quantization of the low-rank compensators (paper §3.2.6, Eq. 15).

After MiLo's iterative optimization, the low-rank factors ``U`` and ``V`` are
themselves quantized — to INT8 (as in LoRC) or, as the paper shows, down to
INT3 with only a ~0.2% perplexity increase — using a simple symmetric
group-wise scheme:

    Q_symm(W) = round((2^b - 1) * W / (2 s)) + 2^(b-1)

where ``s`` is the per-group absolute maximum.  The de-quantization is the
exact inverse.  This module provides the round trip plus memory accounting so
Table 6 and Fig. 11 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SymmetricQuantizedTensor", "quantize_symmetric", "dequantize_symmetric"]


@dataclass
class SymmetricQuantizedTensor:
    """Symmetric group-wise quantized tensor (codes + per-group scales)."""

    codes: np.ndarray          # integer codes, same shape as the source tensor
    scales: np.ndarray         # per-group absolute maxima, shape (num_groups, 1)
    bits: int
    group_size: int
    original_shape: tuple[int, ...]
    pad: int

    def dequantize(self) -> np.ndarray:
        return dequantize_symmetric(self)

    def storage_bytes(self, metadata_bits: int = 16) -> float:
        """Packed codes plus one FP16 scale per group."""
        n = int(np.prod(self.original_shape))
        return n * self.bits / 8.0 + self.scales.size * metadata_bits / 8.0


def _flatten_groups(values: np.ndarray, group_size: int) -> tuple[np.ndarray, int]:
    flat = values.reshape(-1)
    pad = (-flat.size) % group_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    return flat.reshape(-1, group_size), pad


def quantize_symmetric(
    values: np.ndarray, bits: int = 3, group_size: int = 64
) -> SymmetricQuantizedTensor:
    """Symmetric group-wise quantization of an arbitrary-shaped tensor."""
    if bits < 2 or bits > 8:
        raise ValueError(f"unsupported bit width {bits}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    values = np.asarray(values, dtype=np.float64)
    groups, pad = _flatten_groups(values, group_size)
    scales = np.max(np.abs(groups), axis=1, keepdims=True)
    safe_scales = np.where(scales == 0, 1.0, scales)
    qmax = 2**bits - 1
    mid = 2 ** (bits - 1)
    codes = np.round(qmax * groups / (2.0 * safe_scales)) + mid
    codes = np.clip(codes, 0, qmax)
    return SymmetricQuantizedTensor(
        codes=codes,
        scales=scales,
        bits=bits,
        group_size=group_size,
        original_shape=values.shape,
        pad=pad,
    )


def dequantize_symmetric(q: SymmetricQuantizedTensor) -> np.ndarray:
    """Inverse of :func:`quantize_symmetric`."""
    safe_scales = np.where(q.scales == 0, 1.0, q.scales)
    mid = 2 ** (q.bits - 1)
    qmax = 2**q.bits - 1
    groups = (q.codes - mid) * (2.0 * safe_scales) / qmax
    flat = groups.reshape(-1)
    if q.pad:
        flat = flat[: -q.pad]
    return flat.reshape(q.original_shape)
