"""Quantization-time accounting and full-scale projection.

The paper reports wall-clock quantization times for full-size models on an
A100 (Table 1: RTN 321s / GPTQ 5315s for Mixtral-8x7B; Fig. 8 plots time vs.
MMLU).  In this CPU-only reproduction we (a) measure actual wall time on the
mini models, which preserves the *ordering* RTN < HQQ < MiLo < GPTQ, and
(b) project times for the full-size models with a simple per-parameter cost
model whose per-method rates are derived from the paper's own measurements.

The projection intentionally contains no machine-specific detail beyond those
rates: it exists so the Table 1 / Fig. 8 benches can print full-scale numbers
in the same units as the paper.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["QuantTimer", "project_full_model_time", "PER_BILLION_SECONDS"]


# Seconds per billion parameters on an A100, anchored to the paper's Table 1
# (RTN, GPTQ) and Fig. 8 (HQQ slightly above RTN, MiLo ~3x faster than GPTQ).
PER_BILLION_SECONDS: dict[str, float] = {
    "rtn": 6.5,
    "hqq": 13.0,
    "milo": 38.0,
    "gptq": 150.0,
}


def project_full_model_time(method: str, params_billions: float) -> float:
    """Projected quantization wall time (seconds) for a full-size model."""
    key = method.lower()
    if key not in PER_BILLION_SECONDS:
        raise KeyError(f"unknown method {method!r}; known: {sorted(PER_BILLION_SECONDS)}")
    if params_billions <= 0:
        raise ValueError("params_billions must be positive")
    return PER_BILLION_SECONDS[key] * params_billions


@dataclass
class QuantTimer:
    """Accumulates wall-clock time per named stage of a quantization run."""

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + time.perf_counter() - start

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def as_dict(self) -> dict[str, float]:
        out = dict(self.stages)
        out["total"] = self.total
        return out
