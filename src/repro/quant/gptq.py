"""GPTQ baseline: Hessian-guided post-training quantization.

GPTQ (Frantar et al., 2022) quantizes a weight matrix one column at a time
and redistributes each column's rounding error onto the not-yet-quantized
columns, weighted by the inverse Hessian of the layer's calibration inputs
(``H = X^T X + lambda I``).  It is the strongest calibration-*based* baseline
in the paper (Tables 1 and 3) and also the slowest, because it requires
running the model on calibration data and a per-column update loop.

The implementation follows the reference algorithm with group-wise grids:
when a new group of ``group_size`` columns starts, the min/max grid for that
group is fitted from the *current* (error-compensated) weight values.
"""

from __future__ import annotations

import numpy as np

from .base import QuantizedMatrix
from .grid import QuantGrid, fit_minmax_grid

__all__ = ["GPTQQuantizer"]


class GPTQQuantizer:
    """Column-wise GPTQ with optional calibration activations."""

    name = "gptq"
    calibration_free = False

    def __init__(
        self,
        bits: int = 3,
        group_size: int = 64,
        percdamp: float = 0.01,
        symmetric: bool = False,
    ) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.bits = bits
        self.group_size = group_size
        self.percdamp = percdamp
        self.symmetric = symmetric

    # -- Hessian ---------------------------------------------------------------
    def build_hessian(self, calibration_inputs: np.ndarray | None, in_features: int) -> np.ndarray:
        """Build the (damped) Hessian from calibration inputs.

        Without calibration data GPTQ degenerates to an identity Hessian,
        which makes the column updates a no-op (equivalent to RTN); the
        driver treats that as "this expert saw no calibration tokens".
        """
        if calibration_inputs is None or len(calibration_inputs) == 0:
            return np.eye(in_features)
        X = np.asarray(calibration_inputs, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != in_features:
            raise ValueError(
                f"calibration inputs must be (rows, {in_features}), got {X.shape}"
            )
        H = X.T @ X * (2.0 / X.shape[0])
        damp = self.percdamp * float(np.mean(np.diag(H)))
        damp = max(damp, 1e-8)
        H = H + damp * np.eye(in_features)
        return H

    # -- main algorithm ----------------------------------------------------------
    def quantize(
        self,
        weight: np.ndarray,
        calibration_inputs: np.ndarray | None = None,
    ) -> QuantizedMatrix:
        """Quantize ``weight`` of shape ``(out, in)`` guided by calibration inputs."""
        W = np.asarray(weight, dtype=np.float64).copy()
        out_features, in_features = W.shape
        qmax = 2**self.bits - 1

        H = self.build_hessian(calibration_inputs, in_features)
        # Dead columns (never-activated input channels) get a unit diagonal so
        # the Cholesky stays well-posed; their weights are zeroed as in the
        # reference implementation.
        dead = np.diag(H) <= 0
        if np.any(dead):
            H[dead, dead] = 1.0
            W[:, dead] = 0.0

        # Inverse Hessian via Cholesky, as in the reference implementation.
        try:
            Hinv = np.linalg.inv(H)
            L = np.linalg.cholesky(Hinv)
            Hinv_u = L.T  # upper triangular factor; Hinv = L L^T
        except np.linalg.LinAlgError:
            # Severely ill-conditioned calibration; fall back to the diagonal.
            Hinv_u = np.diag(1.0 / np.sqrt(np.maximum(np.diag(H), 1e-8)))

        n_groups_per_row = int(np.ceil(in_features / self.group_size))
        codes = np.zeros_like(W)
        scales = np.zeros((out_features, n_groups_per_row))
        zeros = np.zeros((out_features, n_groups_per_row))

        group_grid: QuantGrid | None = None
        for col in range(in_features):
            group_idx = col // self.group_size
            if col % self.group_size == 0:
                group_cols = W[:, col : col + self.group_size]
                group_grid = fit_minmax_grid(group_cols, self.bits, symmetric=self.symmetric)
                scales[:, group_idx] = group_grid.scale[:, 0]
                zeros[:, group_idx] = group_grid.zero[:, 0]

            assert group_grid is not None
            s = group_grid.scale[:, 0]
            z = group_grid.zero[:, 0]
            w_col = W[:, col]
            q_col = np.clip(np.round(w_col / s + z), 0, qmax)
            codes[:, col] = q_col
            dq_col = s * (q_col - z)

            d = Hinv_u[col, col]
            if d <= 0:
                continue
            err = (w_col - dq_col) / d
            if col + 1 < in_features:
                W[:, col + 1 :] -= np.outer(err, Hinv_u[col, col + 1 :])

        # Repackage into the shared grouped layout: group index runs
        # row-major as (row, column-block), matching grid.to_groups.
        pad = (-in_features) % self.group_size
        if pad:
            codes = np.concatenate([codes, np.zeros((out_features, pad))], axis=1)
        grouped_codes = codes.reshape(out_features * n_groups_per_row, self.group_size)
        grid = QuantGrid(
            scale=scales.reshape(-1, 1),
            zero=zeros.reshape(-1, 1),
            bits=self.bits,
            symmetric=self.symmetric,
        )
        n_calib = 0 if calibration_inputs is None else int(np.asarray(calibration_inputs).shape[0])
        return QuantizedMatrix(
            codes=grouped_codes,
            grid=grid,
            original_shape=(out_features, in_features),
            group_size=self.group_size,
            pad=pad,
            stats={"method": self.name, "calibration_rows": n_calib},
        )
