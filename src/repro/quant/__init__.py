"""Quantization substrate: grids, RTN, HQQ, GPTQ, symmetric compensator quantization."""

from .base import MatrixQuantizer, QuantizedMatrix
from .calibration import ActivationCatcher, capture_layer_inputs
from .gptq import GPTQQuantizer
from .grid import (
    GroupedWeight,
    QuantGrid,
    dequantize_with_grid,
    fit_minmax_grid,
    from_groups,
    quantization_error,
    quantize_with_grid,
    to_groups,
)
from .hqq import HQQConfig, HQQQuantizer, shrink_lp
from .rtn import RTNQuantizer
from .symmetric import SymmetricQuantizedTensor, dequantize_symmetric, quantize_symmetric
from .timing import PER_BILLION_SECONDS, QuantTimer, project_full_model_time

__all__ = [
    "QuantizedMatrix",
    "MatrixQuantizer",
    "RTNQuantizer",
    "HQQQuantizer",
    "HQQConfig",
    "GPTQQuantizer",
    "shrink_lp",
    "QuantGrid",
    "GroupedWeight",
    "to_groups",
    "from_groups",
    "fit_minmax_grid",
    "quantize_with_grid",
    "dequantize_with_grid",
    "quantization_error",
    "quantize_symmetric",
    "dequantize_symmetric",
    "SymmetricQuantizedTensor",
    "ActivationCatcher",
    "capture_layer_inputs",
    "QuantTimer",
    "project_full_model_time",
    "PER_BILLION_SECONDS",
]
