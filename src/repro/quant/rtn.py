"""Round-to-nearest (RTN) baseline quantizer.

RTN is the simplest calibration-free weight-only PTQ method: fit a min/max
grid per group and round.  The paper uses it as the fastest (and least
accurate at INT3) baseline in Tables 1 and 3.
"""

from __future__ import annotations

import numpy as np

from .base import QuantizedMatrix
from .grid import fit_minmax_grid, quantize_with_grid, to_groups

__all__ = ["RTNQuantizer"]


class RTNQuantizer:
    """Group-wise round-to-nearest quantization."""

    name = "rtn"
    calibration_free = True

    def __init__(self, bits: int = 3, group_size: int = 64, symmetric: bool = False) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.bits = bits
        self.group_size = group_size
        self.symmetric = symmetric

    def quantize(self, weight: np.ndarray, target: np.ndarray | None = None) -> QuantizedMatrix:
        """Quantize ``weight``; ``target`` (if given) overrides the values to fit.

        The ``target`` hook lets MiLo re-fit the grid against the residual
        target ``W - UV`` while keeping RTN usable standalone.
        """
        weight = np.asarray(weight, dtype=np.float64)
        values = weight if target is None else np.asarray(target, dtype=np.float64)
        grouped = to_groups(values, self.group_size)
        grid = fit_minmax_grid(grouped.groups, self.bits, symmetric=self.symmetric)
        codes = quantize_with_grid(grouped.groups, grid)
        return QuantizedMatrix(
            codes=codes,
            grid=grid,
            original_shape=grouped.original_shape,
            group_size=self.group_size,
            pad=grouped.pad,
            stats={"method": self.name},
        )
