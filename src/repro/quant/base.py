"""Common result types and the quantizer interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .grid import QuantGrid, dequantize_with_grid, from_groups, to_groups

__all__ = ["QuantizedMatrix", "MatrixQuantizer"]


@dataclass
class QuantizedMatrix:
    """The result of quantizing one weight matrix.

    Attributes
    ----------
    codes:
        Integer codes, grouped layout ``(num_groups, group_size)``.
    grid:
        The per-group scale/zero-point grid.
    original_shape:
        ``(out_features, in_features)`` of the source weight.
    group_size:
        Quantization group size along the input dimension.
    stats:
        Free-form per-matrix diagnostics (iterations, errors, timings).
    """

    codes: np.ndarray
    grid: QuantGrid
    original_shape: tuple[int, int]
    group_size: int
    pad: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def bits(self) -> int:
        return self.grid.bits

    def dequantize(self) -> np.ndarray:
        """Reconstruct the dense ``(out, in)`` weight ``Q^{-1}(W_q)``."""
        grouped = to_groups(np.zeros(self.original_shape), self.group_size)
        grouped_values = dequantize_with_grid(self.codes, self.grid)
        return from_groups(grouped, grouped_values)

    def storage_bytes(self, metadata_bits: int = 16) -> float:
        """Packed-weight bytes plus scale/zero-point metadata bytes."""
        weight_bytes = self.codes.size * self.bits / 8.0
        return weight_bytes + self.grid.metadata_bytes(metadata_bits)


class MatrixQuantizer(Protocol):
    """Anything that can quantize one dense weight matrix."""

    bits: int
    group_size: int

    def quantize(self, weight: np.ndarray, **kwargs) -> QuantizedMatrix:  # pragma: no cover
        ...
