"""Half-Quadratic Quantization (HQQ) — the calibration-free quantizer MiLo builds on.

HQQ (Badri & Shaji, 2023) keeps the min/max scale fixed and optimizes the
per-group zero point so the reconstruction error under a sparsity-promoting
``l_p`` (p < 1) loss is minimized.  The non-smooth problem is split with an
auxiliary variable ``M`` (half-quadratic splitting):

    min_{z, M}  ||M||_p  +  beta/2 * ||M - (W_e - W_dq(z))||_2^2

and solved by alternating

* an ``M`` update via the generalized soft-thresholding (shrinkage) operator
  (paper Eqs. 6–7), and
* a closed-form ``z`` update: the group-wise mean of ``W_q - (W_e - M)/s``
  (paper Eq. 8, written here in the sign convention of our de-quantizer
  ``W_dq = s (W_q - z)``).

``W_e`` is the *effective target*: the raw weight for plain HQQ, or
``W - U V`` when MiLo re-quantizes against the low-rank residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import QuantizedMatrix
from .grid import QuantGrid, fit_minmax_grid, to_groups

__all__ = ["HQQConfig", "HQQQuantizer", "shrink_lp"]


def shrink_lp(x: np.ndarray, beta: float, p: float) -> np.ndarray:
    """Generalized soft-thresholding operator for the l_p (p < 1) prior.

    ``shrink(x, beta) = sign(x) * relu(|x| - |x|^(p-1) / beta)`` (paper Eq. 7).
    For very small ``|x|`` the ``|x|^(p-1)`` term blows up and the output is
    driven to zero, which is exactly the intended behaviour (insignificant
    values are absorbed into the auxiliary variable).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"shrink_lp expects 0 < p < 1, got {p}")
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = np.asarray(x, dtype=np.float64)
    absx = np.abs(x)
    with np.errstate(divide="ignore"):
        threshold = np.where(absx > 0, absx ** (p - 1.0), np.inf) / beta
    return np.sign(x) * np.maximum(absx - threshold, 0.0)


@dataclass
class HQQConfig:
    """Hyper-parameters of the half-quadratic solver (HQQ defaults)."""

    bits: int = 3
    group_size: int = 64
    p_norm: float = 0.7
    beta: float = 10.0
    kappa: float = 1.01       # beta growth factor per inner iteration
    iters: int = 20           # inner iterations of the half-quadratic solver
    early_stop_tol: float = 1e-5


class HQQQuantizer:
    """Calibration-free group-wise quantizer with half-quadratic zero-point optimization."""

    name = "hqq"
    calibration_free = True

    def __init__(self, config: HQQConfig | None = None, **overrides) -> None:
        self.config = config or HQQConfig(**overrides)
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")

    @property
    def bits(self) -> int:
        return self.config.bits

    @property
    def group_size(self) -> int:
        return self.config.group_size

    def quantize(self, weight: np.ndarray, target: np.ndarray | None = None) -> QuantizedMatrix:
        """Quantize ``weight`` (or the MiLo residual ``target``) with optimized zero points."""
        cfg = self.config
        weight = np.asarray(weight, dtype=np.float64)
        values = weight if target is None else np.asarray(target, dtype=np.float64)

        grouped = to_groups(values, cfg.group_size)
        groups = grouped.groups
        base_grid = fit_minmax_grid(groups, cfg.bits, symmetric=False)
        scale = base_grid.scale
        zero = base_grid.zero.copy()
        qmax = base_grid.qmax

        beta = cfg.beta
        prev_err = np.inf
        n_iters = 0
        for _ in range(cfg.iters):
            n_iters += 1
            codes = np.clip(np.round(groups / scale + zero), 0, qmax)
            dequant = scale * (codes - zero)
            residual = groups - dequant
            M = shrink_lp(residual, beta, cfg.p_norm)
            # Closed-form zero-point update: z = <W_q - (W_e - M)/s> per group.
            zero = np.mean(codes - (groups - M) / scale, axis=1, keepdims=True)
            beta *= cfg.kappa
            err = float(np.mean(np.abs(residual) ** cfg.p_norm))
            if abs(prev_err - err) / max(prev_err, 1e-12) < cfg.early_stop_tol:
                break
            prev_err = err

        codes = np.clip(np.round(groups / scale + zero), 0, qmax)
        grid = QuantGrid(scale=scale, zero=zero, bits=cfg.bits, symmetric=False)
        return QuantizedMatrix(
            codes=codes,
            grid=grid,
            original_shape=grouped.original_shape,
            group_size=cfg.group_size,
            pad=grouped.pad,
            stats={"method": self.name, "hqq_iters": n_iters, "final_lp_error": prev_err},
        )
