"""Calibration-data capture for calibration-based quantizers (GPTQ).

GPTQ needs, for every linear layer, a sample of the inputs that layer sees so
it can build the Hessian ``H = X^T X``.  This module provides a context
manager that temporarily instruments selected :class:`~repro.models.linear.Linear`
modules, runs the model on calibration token batches, and collects a bounded
number of input rows per layer.

The capture is what makes GPTQ slow and data-dependent — the two downsides
the paper contrasts with MiLo's calibration-free design — so the reproduction
keeps it as an explicit, measurable stage.
"""

from __future__ import annotations

import types
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..models.linear import Linear
from ..models.module import Module

__all__ = ["ActivationCatcher", "capture_layer_inputs"]


class ActivationCatcher:
    """Accumulates flattened input rows for a set of named linear layers."""

    def __init__(self, max_rows_per_layer: int = 2048) -> None:
        self.max_rows_per_layer = max_rows_per_layer
        self._buffers: dict[str, list[np.ndarray]] = {}
        self._counts: dict[str, int] = {}

    def record(self, name: str, inputs: np.ndarray) -> None:
        rows = np.asarray(inputs, dtype=np.float64).reshape(-1, inputs.shape[-1])
        seen = self._counts.get(name, 0)
        budget = self.max_rows_per_layer - seen
        if budget <= 0:
            return
        rows = rows[:budget]
        self._buffers.setdefault(name, []).append(rows)
        self._counts[name] = seen + rows.shape[0]

    def inputs_for(self, name: str) -> np.ndarray | None:
        """Stacked calibration inputs for a layer, or ``None`` if never activated.

        Sparsely-routed experts may see no tokens at all during calibration —
        exactly the calibration-bias failure mode the paper calls out.
        """
        chunks = self._buffers.get(name)
        if not chunks:
            return None
        return np.concatenate(chunks, axis=0)

    def captured_layers(self) -> list[str]:
        return sorted(self._buffers)

    def total_rows(self) -> int:
        return sum(self._counts.values())


@contextmanager
def capture_layer_inputs(
    model: Module,
    layer_names: list[str] | None = None,
    max_rows_per_layer: int = 2048,
) -> Iterator[ActivationCatcher]:
    """Instrument ``model`` so that forward passes record linear-layer inputs.

    Parameters
    ----------
    model:
        Any module tree containing :class:`Linear` layers.
    layer_names:
        Dotted module names to capture (default: every plain ``Linear``).
    catcher yielded:
        Call the model inside the ``with`` block, then query the catcher.
    """
    catcher = ActivationCatcher(max_rows_per_layer=max_rows_per_layer)
    wanted = set(layer_names) if layer_names is not None else None
    patched: list[tuple[Linear, object]] = []

    for mod_name, module in model.named_modules():
        if type(module) is not Linear:
            continue
        if wanted is not None and mod_name not in wanted:
            continue

        original_forward = module.forward

        def make_wrapper(name: str, fwd):
            def wrapper(self, x):
                catcher.record(name, x)
                return fwd(x)

            return wrapper

        module.forward = types.MethodType(make_wrapper(mod_name, original_forward), module)
        patched.append((module, original_forward))

    try:
        yield catcher
    finally:
        for module, original_forward in patched:
            module.forward = original_forward
