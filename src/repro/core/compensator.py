"""Low-rank compensators: truncated-SVD residual reconstruction.

A compensator approximates the quantization residual ``E = W - Q^{-1}(W_q)``
with a rank-``r`` factorization ``U V`` (``U: m x r``, ``V: r x n``) obtained
from the truncated SVD, the Frobenius-optimal choice by the
Eckart–Young–Mirsky theorem (paper §3.2.3, Eqs. 11–12).  The singular values
are split symmetrically between the two factors
(``U = Û Σ^{1/2}``, ``V = Σ^{1/2} V̂``), matching the paper.

Compensators can themselves be quantized (INT8 or INT3, paper §3.2.6); the
:class:`LowRankCompensator` tracks both the float factors used during the
iterative optimization and the quantized deployment form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import svds

from ..quant.symmetric import SymmetricQuantizedTensor, quantize_symmetric

__all__ = ["truncated_svd_factors", "LowRankCompensator", "compensator_memory_bytes"]


def truncated_svd_factors(residual: np.ndarray, rank: int) -> tuple[np.ndarray, np.ndarray]:
    """Rank-``r`` factors ``(U, V)`` with ``U V`` the best rank-r approximation.

    Uses a dense SVD for small matrices and ARPACK (``scipy.sparse.linalg.svds``)
    when the requested rank is much smaller than the matrix — the same role
    ``torch.svd_lowrank`` plays in the paper's implementation.
    """
    residual = np.asarray(residual, dtype=np.float64)
    if residual.ndim != 2:
        raise ValueError(f"expected a 2-D residual, got shape {residual.shape}")
    m, n = residual.shape
    max_rank = min(m, n)
    if rank <= 0:
        return np.zeros((m, 0)), np.zeros((0, n))
    rank = min(rank, max_rank)

    use_sparse = max_rank > 256 and rank < max_rank // 4
    if use_sparse:
        U_hat, S, Vt_hat = svds(residual, k=rank)
        # svds returns ascending singular values; flip to descending.
        order = np.argsort(-S)
        U_hat, S, Vt_hat = U_hat[:, order], S[order], Vt_hat[order]
    else:
        U_full, S_full, Vt_full = np.linalg.svd(residual, full_matrices=False)
        U_hat, S, Vt_hat = U_full[:, :rank], S_full[:rank], Vt_full[:rank]

    sqrt_s = np.sqrt(S)
    U = U_hat * sqrt_s[None, :]
    V = sqrt_s[:, None] * Vt_hat
    return U, V


def compensator_memory_bytes(
    shape: tuple[int, int],
    rank: int,
    bits: int = 3,
    group_size: int = 64,
    metadata_bits: int = 16,
) -> float:
    """Deployment memory of a rank-``r`` compensator for an ``(m, n)`` weight."""
    if rank <= 0:
        return 0.0
    m, n = shape
    elements = rank * (m + n)
    code_bytes = elements * bits / 8.0
    scale_bytes = np.ceil(elements / group_size) * metadata_bits / 8.0
    return float(code_bytes + scale_bytes)


@dataclass
class LowRankCompensator:
    """A (possibly quantized) low-rank residual compensator for one weight."""

    U: np.ndarray
    V: np.ndarray
    bits: int | None = None          # None => kept in FP16
    group_size: int = 64
    U_quantized: SymmetricQuantizedTensor | None = None
    V_quantized: SymmetricQuantizedTensor | None = None

    @classmethod
    def from_residual(cls, residual: np.ndarray, rank: int, group_size: int = 64) -> "LowRankCompensator":
        U, V = truncated_svd_factors(residual, rank)
        return cls(U=U, V=V, group_size=group_size)

    @property
    def rank(self) -> int:
        return self.U.shape[1]

    def correction(self) -> np.ndarray:
        """The dense correction ``U V`` currently represented (deployment form)."""
        if self.rank == 0:
            return np.zeros((self.U.shape[0], self.V.shape[1]))
        U_dep, V_dep = self.deployment_factors()
        return U_dep @ V_dep

    def quantize(self, bits: int = 3, group_size: int | None = None) -> "LowRankCompensator":
        """Quantize both factors symmetrically (paper Eq. 15); returns ``self``.

        Quantization groups never straddle singular directions: ``U`` is
        quantized along its columns (each column scales like ``sqrt(sigma_i)``
        and has its own magnitude) and ``V`` along its rows, which keeps the
        per-group dynamic range small and the INT3 compensator faithful.
        """
        gs = group_size or self.group_size
        self.bits = bits
        self.group_size = gs
        if self.rank > 0:
            self.U_quantized = quantize_symmetric(self.U.T, bits=bits, group_size=gs)
            self.V_quantized = quantize_symmetric(self.V, bits=bits, group_size=gs)
        return self

    def deployment_factors(self) -> tuple[np.ndarray, np.ndarray]:
        """The (de-quantized, if applicable) factors used at inference time."""
        if self.rank == 0:
            return self.U, self.V
        if self.U_quantized is not None and self.V_quantized is not None:
            return self.U_quantized.dequantize().T, self.V_quantized.dequantize()
        return self.U, self.V

    def memory_bytes(self, metadata_bits: int = 16) -> float:
        """Deployment memory (packed codes + scales, or FP16 if unquantized)."""
        if self.rank == 0:
            return 0.0
        if self.U_quantized is not None and self.V_quantized is not None:
            return self.U_quantized.storage_bytes(metadata_bits) + self.V_quantized.storage_bytes(
                metadata_bits
            )
        return (self.U.size + self.V.size) * 16 / 8.0
