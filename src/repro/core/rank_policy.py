"""Adaptive rank-selection policies for the mixture of low-rank compensators.

The paper's key algorithmic insight (§3.2.5) is that a *uniform* rank wastes
memory: dense (always-activated) layers are far more rank-sensitive than
sparsely-activated experts, high-kurtosis weights lose more information under
extreme quantization, and frequently-routed experts matter more than rarely
routed ones.  MiLo therefore assigns ranks with a policy evaluated over the
model's weight inventory.

Policies implemented (paper names in braces):

* :class:`UniformRank`   — {Uniform-r}: the same rank everywhere.
* :class:`DenseRank`     — {Dense-r}: rank ``r`` for dense layers (attention,
  shared experts, dense FFN), 0 for routed experts.
* :class:`SparseRank`    — {Sparse-r}: rank ``r`` for routed experts only.
* :class:`KurtosisRank`  — {Kurtosis-r}: ranks proportional to each weight's
  excess kurtosis, normalized so the *average* rank over the policy's scope
  equals ``r``.
* :class:`FrequencyRank` — {Frequency-r}: ranks proportional to each expert's
  routing frequency, average controlled to ``r``.
* :class:`CompositeRankPolicy` — sum of policies, e.g. Dense-512 + Kurtosis-16
  (the paper's MiLo-s1 for Mixtral).

Each policy maps a list of :class:`WeightEntry` descriptors to a
``{parameter path: rank}`` dict, so it is independent of any particular model
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..models.init import excess_kurtosis
from ..models.transformer import LayerKind
from .compensator import compensator_memory_bytes

__all__ = [
    "WeightEntry",
    "RankPolicy",
    "UniformRank",
    "DenseRank",
    "SparseRank",
    "KurtosisRank",
    "FrequencyRank",
    "CompositeRankPolicy",
    "total_compensator_memory",
    "uniform_rank_for_budget",
]


@dataclass
class WeightEntry:
    """Descriptor of one quantizable weight matrix.

    Attributes
    ----------
    name:
        Dotted parameter path (e.g. ``"layer_0.attn.q_proj.weight"``).
    kind:
        One of :class:`~repro.models.transformer.LayerKind` values.
    shape:
        ``(out_features, in_features)``.
    weight:
        The weight values (used by the Kurtosis policy); optional.
    layer_index:
        Transformer layer index, or -1 if not applicable.
    expert_index:
        Routed-expert index within its layer, or -1 for non-expert weights.
    expert_frequency:
        Relative activation frequency of the owning expert (normalized within
        its layer); 0 for non-expert weights.
    """

    name: str
    kind: str
    shape: tuple[int, int]
    weight: np.ndarray | None = None
    layer_index: int = -1
    expert_index: int = -1
    expert_frequency: float = 0.0
    _kurtosis: float | None = field(default=None, repr=False)

    @property
    def is_dense(self) -> bool:
        return self.kind in LayerKind.DENSE_KINDS

    @property
    def is_expert(self) -> bool:
        return self.kind == LayerKind.EXPERT

    @property
    def max_rank(self) -> int:
        return min(self.shape)

    def kurtosis(self) -> float:
        if self._kurtosis is None:
            if self.weight is None:
                raise ValueError(f"entry {self.name} has no weight data for kurtosis")
            self._kurtosis = excess_kurtosis(self.weight)
        return self._kurtosis


def _clip_ranks(entries: Sequence[WeightEntry], ranks: dict[str, int]) -> dict[str, int]:
    """Clip every assigned rank to the matrix's maximum possible rank."""
    by_name = {e.name: e for e in entries}
    return {name: int(min(max(r, 0), by_name[name].max_rank)) for name, r in ranks.items()}


class RankPolicy:
    """Base class; subclasses implement :meth:`_assign`."""

    #: Scope of the policy: "all", "dense", or "sparse" (routed experts).
    scope: str = "all"

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__

    def _in_scope(self, entry: WeightEntry) -> bool:
        if self.scope == "all":
            return True
        if self.scope == "dense":
            return entry.is_dense
        if self.scope == "sparse":
            return entry.is_expert
        raise ValueError(f"unknown scope {self.scope!r}")

    def _assign(self, entries: Sequence[WeightEntry]) -> dict[str, int]:  # pragma: no cover
        raise NotImplementedError

    def assign(self, entries: Sequence[WeightEntry]) -> dict[str, int]:
        """Return a ``{name: rank}`` dict covering every entry (0 when out of scope)."""
        ranks = {e.name: 0 for e in entries}
        ranks.update(self._assign([e for e in entries if self._in_scope(e)]))
        return _clip_ranks(entries, ranks)


class UniformRank(RankPolicy):
    """The same rank for every weight in scope (paper Uniform-{r})."""

    def __init__(self, rank: int, scope: str = "all") -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self.rank = int(rank)
        self.scope = scope

    def describe(self) -> str:
        return f"Uniform-{self.rank}" if self.scope == "all" else f"Uniform-{self.rank}({self.scope})"

    def _assign(self, entries: Sequence[WeightEntry]) -> dict[str, int]:
        return {e.name: self.rank for e in entries}


class DenseRank(UniformRank):
    """Rank only for dense (always-activated) layers (paper Dense-{r})."""

    def __init__(self, rank: int) -> None:
        super().__init__(rank, scope="dense")

    def describe(self) -> str:
        return f"Dense-{self.rank}"


class SparseRank(UniformRank):
    """Rank only for sparsely-activated routed experts (paper Sparse-{r})."""

    def __init__(self, rank: int) -> None:
        super().__init__(rank, scope="sparse")

    def describe(self) -> str:
        return f"Sparse-{self.rank}"


class _ProportionalRank(RankPolicy):
    """Shared machinery for score-proportional policies with a controlled average."""

    def __init__(self, average_rank: int, scope: str) -> None:
        if average_rank < 0:
            raise ValueError("average_rank must be non-negative")
        self.average_rank = int(average_rank)
        self.scope = scope

    def _scores(self, entries: Sequence[WeightEntry]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _assign(self, entries: Sequence[WeightEntry]) -> dict[str, int]:
        if not entries or self.average_rank == 0:
            return {e.name: 0 for e in entries}
        scores = self._scores(entries).astype(np.float64)
        # Shift scores to be non-negative (kurtosis can be negative) and avoid
        # an all-zero allocation when every score is identical.
        scores = scores - scores.min()
        if scores.sum() <= 0:
            scores = np.ones(len(entries))
        budget = self.average_rank * len(entries)
        raw = budget * scores / scores.sum()
        ranks = np.floor(raw).astype(int)
        # Distribute the remaining budget to the largest fractional parts so
        # the total (and hence the average/memory) is preserved exactly.
        remainder = int(budget - ranks.sum())
        if remainder > 0:
            order = np.argsort(-(raw - ranks))
            ranks[order[:remainder]] += 1
        return {e.name: int(r) for e, r in zip(entries, ranks)}


class KurtosisRank(_ProportionalRank):
    """Ranks proportional to weight kurtosis (paper Kurtosis-{r})."""

    def __init__(self, average_rank: int, scope: str = "sparse") -> None:
        super().__init__(average_rank, scope)

    def describe(self) -> str:
        return f"Kurtosis-{self.average_rank}"

    def _scores(self, entries: Sequence[WeightEntry]) -> np.ndarray:
        return np.array([e.kurtosis() for e in entries])


class FrequencyRank(_ProportionalRank):
    """Ranks proportional to expert routing frequency (paper Frequency-{r})."""

    def __init__(self, average_rank: int, scope: str = "sparse") -> None:
        super().__init__(average_rank, scope)

    def describe(self) -> str:
        return f"Frequency-{self.average_rank}"

    def _scores(self, entries: Sequence[WeightEntry]) -> np.ndarray:
        return np.array([e.expert_frequency for e in entries])


class CompositeRankPolicy(RankPolicy):
    """Sum of several policies (e.g. Dense-512 + Kurtosis-16)."""

    def __init__(self, policies: Iterable[RankPolicy]) -> None:
        self.policies = list(policies)
        if not self.policies:
            raise ValueError("CompositeRankPolicy needs at least one policy")

    def describe(self) -> str:
        return " + ".join(p.describe() for p in self.policies)

    def assign(self, entries: Sequence[WeightEntry]) -> dict[str, int]:
        combined = {e.name: 0 for e in entries}
        for policy in self.policies:
            for name, rank in policy.assign(entries).items():
                combined[name] += rank
        return _clip_ranks(entries, combined)


# ---------------------------------------------------------------------------
# Memory accounting helpers used by the memory-constrained comparisons
# (Table 4 left block fixes a 200 MB compensator budget across strategies).
# ---------------------------------------------------------------------------
def total_compensator_memory(
    entries: Sequence[WeightEntry],
    ranks: dict[str, int],
    bits: int = 3,
    group_size: int = 64,
) -> float:
    """Total deployment memory (bytes) of the compensators implied by ``ranks``."""
    total = 0.0
    for entry in entries:
        total += compensator_memory_bytes(entry.shape, ranks.get(entry.name, 0), bits, group_size)
    return total


def uniform_rank_for_budget(
    entries: Sequence[WeightEntry],
    budget_bytes: float,
    bits: int = 3,
    group_size: int = 64,
    scope: str = "all",
) -> int:
    """Largest uniform rank whose compensators fit within ``budget_bytes``.

    This is how the paper picks e.g. Uniform-28 vs Dense-512 vs Sparse-32 so
    that all three strategies consume the same 200 MB budget.
    """
    if budget_bytes <= 0:
        return 0
    rank = 0
    while True:
        candidate = rank + 1
        policy = UniformRank(candidate, scope=scope)
        ranks = policy.assign(entries)
        if total_compensator_memory(entries, ranks, bits, group_size) > budget_bytes:
            return rank
        rank = candidate
        if all(rank >= e.max_rank for e in entries if policy._in_scope(e)):
            return rank
