"""MiLo matrix-level optimizer (paper Algorithm 1).

For one weight matrix ``W`` and a target rank ``r``, MiLo alternates two
sub-problems until the stop condition is met:

* **sp1 — quantization with the compensator fixed**: re-run the HQQ
  half-quadratic zero-point optimization against the shifted target
  ``W - U^{t-1} V^{t-1}`` (paper §3.2.2).  At iteration 0 the compensator is
  zero, so sp1 reduces to plain HQQ.
* **sp2 — compensation with the quantization fixed**: set ``(U^t, V^t)`` to
  the truncated SVD of the residual ``E^t = W - W_dq^t`` (paper §3.2.3).

The per-iteration error ``eps_t = ||W - W_dq^t - U^t V^t||_F`` (Eq. 13) is
recorded — it is what Fig. 7 plots — and the loop stops when the
three-iteration sliding-window average improves by less than ``1e-4``
relative (Eq. 14) or when the ``early_stop`` iteration cap (20 by default) is
reached, or if the error starts to diverge.

After convergence the compensator is quantized symmetrically (INT3 by
default, paper §3.2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..quant.base import QuantizedMatrix
from ..quant.hqq import HQQConfig, HQQQuantizer
from .compensator import LowRankCompensator, truncated_svd_factors

__all__ = ["MiLoConfig", "MiLoMatrixResult", "MiLoMatrixOptimizer"]


@dataclass
class MiLoConfig:
    """Hyper-parameters of the MiLo iterative optimization."""

    bits: int = 3
    group_size: int = 64
    max_iterations: int = 20          # the paper's early-stop cap
    stop_tol: float = 1e-4            # Eq. 14 threshold
    window: int = 3                   # sliding window for the stop condition
    divergence_patience: int = 2      # consecutive increases of eps_t before aborting
    compensator_bits: int | None = 3  # None keeps the compensator in FP16
    compensator_group_size: int = 64
    hqq: HQQConfig = field(default_factory=HQQConfig)

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        # Keep the inner quantizer consistent with the outer settings.
        self.hqq = HQQConfig(
            bits=self.bits,
            group_size=self.group_size,
            p_norm=self.hqq.p_norm,
            beta=self.hqq.beta,
            kappa=self.hqq.kappa,
            iters=self.hqq.iters,
            early_stop_tol=self.hqq.early_stop_tol,
        )


@dataclass
class MiLoMatrixResult:
    """Output of MiLo for a single weight matrix."""

    quantized: QuantizedMatrix
    compensator: LowRankCompensator
    rank: int
    iterations: int
    error_history: list[float]
    converged: bool
    stop_reason: str

    def dequantized_base(self) -> np.ndarray:
        """``Q^{-1}(W_q)`` — the quantized base weight without the compensator."""
        return self.quantized.dequantize()

    def reconstructed(self) -> np.ndarray:
        """Deployment reconstruction ``Q^{-1}(W_q) + Q^{-1}(U_q) Q^{-1}(V_q)``."""
        return self.dequantized_base() + self.compensator.correction()

    def final_error(self) -> float:
        return self.error_history[-1] if self.error_history else float("nan")


class MiLoMatrixOptimizer:
    """Runs Algorithm 1 on individual weight matrices."""

    def __init__(self, config: MiLoConfig | None = None) -> None:
        self.config = config or MiLoConfig()
        self._hqq = HQQQuantizer(self.config.hqq)

    def optimize(self, weight: np.ndarray, rank: int) -> MiLoMatrixResult:
        """Jointly optimize the quantization and a rank-``r`` compensator of ``weight``."""
        cfg = self.config
        W = np.asarray(weight, dtype=np.float64)
        if W.ndim != 2:
            raise ValueError(f"MiLo operates on 2-D weights, got shape {W.shape}")
        rank = max(0, int(rank))

        m, n = W.shape
        U = np.zeros((m, 0 if rank == 0 else rank))
        V = np.zeros((0 if rank == 0 else rank, n))
        if rank == 0:
            # Degenerate case: plain HQQ, one pass, no compensator.
            quantized = self._hqq.quantize(W)
            err = float(np.linalg.norm(W - quantized.dequantize()))
            compensator = LowRankCompensator(U=np.zeros((m, 0)), V=np.zeros((0, n)))
            return MiLoMatrixResult(
                quantized=quantized,
                compensator=compensator,
                rank=0,
                iterations=1,
                error_history=[err],
                converged=True,
                stop_reason="rank-0 (quantization only)",
            )

        history: list[float] = []
        window_means: list[float] = []
        quantized: QuantizedMatrix | None = None
        diverge_count = 0
        stop_reason = "max-iterations"
        iterations = 0

        for t in range(cfg.max_iterations):
            iterations = t + 1
            # sp1: re-quantize against the compensator-shifted target.
            target = W - U @ V if U.shape[1] else W
            quantized = self._hqq.quantize(W, target=target)
            W_dq = quantized.dequantize()
            # sp2: best rank-r approximation of the fresh residual.
            residual = W - W_dq
            U, V = truncated_svd_factors(residual, rank)

            eps_t = float(np.linalg.norm(W - W_dq - U @ V))
            history.append(eps_t)

            # Divergence guard (the paper aborts if the error starts to grow).
            if len(history) >= 2 and eps_t > history[-2] * (1 + 1e-12):
                diverge_count += 1
                if diverge_count >= cfg.divergence_patience:
                    stop_reason = "diverged"
                    break
            else:
                diverge_count = 0

            # Sliding-window relative-improvement stop condition (Eq. 14).
            if len(history) >= cfg.window:
                window_means.append(float(np.mean(history[-cfg.window :])))
            if len(window_means) >= 2:
                prev, curr = window_means[-2], window_means[-1]
                if prev > 0 and (prev - curr) / prev < cfg.stop_tol:
                    stop_reason = "converged"
                    break

        assert quantized is not None
        compensator = LowRankCompensator(U=U, V=V, group_size=cfg.compensator_group_size)
        if cfg.compensator_bits is not None:
            compensator.quantize(bits=cfg.compensator_bits, group_size=cfg.compensator_group_size)

        return MiLoMatrixResult(
            quantized=quantized,
            compensator=compensator,
            rank=rank,
            iterations=iterations,
            error_history=history,
            converged=stop_reason in ("converged", "rank-0 (quantization only)"),
            stop_reason=stop_reason,
        )
