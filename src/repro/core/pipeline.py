"""Model-level compression driver.

:class:`ModelCompressor` walks a :class:`~repro.models.transformer.MoETransformer`,
quantizes every quantizable weight with the selected method (RTN / HQQ / GPTQ /
MiLo), and swaps each full-precision :class:`~repro.models.linear.Linear` for
its deployment form (:class:`~repro.models.linear.QuantizedLinear` or
:class:`~repro.models.linear.CompensatedLinear`).  It returns the modified
model together with a :class:`CompressionReport` containing the memory
footprint, wall-clock quantization time, and per-matrix diagnostics (ranks,
error histories) that the analysis benches consume.

The driver also owns the two auxiliary passes some methods need:

* **expert-frequency profiling** (for the Frequency rank policy): a short
  forward pass over profiling tokens, reading the routers' activation counts;
* **calibration capture** (for GPTQ): recording per-layer inputs, which is
  the expensive, bias-introducing step MiLo avoids by design.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..models.linear import CompensatedLinear, Linear, QuantizedLinear
from ..models.module import Module
from ..models.transformer import MoETransformer
from ..quant.calibration import capture_layer_inputs
from ..quant.gptq import GPTQQuantizer
from ..quant.hqq import HQQConfig, HQQQuantizer
from ..quant.rtn import RTNQuantizer
from ..quant.timing import QuantTimer
from .milo import MiLoConfig, MiLoMatrixOptimizer
from .rank_policy import RankPolicy, UniformRank, WeightEntry

__all__ = [
    "CompressionReport",
    "ModelCompressor",
    "build_weight_entries",
    "profile_expert_frequencies",
    "replace_linear",
]

_LAYER_RE = re.compile(r"layer_(\d+)\.")
_EXPERT_RE = re.compile(r"\.expert_(\d+)\.")


def replace_linear(model: Module, module_path: str, new_module: Module) -> None:
    """Replace the submodule at ``module_path`` (e.g. ``layer_0.attn.q_proj``)."""
    if "." in module_path:
        parent_path, attr = module_path.rsplit(".", 1)
        parent = model.get_submodule(parent_path)
    else:
        parent, attr = model, module_path
    if attr not in parent._modules:
        raise KeyError(f"{module_path!r} is not a registered submodule")
    setattr(parent, attr, new_module)


def profile_expert_frequencies(
    model: MoETransformer, tokens: np.ndarray
) -> dict[int, np.ndarray]:
    """Run ``tokens`` through the model and return normalized per-layer expert frequencies.

    The router counts are reset before and after profiling so repeated calls
    are independent; the returned arrays sum to 1 within each MoE layer.
    """
    model.reset_expert_counts()
    model.forward(np.asarray(tokens))
    counts = model.expert_activation_counts()
    model.reset_expert_counts()
    freqs: dict[int, np.ndarray] = {}
    for layer_idx, layer_counts in counts.items():
        total = layer_counts.sum()
        freqs[layer_idx] = (
            layer_counts / total if total > 0 else np.full_like(layer_counts, 1.0, dtype=float)
        )
    return freqs


def build_weight_entries(
    model: MoETransformer,
    expert_frequencies: dict[int, np.ndarray] | None = None,
) -> list[WeightEntry]:
    """Build the rank-policy weight inventory for every quantizable matrix."""
    entries: list[WeightEntry] = []
    for param_path, kind, linear in model.iter_quantizable():
        layer_match = _LAYER_RE.search(param_path)
        expert_match = _EXPERT_RE.search(param_path)
        layer_index = int(layer_match.group(1)) if layer_match else -1
        expert_index = int(expert_match.group(1)) if expert_match else -1
        frequency = 0.0
        if expert_index >= 0 and expert_frequencies and layer_index in expert_frequencies:
            layer_freqs = expert_frequencies[layer_index]
            if expert_index < len(layer_freqs):
                frequency = float(layer_freqs[expert_index])
        entries.append(
            WeightEntry(
                name=param_path,
                kind=kind,
                shape=linear.weight.shape,
                weight=linear.weight.data,
                layer_index=layer_index,
                expert_index=expert_index,
                expert_frequency=frequency,
            )
        )
    return entries


@dataclass
class CompressionReport:
    """Summary of one compression run."""

    method: str
    bits: int
    group_size: int
    model_name: str
    memory_bytes: float
    fp16_memory_bytes: float
    quant_time_s: float
    stage_times: dict[str, float] = field(default_factory=dict)
    ranks: dict[str, int] = field(default_factory=dict)
    layer_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    compensator_bytes: float = 0.0

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / (1024**3)

    @property
    def compression_ratio(self) -> float:
        """Compressed size as a fraction of the FP16 footprint."""
        return self.memory_bytes / self.fp16_memory_bytes if self.fp16_memory_bytes else 1.0

    @property
    def average_rank(self) -> float:
        return float(np.mean(list(self.ranks.values()))) if self.ranks else 0.0


#: Registered compression methods, in pipeline order.  The CLI's
#: ``--method`` choices derive from this tuple (REG001): adding a method
#: here is the single step that both enables it in :class:`ModelCompressor`
#: and surfaces it on the command line.
COMPRESSION_METHODS: tuple[str, ...] = ("rtn", "hqq", "gptq", "milo")


class ModelCompressor:
    """Quantize an MoE model end to end with a chosen method.

    Parameters
    ----------
    method:
        ``"rtn"``, ``"hqq"``, ``"gptq"``, or ``"milo"``.
    bits:
        Weight bit width (3 for the paper's main setting, 4 for the INT4
        comparisons).
    group_size:
        Quantization group size (64 everywhere in the paper).
    rank_policy:
        Rank policy for MiLo; ignored by the baselines.  Defaults to
        ``UniformRank(0)`` (i.e. plain iterative HQQ) if not given.
    milo_config:
        Full MiLo configuration; ``bits``/``group_size`` above take
        precedence over the ones inside.
    calibration_tokens / profiling_tokens:
        Token batches used for GPTQ calibration and expert-frequency
        profiling respectively.
    """

    def __init__(
        self,
        method: str = "milo",
        bits: int = 3,
        group_size: int = 64,
        rank_policy: RankPolicy | None = None,
        milo_config: MiLoConfig | None = None,
        calibration_tokens: np.ndarray | None = None,
        profiling_tokens: np.ndarray | None = None,
        compensator_bits: int | None = 3,
    ) -> None:
        method = method.lower()
        if method not in COMPRESSION_METHODS:
            raise ValueError(f"unknown compression method {method!r}")
        self.method = method
        self.bits = bits
        self.group_size = group_size
        self.rank_policy = rank_policy or UniformRank(0)
        self.calibration_tokens = calibration_tokens
        self.profiling_tokens = profiling_tokens
        self.compensator_bits = compensator_bits
        base = milo_config or MiLoConfig()
        self.milo_config = MiLoConfig(
            bits=bits,
            group_size=group_size,
            max_iterations=base.max_iterations,
            stop_tol=base.stop_tol,
            window=base.window,
            divergence_patience=base.divergence_patience,
            compensator_bits=compensator_bits,
            compensator_group_size=base.compensator_group_size,
            hqq=base.hqq,
        )

    # -- public API -------------------------------------------------------------
    def compress(self, model: MoETransformer) -> tuple[MoETransformer, CompressionReport]:
        """Quantize ``model`` in place and return it with a report."""
        timer = QuantTimer()
        fp16_bytes = model.memory_bytes()

        expert_frequencies: dict[int, np.ndarray] | None = None
        if self.method == "milo" and self._policy_needs_frequencies():
            with timer.stage("frequency-profiling"):
                tokens = self._default_tokens(model) if self.profiling_tokens is None else self.profiling_tokens
                expert_frequencies = profile_expert_frequencies(model, tokens)

        entries = build_weight_entries(model, expert_frequencies)
        ranks = {e.name: 0 for e in entries}
        if self.method == "milo":
            with timer.stage("rank-assignment"):
                ranks = self.rank_policy.assign(entries)

        calibration: dict[str, np.ndarray] = {}
        if self.method == "gptq":
            with timer.stage("calibration"):
                calibration = self._collect_calibration(model, entries)

        layer_stats: dict[str, dict[str, Any]] = {}
        compensator_bytes = 0.0
        with timer.stage("quantization"):
            for entry in entries:
                module_path = entry.name.rsplit(".weight", 1)[0]
                linear = model.get_submodule(module_path)
                if not isinstance(linear, Linear):
                    continue
                new_module, stats, comp_bytes = self._quantize_one(
                    entry, linear, ranks.get(entry.name, 0), calibration.get(module_path)
                )
                replace_linear(model, module_path, new_module)
                layer_stats[entry.name] = stats
                compensator_bytes += comp_bytes

        report = CompressionReport(
            method=self.method,
            bits=self.bits,
            group_size=self.group_size,
            model_name=model.config.name,
            memory_bytes=model.memory_bytes(),
            fp16_memory_bytes=fp16_bytes,
            quant_time_s=timer.total,
            stage_times=timer.as_dict(),
            ranks=ranks,
            layer_stats=layer_stats,
            compensator_bytes=compensator_bytes,
        )
        return model, report

    # -- internals --------------------------------------------------------------
    def _policy_needs_frequencies(self) -> bool:
        from .rank_policy import CompositeRankPolicy, FrequencyRank

        policy = self.rank_policy
        if isinstance(policy, FrequencyRank):
            return True
        if isinstance(policy, CompositeRankPolicy):
            return any(isinstance(p, FrequencyRank) for p in policy.policies)
        return False

    @staticmethod
    def _default_tokens(model: MoETransformer, batch: int = 4, seq: int = 32) -> np.ndarray:
        rng = np.random.default_rng(0)
        return rng.integers(0, model.config.vocab_size, size=(batch, seq))

    def _collect_calibration(
        self, model: MoETransformer, entries: list[WeightEntry]
    ) -> dict[str, np.ndarray]:
        tokens = (
            self._default_tokens(model, batch=8, seq=32)
            if self.calibration_tokens is None
            else self.calibration_tokens
        )
        module_paths = [e.name.rsplit(".weight", 1)[0] for e in entries]
        with capture_layer_inputs(model, module_paths) as catcher:
            model.forward(np.asarray(tokens))
        captured: dict[str, np.ndarray] = {}
        for path in module_paths:
            inputs = catcher.inputs_for(path)
            if inputs is not None:
                captured[path] = inputs
        return captured

    def _quantize_one(
        self,
        entry: WeightEntry,
        linear: Linear,
        rank: int,
        calibration_inputs: np.ndarray | None,
    ) -> tuple[Module, dict[str, Any], float]:
        weight = linear.weight.data
        bias = linear.bias_values
        out_features, in_features = weight.shape

        if self.method == "rtn":
            qm = RTNQuantizer(self.bits, self.group_size).quantize(weight)
            module = QuantizedLinear(
                in_features, out_features, qm.dequantize(),
                bits=self.bits, group_size=self.group_size, symmetric=False, bias=bias,
            )
            return module, dict(qm.stats), 0.0

        if self.method == "hqq":
            qm = HQQQuantizer(HQQConfig(bits=self.bits, group_size=self.group_size)).quantize(weight)
            module = QuantizedLinear(
                in_features, out_features, qm.dequantize(),
                bits=self.bits, group_size=self.group_size, symmetric=False, bias=bias,
            )
            return module, dict(qm.stats), 0.0

        if self.method == "gptq":
            qm = GPTQQuantizer(self.bits, self.group_size).quantize(
                weight, calibration_inputs=calibration_inputs
            )
            module = QuantizedLinear(
                in_features, out_features, qm.dequantize(),
                bits=self.bits, group_size=self.group_size, symmetric=False, bias=bias,
            )
            return module, dict(qm.stats), 0.0

        # MiLo
        optimizer = MiLoMatrixOptimizer(self.milo_config)
        result = optimizer.optimize(weight, rank)
        U_dep, V_dep = result.compensator.deployment_factors()
        comp_bits = self.compensator_bits if self.compensator_bits is not None else 16
        module = CompensatedLinear(
            in_features,
            out_features,
            result.dequantized_base(),
            U=U_dep,
            V=V_dep,
            bits=self.bits,
            group_size=self.group_size,
            compensator_bits=comp_bits,
            compensator_group_size=self.milo_config.compensator_group_size,
            symmetric=False,
            bias=bias,
        )
        stats = {
            "method": "milo",
            "rank": result.rank,
            "iterations": result.iterations,
            "stop_reason": result.stop_reason,
            "error_history": list(result.error_history),
            "final_error": result.final_error(),
        }
        return module, stats, result.compensator.memory_bytes()
