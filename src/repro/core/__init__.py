"""MiLo core: iterative quantization with a mixture of low-rank compensators.

Typical use::

    from repro.core import ModelCompressor, build_strategy
    from repro.models import build_model

    model = build_model("mixtral-mini")
    policy = build_strategy("mixtral-s1", model.config)
    compressor = ModelCompressor(method="milo", bits=3, rank_policy=policy)
    model, report = compressor.compress(model)
"""

from .compensator import LowRankCompensator, compensator_memory_bytes, truncated_svd_factors
from .milo import MiLoConfig, MiLoMatrixOptimizer, MiLoMatrixResult
from .pipeline import (
    COMPRESSION_METHODS,
    CompressionReport,
    ModelCompressor,
    build_weight_entries,
    profile_expert_frequencies,
    replace_linear,
)
from .pruning import ExpertPruningReport, prune_experts_by_frequency
from .rank_policy import (
    CompositeRankPolicy,
    DenseRank,
    FrequencyRank,
    KurtosisRank,
    RankPolicy,
    SparseRank,
    UniformRank,
    WeightEntry,
    total_compensator_memory,
    uniform_rank_for_budget,
)
from .strategies import (
    PAPER_STRATEGIES,
    StrategySpec,
    available_strategies,
    build_strategy,
    scale_rank,
)

__all__ = [
    "MiLoConfig",
    "MiLoMatrixOptimizer",
    "MiLoMatrixResult",
    "LowRankCompensator",
    "truncated_svd_factors",
    "compensator_memory_bytes",
    "ModelCompressor",
    "CompressionReport",
    "COMPRESSION_METHODS",
    "build_weight_entries",
    "profile_expert_frequencies",
    "replace_linear",
    "prune_experts_by_frequency",
    "ExpertPruningReport",
    "RankPolicy",
    "UniformRank",
    "DenseRank",
    "SparseRank",
    "KurtosisRank",
    "FrequencyRank",
    "CompositeRankPolicy",
    "WeightEntry",
    "total_compensator_memory",
    "uniform_rank_for_budget",
    "build_strategy",
    "scale_rank",
    "available_strategies",
    "PAPER_STRATEGIES",
    "StrategySpec",
]
