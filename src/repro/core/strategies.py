"""Named MiLo rank strategies (paper Table 5) and rank scaling for mini models.

The paper evaluates two composite strategies per model:

=============  =============================================
Model          Strategy
=============  =============================================
Mixtral-8x7B   MiLo-s1 = Dense-512  + Kurtosis-16
Mixtral-8x7B   MiLo-s2 = Dense-1024 + Kurtosis-32
DeepSeek-MoE   MiLo-s1 = Dense-800
DeepSeek-MoE   MiLo-s2 = Dense-1024 + Frequency-32
=============  =============================================

The rank numbers are calibrated to 4096-/2048-wide hidden dimensions.  The
mini reproductions have much smaller hidden sizes, so :func:`scale_rank`
converts a paper-scale rank to the equivalent *fraction of the hidden
dimension* (never below 1), keeping the relative memory overhead and the
dense-vs-sparse allocation the strategies encode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.config import MoEModelConfig
from .rank_policy import (
    CompositeRankPolicy,
    DenseRank,
    FrequencyRank,
    KurtosisRank,
    RankPolicy,
)

__all__ = ["StrategySpec", "PAPER_STRATEGIES", "scale_rank", "build_strategy", "available_strategies"]

#: Hidden sizes of the full models each mini config stands in for.
_REFERENCE_HIDDEN = {
    "mixtral": 4096,
    "deepseek": 2048,
}


@dataclass(frozen=True)
class StrategySpec:
    """Declarative description of a composite strategy at paper scale."""

    name: str
    model_family: str                    # "mixtral" or "deepseek"
    dense_rank: int = 0
    kurtosis_rank: int = 0
    frequency_rank: int = 0

    def describe(self) -> str:
        parts = []
        if self.dense_rank:
            parts.append(f"Dense-{self.dense_rank}")
        if self.kurtosis_rank:
            parts.append(f"Kurtosis-{self.kurtosis_rank}")
        if self.frequency_rank:
            parts.append(f"Frequency-{self.frequency_rank}")
        return " + ".join(parts) if parts else "no compensation"


PAPER_STRATEGIES: dict[str, StrategySpec] = {
    "mixtral-s1": StrategySpec("mixtral-s1", "mixtral", dense_rank=512, kurtosis_rank=16),
    "mixtral-s2": StrategySpec("mixtral-s2", "mixtral", dense_rank=1024, kurtosis_rank=32),
    "deepseek-s1": StrategySpec("deepseek-s1", "deepseek", dense_rank=800),
    "deepseek-s2": StrategySpec("deepseek-s2", "deepseek", dense_rank=1024, frequency_rank=32),
}


def available_strategies() -> list[str]:
    return sorted(PAPER_STRATEGIES)


def scale_rank(paper_rank: int, config: MoEModelConfig, family: str) -> int:
    """Convert a paper-scale rank into an equivalent rank for a mini model.

    The conversion preserves the *fraction of the hidden dimension* the rank
    represents (e.g. Dense-512 on a 4096-wide Mixtral is 1/8 of the hidden
    size, which maps to rank 8 on a 64-wide mini model) and never drops a
    non-zero paper rank below 1, so small sparse-layer ranks stay meaningful.
    """
    if paper_rank <= 0:
        return 0
    reference_hidden = _REFERENCE_HIDDEN.get(family, 4096)
    scaled = int(round(paper_rank * config.hidden_size / reference_hidden))
    return max(1, scaled)


def build_strategy(name: str, config: MoEModelConfig) -> RankPolicy:
    """Instantiate a named paper strategy scaled to a mini model config."""
    try:
        spec = PAPER_STRATEGIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        ) from exc
    policies: list[RankPolicy] = []
    if spec.dense_rank:
        policies.append(DenseRank(scale_rank(spec.dense_rank, config, spec.model_family)))
    if spec.kurtosis_rank:
        policies.append(
            KurtosisRank(scale_rank(spec.kurtosis_rank, config, spec.model_family), scope="sparse")
        )
    if spec.frequency_rank:
        policies.append(
            FrequencyRank(scale_rank(spec.frequency_rank, config, spec.model_family), scope="sparse")
        )
    if not policies:
        raise ValueError(f"strategy {name!r} assigns no ranks")
    return CompositeRankPolicy(policies)
