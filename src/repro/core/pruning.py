"""Expert pruning — the complementary MoE-compression direction the paper
leaves as future work ("combining MiLo with other MoE compression techniques,
such as pruning and distillation", §5).

The same router-frequency signal MiLo's Frequency-{r} policy consumes can be
used to *drop* the least-activated experts entirely: tokens that would have
been routed to a pruned expert are re-routed among the survivors.  This
module implements frequency-based expert pruning so it can be composed with
(before) MiLo quantization, plus the memory accounting needed to study the
pruning-vs-quantization trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.moe import MoEFeedForward
from ..models.transformer import MoETransformer
from .pipeline import profile_expert_frequencies

__all__ = ["ExpertPruningReport", "prune_experts_by_frequency"]


@dataclass
class ExpertPruningReport:
    """Summary of one expert-pruning pass."""

    keep_per_layer: dict[int, list[int]] = field(default_factory=dict)
    pruned_per_layer: dict[int, list[int]] = field(default_factory=dict)
    memory_before_bytes: float = 0.0
    memory_after_bytes: float = 0.0

    @property
    def num_pruned(self) -> int:
        return sum(len(v) for v in self.pruned_per_layer.values())

    @property
    def memory_reduction(self) -> float:
        """Fraction of the original footprint removed by pruning."""
        if self.memory_before_bytes == 0:
            return 0.0
        return 1.0 - self.memory_after_bytes / self.memory_before_bytes


def _prune_layer(ffn: MoEFeedForward, keep: list[int]) -> None:
    """Restrict one MoE layer to the experts in ``keep`` (indices re-mapped)."""
    keep = sorted(keep)
    index_map = {old: new for new, old in enumerate(keep)}

    # Rebuild the expert list and re-register the kept experts.
    kept_experts = [ffn.experts[i] for i in keep]
    for name in list(ffn._modules):
        if name.startswith("expert_") and not name.startswith("shared_expert_"):
            del ffn._modules[name]
    ffn.experts = kept_experts
    for new_idx, expert in enumerate(kept_experts):
        ffn.register_module(f"expert_{new_idx}", expert)

    # Shrink the router: keep only the surviving experts' gate rows and biases.
    router = ffn.router
    router.gate.weight.data = router.gate.weight.data[keep].copy()
    router.gate.out_features = len(keep)
    router.popularity_bias = router.popularity_bias[keep].copy()
    router.activation_counts = router.activation_counts[keep].copy()
    router.num_experts = len(keep)
    router.k = min(router.k, len(keep))
    ffn.config = ffn.config  # unchanged; layer-level num_experts now differs from config

    # Sanity: the remap covers every kept expert exactly once.
    assert len(index_map) == len(keep)


def prune_experts_by_frequency(
    model: MoETransformer,
    keep_ratio: float = 0.75,
    profiling_tokens: np.ndarray | None = None,
    min_keep: int | None = None,
) -> tuple[MoETransformer, ExpertPruningReport]:
    """Drop the least-activated experts of every MoE layer, in place.

    Parameters
    ----------
    model:
        The model to prune (modified in place and returned).
    keep_ratio:
        Fraction of experts to keep per layer (rounded up).
    profiling_tokens:
        Token batch used to measure activation frequencies; a synthetic batch
        is drawn if omitted.
    min_keep:
        Lower bound on the number of surviving experts per layer; defaults to
        the routing top-k so every token can still be served.
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must lie in (0, 1]")
    if profiling_tokens is None:
        rng = np.random.default_rng(0)
        profiling_tokens = rng.integers(0, model.config.vocab_size, size=(8, 32))

    report = ExpertPruningReport(memory_before_bytes=model.memory_bytes())
    frequencies = profile_expert_frequencies(model, profiling_tokens)
    floor = min_keep if min_keep is not None else model.config.experts_per_token

    for layer_idx, layer in enumerate(model.layers):
        ffn = layer.ffn
        if not isinstance(ffn, MoEFeedForward):
            continue
        freq = frequencies.get(layer_idx)
        if freq is None:
            continue
        num_experts = len(ffn.experts)
        num_keep = max(floor, int(np.ceil(keep_ratio * num_experts)))
        num_keep = min(num_keep, num_experts)
        keep = list(np.argsort(-freq)[:num_keep])
        pruned = sorted(set(range(num_experts)) - set(keep))
        if pruned:
            _prune_layer(ffn, keep)
        report.keep_per_layer[layer_idx] = sorted(keep)
        report.pruned_per_layer[layer_idx] = pruned

    report.memory_after_bytes = model.memory_bytes()
    return model, report
