"""Functional packed-GEMM implementations (the kernel's *numerics*).

These routines compute exactly what the CUDA kernels compute — a W3A16 /
W4A16 mixed-precision GEMM ``y[m, n] = x[m, k] @ W_dq[k, n]`` where the
weight is stored packed and de-quantized group-wise on the fly — so the
Appendix D correctness suite (functional, error-handling, and boundary tests)
can be reproduced bit-for-bit against an FP reference.  Performance is
modeled separately in :mod:`repro.kernels.simulators`.

Weights here follow the *kernel* convention ``W[k, n]`` (reduction dimension
first), matching the GEMM shape tables in the paper's Appendix C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dequant import dequantize_int3_codes
from .packing import (
    PackedInt3Matrix,
    pack_int3_matrix,
    pack_int4_matrix,
    unpack_int4_matrix,
)
from .tiles import TileShape, choose_tile_shape, validate_kernel_config

__all__ = [
    "QuantizedGemmWeight",
    "quantize_for_kernel",
    "packed_gemm_w3a16",
    "packed_gemm_w4a16",
    "reference_gemm",
]


@dataclass
class QuantizedGemmWeight:
    """A kernel-ready quantized weight: packed codes + group metadata.

    ``scales`` / ``zeros`` have shape ``(n, k / group_size)`` — one entry per
    output column per reduction group, the layout the fused kernel streams
    alongside the packed weights.
    """

    packed: PackedInt3Matrix | np.ndarray
    scales: np.ndarray
    zeros: np.ndarray | None
    bits: int
    group_size: int
    symmetric: bool
    shape: tuple[int, int]  # (k, n)

    @property
    def k(self) -> int:
        return self.shape[0]

    @property
    def n(self) -> int:
        return self.shape[1]


def quantize_for_kernel(
    weight_kn: np.ndarray,
    bits: int = 3,
    group_size: int = 64,
    symmetric: bool = True,
) -> QuantizedGemmWeight:
    """Quantize a ``(k, n)`` weight into the kernel's packed storage format."""
    weight_kn = np.asarray(weight_kn, dtype=np.float64)
    if weight_kn.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got {weight_kn.shape}")
    k, n = weight_kn.shape
    if k % group_size != 0:
        raise ValueError(f"reduction dim ({k}) must be a multiple of group_size ({group_size})")
    if bits not in (3, 4):
        raise ValueError("kernel packing supports 3- or 4-bit weights")

    qmax = 2**bits - 1
    # Group along the reduction dimension: view as (n, k/g, g) with the
    # weight transposed to (n, k) so each output column owns its groups.
    w_nk = weight_kn.T.reshape(n, k // group_size, group_size)
    if symmetric:
        absmax = np.max(np.abs(w_nk), axis=2, keepdims=True)
        scales = 2.0 * absmax / qmax
        scales = np.where(scales > 0, scales, 1.0)
        mid = (qmax + 1) / 2.0
        codes = np.clip(np.round(w_nk / scales + mid), 0, qmax)
        zeros = None
    else:
        gmin = w_nk.min(axis=2, keepdims=True)
        gmax = w_nk.max(axis=2, keepdims=True)
        scales = (gmax - gmin) / qmax
        scales = np.where(scales > 0, scales, 1.0)
        zeros = -gmin / scales
        codes = np.clip(np.round(w_nk / scales + zeros), 0, qmax)

    codes_2d = codes.reshape(n, k).astype(np.int64)
    if bits == 3:
        packed: PackedInt3Matrix | np.ndarray = pack_int3_matrix(codes_2d)
    else:
        packed = pack_int4_matrix(codes_2d)
    return QuantizedGemmWeight(
        packed=packed,
        scales=scales.reshape(n, k // group_size),
        zeros=None if zeros is None else zeros.reshape(n, k // group_size),
        bits=bits,
        group_size=group_size,
        symmetric=symmetric,
        shape=(k, n),
    )


def _dequantize_kernel_weight(qw: QuantizedGemmWeight) -> np.ndarray:
    """Reconstruct the dense ``(k, n)`` weight from a kernel-format weight."""
    if qw.bits == 3:
        assert isinstance(qw.packed, PackedInt3Matrix)
        codes_nk = _unpack3(qw)
        dq_nk = dequantize_int3_codes(
            codes_nk, qw.scales, qw.zeros, qw.group_size, symmetric=qw.symmetric
        )
    else:
        codes = unpack_int4_matrix(np.asarray(qw.packed), qw.k)
        values = codes.astype(np.float64).reshape(qw.n, qw.k // qw.group_size, qw.group_size)
        scales = qw.scales.reshape(qw.n, -1, 1)
        if qw.symmetric:
            dq = (values - (2**qw.bits) / 2.0) * scales
        else:
            zeros = qw.zeros.reshape(qw.n, -1, 1)
            dq = (values - zeros) * scales
        dq_nk = dq.reshape(qw.n, qw.k)
    return dq_nk.T


def _unpack3(qw: QuantizedGemmWeight) -> np.ndarray:
    from .packing import unpack_int3_matrix

    assert isinstance(qw.packed, PackedInt3Matrix)
    return unpack_int3_matrix(qw.packed)


def reference_gemm(x: np.ndarray, weight_kn: np.ndarray) -> np.ndarray:
    """Full-precision reference ``x[m, k] @ W[k, n]``."""
    return np.asarray(x, dtype=np.float64) @ np.asarray(weight_kn, dtype=np.float64)


def packed_gemm_w3a16(
    x: np.ndarray,
    qw: QuantizedGemmWeight,
    tile_shape: TileShape | tuple[int, int] | None = None,
    validate: bool = True,
) -> np.ndarray:
    """W3A16 GEMM: FP16 activations times a packed INT3 weight.

    The computation is organized in ``(tile_k, tile_n)`` thread-block tiles
    with per-tile partial sums, mirroring the CUDA kernel's structure
    (including the batch-padding to multiples of 16 required by the tensor
    cores), then the partials are reduced — which is the global-reduction
    step whose cost the tile tuner minimizes.
    """
    if qw.bits != 3:
        raise ValueError("packed_gemm_w3a16 requires a 3-bit weight")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != qw.k:
        raise ValueError(f"activation shape {x.shape} incompatible with weight k={qw.k}")
    if tile_shape is None:
        tile_shape = choose_tile_shape(qw.k, qw.n)
    if validate:
        tile_shape = validate_kernel_config(qw.k, qw.n, qw.group_size, tile_shape)
    elif isinstance(tile_shape, tuple):
        tile_shape = TileShape(*tile_shape)

    m = x.shape[0]
    # Tensor cores operate on 16x8x16 fragments: pad the batch to 16.
    padded_m = -(-m // 16) * 16
    if padded_m != m:
        x = np.concatenate([x, np.zeros((padded_m - m, qw.k))], axis=0)

    w_dense = _dequantize_kernel_weight(qw)  # (k, n)
    out = np.zeros((padded_m, qw.n))
    for k0 in range(0, qw.k, tile_shape.tile_k):
        k1 = min(k0 + tile_shape.tile_k, qw.k)
        for n0 in range(0, qw.n, tile_shape.tile_n):
            n1 = min(n0 + tile_shape.tile_n, qw.n)
            out[:, n0:n1] += x[:, k0:k1] @ w_dense[k0:k1, n0:n1]
    return out[:m]


def packed_gemm_w4a16(x: np.ndarray, qw: QuantizedGemmWeight) -> np.ndarray:
    """W4A16 GEMM (MARLIN-style storage) for the baseline comparisons."""
    if qw.bits != 4:
        raise ValueError("packed_gemm_w4a16 requires a 4-bit weight")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != qw.k:
        raise ValueError(f"activation shape {x.shape} incompatible with weight k={qw.k}")
    return x @ _dequantize_kernel_weight(qw)
