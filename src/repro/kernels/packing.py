"""Zero-bit-waste INT3 weight packing (paper §3.3, Fig. 6a).

INT3 is awkward for hardware because 3 does not divide 32.  Packing ten 3-bit
values per INT32 wastes 2 bits; MiLo instead packs **32 weights into exactly
three INT32 words** (96 bits), wasting nothing:

* word ``w`` (w = 0, 1, 2) stores weights ``e[8w] .. e[8w+7]`` in its low
  24 bits (weight ``j`` of the word occupies bits ``[3j, 3j+3)``);
* the top 8 bits of word ``w`` store bit ``w`` of the *last* eight weights
  ``e[24] .. e[31]`` (one bit per weight), so the three words' spare bytes
  together reconstruct them.

This is the same zero-waste budget and "remainder bits recombined across
words" idea as the paper's Fig. 6(a); the exact bit interleaving differs (the
CUDA kernel interleaves for register-level pair extraction, which has no
analogue in numpy) but the storage size, group structure and round-trip
semantics are identical.

The packed matrix is additionally split into a *main* array holding the first
two words of every group and a *rest* array holding the third word,
reproducing the paper's alignment-driven two-matrix layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WEIGHTS_PER_GROUP",
    "WORDS_PER_GROUP",
    "pack_int3_groups",
    "unpack_int3_groups",
    "PackedInt3Matrix",
    "pack_int3_matrix",
    "unpack_int3_matrix",
    "pack_int4_matrix",
    "unpack_int4_matrix",
]

#: Number of 3-bit weights packed together (32 weights -> 3 x INT32).
WEIGHTS_PER_GROUP = 32
#: Number of INT32 words per packing group.
WORDS_PER_GROUP = 3


def pack_int3_groups(codes: np.ndarray) -> np.ndarray:
    """Pack INT3 codes into uint32 words, 32 codes per 3 words.

    Parameters
    ----------
    codes:
        Integer array with values in ``[0, 7]`` whose last dimension is a
        multiple of 32.

    Returns
    -------
    ``uint32`` array with the last dimension shrunk by a factor of 32/3.
    """
    codes = np.asarray(codes)
    if codes.size == 0:
        raise ValueError("cannot pack an empty code array")
    if codes.min() < 0 or codes.max() > 7:
        raise ValueError("INT3 codes must lie in [0, 7]")
    if codes.shape[-1] % WEIGHTS_PER_GROUP != 0:
        raise ValueError(
            f"last dimension ({codes.shape[-1]}) must be a multiple of {WEIGHTS_PER_GROUP}"
        )
    c = codes.astype(np.uint32).reshape(*codes.shape[:-1], -1, WEIGHTS_PER_GROUP)
    words = np.zeros(c.shape[:-1] + (WORDS_PER_GROUP,), dtype=np.uint32)
    # Low 24 bits of word w: weights e[8w + j], j in 0..7.
    for w in range(WORDS_PER_GROUP):
        for j in range(8):
            words[..., w] |= c[..., 8 * w + j] << np.uint32(3 * j)
    # Top 8 bits of word w: bit w of weights e[24 + k], k in 0..7.
    for w in range(WORDS_PER_GROUP):
        for k in range(8):
            bit = (c[..., 24 + k] >> np.uint32(w)) & np.uint32(1)
            words[..., w] |= bit << np.uint32(24 + k)
    return words.reshape(*codes.shape[:-1], -1)


def unpack_int3_groups(words: np.ndarray, num_codes: int | None = None) -> np.ndarray:
    """Inverse of :func:`pack_int3_groups`."""
    words = np.asarray(words, dtype=np.uint32)
    if words.shape[-1] % WORDS_PER_GROUP != 0:
        raise ValueError(
            f"last dimension ({words.shape[-1]}) must be a multiple of {WORDS_PER_GROUP}"
        )
    w = words.reshape(*words.shape[:-1], -1, WORDS_PER_GROUP)
    codes = np.zeros(w.shape[:-1] + (WEIGHTS_PER_GROUP,), dtype=np.uint32)
    for word_idx in range(WORDS_PER_GROUP):
        for j in range(8):
            codes[..., 8 * word_idx + j] = (w[..., word_idx] >> np.uint32(3 * j)) & np.uint32(0x7)
    for k in range(8):
        value = np.zeros(w.shape[:-1], dtype=np.uint32)
        for word_idx in range(WORDS_PER_GROUP):
            bit = (w[..., word_idx] >> np.uint32(24 + k)) & np.uint32(1)
            value |= bit << np.uint32(word_idx)
        codes[..., 24 + k] = value
    out = codes.reshape(*words.shape[:-1], -1).astype(np.int64)
    if num_codes is not None:
        out = out[..., :num_codes]
    return out


@dataclass
class PackedInt3Matrix:
    """A 2-D INT3 code matrix in the MiLo packed storage layout.

    Attributes
    ----------
    main:
        The first two INT32 words of every 32-weight packing group,
        shape ``(rows, 2 * groups_per_row)``.
    rest:
        The third INT32 word of every group, shape ``(rows, groups_per_row)``.
    shape:
        Original ``(rows, cols)`` of the unpacked code matrix.
    """

    main: np.ndarray
    rest: np.ndarray
    shape: tuple[int, int]

    @property
    def packed_bytes(self) -> int:
        return int(self.main.nbytes + self.rest.nbytes)

    @property
    def ideal_bytes(self) -> float:
        """3 bits per weight with zero waste (excluding row padding)."""
        return self.shape[0] * self.shape[1] * 3 / 8


def pack_int3_matrix(codes: np.ndarray) -> PackedInt3Matrix:
    """Pack a ``(rows, cols)`` INT3 code matrix into the split main/rest layout."""
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ValueError(f"expected a 2-D code matrix, got shape {codes.shape}")
    rows, cols = codes.shape
    pad = (-cols) % WEIGHTS_PER_GROUP
    if pad:
        codes = np.concatenate([codes, np.zeros((rows, pad), dtype=codes.dtype)], axis=1)
    words = pack_int3_groups(codes)  # (rows, 3 * groups)
    words = words.reshape(rows, -1, WORDS_PER_GROUP)
    main = words[:, :, :2].reshape(rows, -1).copy()
    rest = words[:, :, 2].copy()
    return PackedInt3Matrix(main=main, rest=rest, shape=(rows, cols))


def unpack_int3_matrix(packed: PackedInt3Matrix) -> np.ndarray:
    """Inverse of :func:`pack_int3_matrix`."""
    rows, cols = packed.shape
    groups = packed.rest.shape[1]
    words = np.zeros((rows, groups, WORDS_PER_GROUP), dtype=np.uint32)
    words[:, :, :2] = packed.main.reshape(rows, groups, 2)
    words[:, :, 2] = packed.rest
    codes = unpack_int3_groups(words.reshape(rows, -1))
    return codes[:, :cols]


# ---------------------------------------------------------------------------
# INT4 packing (MARLIN-style baseline): 8 codes per INT32, no remainder bits.
# ---------------------------------------------------------------------------
def pack_int4_matrix(codes: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, cols)`` INT4 code matrix, 8 codes per uint32."""
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ValueError(f"expected a 2-D code matrix, got shape {codes.shape}")
    if codes.size and (codes.min() < 0 or codes.max() > 15):
        raise ValueError("INT4 codes must lie in [0, 15]")
    rows, cols = codes.shape
    pad = (-cols) % 8
    if pad:
        codes = np.concatenate([codes, np.zeros((rows, pad), dtype=codes.dtype)], axis=1)
    c = codes.astype(np.uint32).reshape(rows, -1, 8)
    words = np.zeros((rows, c.shape[1]), dtype=np.uint32)
    for j in range(8):
        words |= c[:, :, j] << np.uint32(4 * j)
    return words


def unpack_int4_matrix(words: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_int4_matrix` for the original column count."""
    words = np.asarray(words, dtype=np.uint32)
    rows = words.shape[0]
    codes = np.zeros((rows, words.shape[1], 8), dtype=np.uint32)
    for j in range(8):
        codes[:, :, j] = (words >> np.uint32(4 * j)) & np.uint32(0xF)
    return codes.reshape(rows, -1)[:, :cols].astype(np.int64)
