"""I2F (INT3 -> FP16) de-quantization via binary manipulation (paper §3.3, Fig. 6b).

A naive per-element integer-to-float cast is slow on GPUs.  The MiLo kernel
instead exploits the FP16 bit layout: for a small non-negative integer
``e < 1024``, the half-precision number ``1024 + e`` has the fixed exponent
pattern ``0x6400`` and its low mantissa bits are exactly ``e``.  So

    OR the 3-bit code into an FP16 register pre-loaded with 0x6400
    ==> the register now *is* the float ``1024 + e``
    subtract 1024 (``__hsub2``)          -> asymmetric path gets ``e``
    or fused-multiply-add (``__hfma2``)  -> symmetric path gets ``e - 4`` scaled

two codes at a time per 32-bit register.  This module emulates the exact bit
manipulation with numpy ``float16`` views, both to document the trick and so
unit tests can verify it is numerically identical to a plain cast, and
provides the full grouped de-quantization used by the functional packed GEMM.
"""

from __future__ import annotations

import numpy as np

from .packing import PackedInt3Matrix, unpack_int3_matrix

__all__ = [
    "MAGIC_FP16_BIAS",
    "i2f_binary_manipulation",
    "dequantize_int3_codes",
    "dequantize_packed_matrix",
]

#: FP16 bit pattern of 1024.0 — the exponent "magic" the codes are OR-ed into.
MAGIC_FP16_BIAS = 0x6400


def i2f_binary_manipulation(codes: np.ndarray) -> np.ndarray:
    """Convert small integer codes to FP16 via the 1024-bias bit trick.

    Exactly reproduces steps 1–3 of the paper's Fig. 6(b): OR each code into
    the ``0x6400`` pattern, reinterpret as FP16 (giving ``1024 + e``), and
    subtract 1024.  Works for any codes in ``[0, 1023]``; MiLo uses it for
    3-bit codes.
    """
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() > 1023):
        raise ValueError("codes must lie in [0, 1023] for the FP16 mantissa trick")
    bits = (codes.astype(np.uint16) | np.uint16(MAGIC_FP16_BIAS))
    as_fp16 = bits.view(np.float16)  # equals 1024 + code exactly
    return (as_fp16 - np.float16(1024.0)).astype(np.float64)


def dequantize_int3_codes(
    codes: np.ndarray,
    scales: np.ndarray,
    zeros: np.ndarray | None,
    group_size: int,
    symmetric: bool = False,
) -> np.ndarray:
    """De-quantize a ``(rows, cols)`` INT3 code matrix with per-group metadata.

    Parameters
    ----------
    codes:
        Integer codes in ``[0, 7]``.
    scales / zeros:
        Per-group parameters of shape ``(rows, cols / group_size)``.  For the
        symmetric scheme ``zeros`` is ignored (the mid-code 4 is subtracted,
        matching the kernel's ``__hsub2``/``__hfma2`` path).
    """
    codes = np.asarray(codes)
    rows, cols = codes.shape
    if cols % group_size != 0:
        raise ValueError(f"columns ({cols}) must be a multiple of group_size ({group_size})")
    values = i2f_binary_manipulation(codes).reshape(rows, cols // group_size, group_size)
    scales = np.asarray(scales, dtype=np.float64).reshape(rows, cols // group_size, 1)
    if symmetric:
        dq = (values - 4.0) * scales
    else:
        if zeros is None:
            raise ValueError("asymmetric de-quantization requires zero points")
        zeros = np.asarray(zeros, dtype=np.float64).reshape(rows, cols // group_size, 1)
        dq = (values - zeros) * scales
    return dq.reshape(rows, cols)


def dequantize_packed_matrix(
    packed: PackedInt3Matrix,
    scales: np.ndarray,
    zeros: np.ndarray | None,
    group_size: int,
    symmetric: bool = False,
) -> np.ndarray:
    """Unpack a :class:`PackedInt3Matrix` and de-quantize it in one step."""
    codes = unpack_int3_matrix(packed)
    return dequantize_int3_codes(codes, scales, zeros, group_size, symmetric=symmetric)
