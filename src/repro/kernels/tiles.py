"""Thread-block tile shapes and the MoE-specific tile tuner (paper §3.3).

MiLo's kernel processes the weight matrix in thread-block tiles of shape
``(tile_k, tile_n)`` over the reduction dimension ``k`` and the output
dimension ``n``.  Large MoE layers such as Mixtral's 4096x14336 experts
suffer from global-reduction synchronization between thread blocks along the
``k`` dimension; choosing a taller/wider tile trades that synchronization
against occupancy.  The paper restricts the tile menu to (256, 64),
(128, 128) and (64, 256) and picks per GEMM shape.

The same validity rules the CUDA kernel enforces (Appendix D "Error Handling
Tests") are enforced here:

* the quantization group size must be 64;
* the weight shape ``(k, n)`` must be a multiple of the tile shape;
* the tile shape must be one of the three supported configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TileShape", "SUPPORTED_TILE_SHAPES", "validate_kernel_config", "choose_tile_shape", "KernelConfigError"]


class KernelConfigError(ValueError):
    """Raised for kernel configurations the CUDA implementation would reject."""


@dataclass(frozen=True)
class TileShape:
    """A thread-block tile: ``k`` is the reduction dim, ``n`` the output dim."""

    tile_k: int
    tile_n: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.tile_k, self.tile_n)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.tile_k}, {self.tile_n})"


SUPPORTED_TILE_SHAPES: tuple[TileShape, ...] = (
    TileShape(256, 64),
    TileShape(128, 128),
    TileShape(64, 256),
)

#: The only group size the MiLo kernel supports (Appendix D).
REQUIRED_GROUP_SIZE = 64

#: Tiles are grouped 4 per pipeline stage along the reduction dimension.
PIPELINE_TILES_PER_STAGE = 4


def validate_kernel_config(
    k: int, n: int, group_size: int, tile_shape: TileShape | tuple[int, int]
) -> TileShape:
    """Validate a (k, n, group size, tile shape) kernel configuration.

    Raises :class:`KernelConfigError` for any configuration the real kernel
    rejects, mirroring the artifact's error-handling tests.
    """
    if isinstance(tile_shape, tuple):
        tile_shape = TileShape(*tile_shape)
    if group_size != REQUIRED_GROUP_SIZE:
        raise KernelConfigError(
            f"the MiLo kernel requires group_size={REQUIRED_GROUP_SIZE}, got {group_size}"
        )
    if tile_shape not in SUPPORTED_TILE_SHAPES:
        raise KernelConfigError(
            f"tile shape {tile_shape} unsupported; choose one of "
            f"{[t.as_tuple() for t in SUPPORTED_TILE_SHAPES]}"
        )
    if k <= 0 or n <= 0:
        raise KernelConfigError(f"invalid GEMM shape k={k}, n={n}")
    if k % tile_shape.tile_k != 0 or n % tile_shape.tile_n != 0:
        raise KernelConfigError(
            f"weight shape ({k}, {n}) must be a multiple of tile shape {tile_shape}"
        )
    return tile_shape


def global_reduction_splits(k: int, n: int, tile_shape: TileShape, num_sms: int = 108) -> int:
    """Number of thread-block partitions along the reduction dimension (split-K).

    A GEMM with many output-column tiles (large ``n``) fills every SM without
    splitting the reduction; a GEMM with few column tiles (small ``n``, e.g.
    DeepSeek-MoE's 2048-wide down projection) must split ``k`` across thread
    blocks to stay occupied, and every extra split costs a global reduction.
    Splits are bounded by the number of 4-tile pipeline stages available along
    ``k`` (:data:`PIPELINE_TILES_PER_STAGE`).
    """
    col_tiles = max(1, -(-n // tile_shape.tile_n))
    k_tiles = max(1, -(-k // tile_shape.tile_k))
    max_splits = max(1, -(-k_tiles // PIPELINE_TILES_PER_STAGE))
    needed = max(1, -(-num_sms // col_tiles))
    return min(needed, max_splits)


def choose_tile_shape(k: int, n: int, allow_padding: bool = True, num_sms: int = 108) -> TileShape:
    """Pick the supported tile shape minimizing global-reduction synchronization.

    Among tiles that evenly divide ``(k, n)`` (or all tiles, when
    ``allow_padding``), prefer the one with the fewest reduction splits,
    breaking ties toward less output padding and then toward the squarer
    (128, 128) tile which has the best occupancy on mid-sized matrices.
    """
    candidates = [
        t for t in SUPPORTED_TILE_SHAPES if k % t.tile_k == 0 and n % t.tile_n == 0
    ]
    if not candidates:
        if not allow_padding:
            raise KernelConfigError(f"no supported tile shape divides ({k}, {n})")
        candidates = list(SUPPORTED_TILE_SHAPES)

    def sort_key(t: TileShape) -> tuple:
        splits = global_reduction_splits(k, n, t, num_sms=num_sms)
        # Wasted work from padding n up to a tile multiple.
        padded_n = -(-n // t.tile_n) * t.tile_n
        waste = padded_n - n
        squareness = abs(t.tile_k - t.tile_n)
        return (splits, waste, squareness)

    return min(candidates, key=sort_key)
