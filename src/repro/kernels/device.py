"""Analytical device model of the NVIDIA A100 used by the kernel simulators.

The paper measures kernel latency / TFLOPS on a physical A100-40GB.  Without
a GPU, this reproduction predicts those quantities from a first-principles
performance model: a roofline over HBM bandwidth and Tensor-Core throughput,
plus explicit terms for de-quantization instruction overhead, global-reduction
synchronization between thread blocks, kernel-launch latency, and wave
quantization over the SMs.  The constants below are the A100's public
specifications together with a small number of efficiency factors; the
per-kernel behaviours (what is fused, what overlaps, which bit width is
streamed) live in :mod:`repro.kernels.simulators`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100_40GB", "A100_80GB"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware characteristics of the simulated accelerator."""

    name: str
    memory_gb: float
    #: Peak HBM bandwidth in bytes/s.
    hbm_bandwidth: float
    #: Achievable fraction of peak bandwidth for streaming kernels.
    bandwidth_efficiency: float
    #: Peak FP16 Tensor-Core throughput in FLOP/s.
    tensor_core_flops: float
    #: Peak FP16 CUDA-core (non-tensor) throughput in FLOP/s, used for
    #: de-quantization arithmetic and GeMV kernels.
    cuda_core_flops: float
    #: Number of streaming multiprocessors (wave quantization granularity).
    num_sms: int
    #: Fixed kernel launch overhead in seconds.
    kernel_launch_overhead: float
    #: Latency of one inter-thread-block global synchronization in seconds.
    global_sync_latency: float
    #: Achievable per-direction device-to-device interconnect bandwidth in
    #: bytes/s (NVLink 3.0 on the A100: 300 GB/s nominal, ~80% achievable).
    #: Used by the multi-GPU serving engine to price expert-parallel
    #: all-to-all token dispatch; irrelevant on a single device.
    interconnect_bandwidth: float = 240e9
    #: Fraction of all-to-all communication that can be hidden under the next
    #: layer's compute when the serving engine runs its overlap-aware layered
    #: cost model (``--overlap``): 1.0 is perfect dispatch/combine pipelining,
    #: 0.0 degenerates to the strictly serial per-layer cost.  NVLink copies
    #: run on dedicated copy engines, but kernel-launch gaps, chunk-boundary
    #: synchronization and SM contention of the combine kernels keep a slice
    #: of every transfer on the critical path — 0.9 models a well-tuned
    #: double-buffered dispatch pipeline.  Irrelevant on a single device and
    #: outside overlap mode.
    overlap_efficiency: float = 0.9
    #: Achievable device-to-host bandwidth in bytes/s (PCIe 4.0 x16 on the
    #: A100: 32 GB/s nominal, ~80% achievable after protocol overhead).  Used
    #: by the serving engine's swap-to-host preemption mode to price KV-cache
    #: swap-in on resume; irrelevant outside ``--preempt-mode swap``.
    host_bandwidth: float = 25e9

    @property
    def effective_bandwidth(self) -> float:
        return self.hbm_bandwidth * self.bandwidth_efficiency

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1024**3

    def tensor_core_efficiency(self, batch: int) -> float:
        """Fraction of Tensor-Core peak achievable for a GEMM with ``batch`` rows.

        Tensor cores consume 16-row fragments; small batches leave most of
        each fragment idle and skinny GEMMs cannot hide operand latency, so
        the achievable fraction ramps up with the batch size and saturates at
        a level typical of well-tuned mixed-precision kernels.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        fragment_fill = min(1.0, batch / 16.0)
        pipeline_fill = min(1.0, 0.35 + batch / 96.0)
        return max(0.05, 0.75 * fragment_fill * pipeline_fill)


A100_40GB = DeviceSpec(
    name="A100-40GB",
    memory_gb=40.0,
    hbm_bandwidth=1.555e12,
    bandwidth_efficiency=0.82,
    tensor_core_flops=312e12,
    cuda_core_flops=78e12,
    num_sms=108,
    kernel_launch_overhead=4e-6,
    global_sync_latency=1.0e-6,
)

A100_80GB = DeviceSpec(
    name="A100-80GB",
    memory_gb=80.0,
    hbm_bandwidth=2.039e12,
    bandwidth_efficiency=0.82,
    tensor_core_flops=312e12,
    cuda_core_flops=78e12,
    num_sms=108,
    kernel_launch_overhead=4e-6,
    global_sync_latency=1.0e-6,
)
