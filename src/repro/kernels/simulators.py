"""Kernel performance simulators for the paper's backend comparison.

Each simulator predicts the latency of one mixed-precision GEMM
``y[m, n] = x[m, k] @ W_dq[k, n]`` on the modeled A100, decomposed into

* **memory time** — streaming the packed weight, the group metadata, the
  activations and the output over HBM;
* **compute time** — the Tensor-Core (or CUDA-core) MAC work;
* **dequant time** — the INT-to-FP16 conversion arithmetic, whose cost per
  element depends on whether the kernel uses MiLo's binary-manipulation path
  or a naive type cast;
* **sync time** — global-reduction synchronization between thread blocks
  along the reduction dimension (a function of the tile shape), plus extra
  passes for backends that cannot fuse asymmetric zero-point handling;
* **launch overhead** and wave-quantization effects.

Backends modeled (paper §4.3):

=========================  =====================================================
Simulator                  Corresponds to
=========================  =====================================================
:class:`MiLoKernelSim`     MiLo W3A16 fused kernel (symmetric or asymmetric),
                           with ablation switches for async load, MiLo Dequant
                           and MoE tile tuning (Fig. 10).
:class:`MarlinKernelSim`   MARLIN W4A16 symmetric kernel (group size 128).
:class:`GPTQ3bitKernelSim` GPTQ's W3A16 GeMV kernel (batch size 1 only).
:class:`DequantCutlassSim` Unfused MiLo Dequant followed by a CUTLASS FP16 GEMM.
:class:`FP16KernelSim`     Plain FP16 (PyTorch / cuBLAS) GEMM.
=========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import A100_40GB, DeviceSpec
from .tiles import TileShape, choose_tile_shape, global_reduction_splits

__all__ = [
    "GemmShape",
    "GemmCost",
    "KernelSimulator",
    "MiLoKernelSim",
    "MarlinKernelSim",
    "GPTQ3bitKernelSim",
    "DequantCutlassSim",
    "FP16KernelSim",
    "UnsupportedBatchError",
    "default_backends",
]

#: FP16 element size in bytes.
_FP16 = 2


class UnsupportedBatchError(RuntimeError):
    """Raised when a kernel does not support the requested batch size."""


@dataclass(frozen=True)
class GemmShape:
    """Problem size of a weight-only-quantized GEMM."""

    m: int  # batch (rows of the activation)
    k: int  # reduction dimension (weight input features)
    n: int  # output dimension (weight output features)

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"invalid GEMM shape {self}")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n


@dataclass
class GemmCost:
    """Latency breakdown (seconds) of one GEMM on the modeled device."""

    shape: GemmShape
    memory_time: float
    compute_time: float
    dequant_time: float
    sync_time: float
    overhead_time: float
    overlapped: bool
    weight_bytes: float
    total_bytes: float

    @property
    def total(self) -> float:
        if self.overlapped:
            # Asynchronous copies overlap weight streaming with compute +
            # dequant; the longer of the two pipelines dominates.
            core = max(self.memory_time, self.compute_time + self.dequant_time)
        else:
            core = self.memory_time + self.compute_time + self.dequant_time
        return core + self.sync_time + self.overhead_time

    @property
    def tflops(self) -> float:
        return self.shape.flops / self.total / 1e12

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.total_bytes / self.total / 1e9


@dataclass
class KernelSimulator:
    """Base class with the shared roofline machinery."""

    name: str = "base"
    bits: float = 16
    group_size: int = 64
    symmetric: bool = True
    asymmetric_metadata: bool = False
    fused: bool = True
    async_load: bool = True
    dequant_ops_per_element: float = 0.0
    uses_tensor_cores: bool = True
    tile_tuning: bool = False
    fixed_tile: TileShape = field(default_factory=lambda: TileShape(128, 128))
    max_batch: int | None = None
    #: Fraction of the device's achievable bandwidth this kernel's memory
    #: pipeline reaches (well-tuned kernels like MARLIN sit near 1.0).
    bandwidth_factor: float = 1.0
    device: DeviceSpec = A100_40GB
    #: Memoized :meth:`gemm_cost` results keyed by GEMM shape.  The serving
    #: engine re-evaluates the same shapes with a batch dimension that varies
    #: iteration to iteration, so costs for each distinct batch size are
    #: computed once per kernel instance.  Safe because simulator parameters
    #: are fixed after construction.
    _cost_cache: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    # -- pieces ----------------------------------------------------------------
    def supports_batch(self, m: int) -> bool:
        return self.max_batch is None or m <= self.max_batch

    def weight_bytes(self, shape: GemmShape) -> float:
        codes = shape.k * shape.n * self.bits / 8.0
        if self.bits >= 16:
            return codes
        groups = shape.n * (shape.k / self.group_size)
        entries = 2 if self.asymmetric_metadata else 1
        return codes + groups * entries * _FP16

    def io_bytes(self, shape: GemmShape) -> float:
        activations = shape.m * shape.k * _FP16
        output = shape.m * shape.n * _FP16
        return self.weight_bytes(shape) + activations + output

    def tile_for(self, shape: GemmShape) -> TileShape:
        if self.tile_tuning:
            return choose_tile_shape(shape.k, shape.n, num_sms=self.device.num_sms)
        return self.fixed_tile

    @property
    def _bandwidth(self) -> float:
        return self.device.effective_bandwidth * self.bandwidth_factor

    def _memory_time(self, total_bytes: float) -> float:
        return total_bytes / self._bandwidth

    def _compute_time(self, shape: GemmShape) -> float:
        if self.uses_tensor_cores:
            rate = self.device.tensor_core_flops * self.device.tensor_core_efficiency(shape.m)
        else:
            rate = self.device.cuda_core_flops * 0.5
        base = shape.flops / rate
        return base * self._wave_quantization_penalty(shape)

    def _wave_quantization_penalty(self, shape: GemmShape) -> float:
        """Extra factor from partially-filled waves of thread blocks."""
        tile = self.tile_for(shape)
        splits = global_reduction_splits(shape.k, shape.n, tile, num_sms=self.device.num_sms)
        blocks = max(1, -(-shape.n // tile.tile_n)) * splits
        waves = max(1, -(-blocks // self.device.num_sms))
        full_blocks = waves * self.device.num_sms
        return 1.0 + 0.15 * (full_blocks - blocks) / full_blocks

    def _dequant_time(self, shape: GemmShape) -> float:
        if self.dequant_ops_per_element <= 0:
            return 0.0
        ops = shape.k * shape.n * self.dequant_ops_per_element
        # Conversion arithmetic competes with the address/pipeline work of the
        # main loop, so it achieves roughly half the CUDA-core peak.
        return ops / (0.5 * self.device.cuda_core_flops)

    def _sync_time(self, shape: GemmShape) -> float:
        tile = self.tile_for(shape)
        splits = global_reduction_splits(shape.k, shape.n, tile, num_sms=self.device.num_sms)
        if splits <= 1:
            return 0.0
        # Each extra split writes and re-reads FP32 partial sums and pays one
        # global barrier.
        partial_bytes = (splits - 1) * shape.m * shape.n * 4 * 2
        return partial_bytes / self._bandwidth + (splits - 1) * self.device.global_sync_latency

    def _extra_passes_time(self, shape: GemmShape) -> float:
        """Extra kernel passes some backends need (overridden)."""
        return 0.0

    # -- public API --------------------------------------------------------------
    def gemm_cost(self, shape: GemmShape) -> GemmCost:
        if not self.supports_batch(shape.m):
            raise UnsupportedBatchError(
                f"{self.name} supports batch <= {self.max_batch}, got {shape.m}"
            )
        cached = self._cost_cache.get(shape)
        if cached is not None:
            return cached
        total_bytes = self.io_bytes(shape)
        memory_time = self._memory_time(total_bytes)
        compute_time = self._compute_time(shape)
        dequant_time = self._dequant_time(shape)
        sync_time = self._sync_time(shape)
        overhead = self.device.kernel_launch_overhead + self._extra_passes_time(shape)
        cost = GemmCost(
            shape=shape,
            memory_time=memory_time,
            compute_time=compute_time,
            dequant_time=dequant_time,
            sync_time=sync_time,
            overhead_time=overhead,
            overlapped=self.async_load,
            weight_bytes=self.weight_bytes(shape),
            total_bytes=total_bytes,
        )
        self._cost_cache[shape] = cost
        return cost

    def mlp_cost(self, ffn_shapes: dict[str, tuple[int, int]], batch: int) -> list[GemmCost]:
        """Costs for every projection of one expert MLP (Appendix C shapes)."""
        return [
            self.gemm_cost(GemmShape(m=batch, k=k, n=n)) for k, n in ffn_shapes.values()
        ]

    def mlp_latency(self, ffn_shapes: dict[str, tuple[int, int]], batch: int) -> float:
        return sum(c.total for c in self.mlp_cost(ffn_shapes, batch))

    def mlp_tflops(self, ffn_shapes: dict[str, tuple[int, int]], batch: int) -> float:
        costs = self.mlp_cost(ffn_shapes, batch)
        total_flops = sum(c.shape.flops for c in costs)
        total_time = sum(c.total for c in costs)
        return total_flops / total_time / 1e12


# ---------------------------------------------------------------------------
# Concrete backends
# ---------------------------------------------------------------------------
class MiLoKernelSim(KernelSimulator):
    """The paper's fused W3A16 kernel, with Fig. 10 ablation switches."""

    def __init__(
        self,
        symmetric: bool = True,
        async_load: bool = True,
        milo_dequant: bool = True,
        tile_tuning: bool = True,
        device: DeviceSpec = A100_40GB,
    ) -> None:
        super().__init__(
            name=f"milo-{'sym' if symmetric else 'asym'}",
            bits=3,
            group_size=64,
            symmetric=symmetric,
            asymmetric_metadata=not symmetric,
            fused=True,
            async_load=async_load,
            # The binary-manipulation path converts two codes per instruction;
            # a naive cast chain costs an order of magnitude more ALU work, and
            # the asymmetric path adds one fused multiply-add per element.
            dequant_ops_per_element=(1.0 if milo_dequant else 12.0) + (0.0 if symmetric else 0.5),
            uses_tensor_cores=True,
            tile_tuning=tile_tuning,
            bandwidth_factor=0.95,
            device=device,
        )
        self.milo_dequant = milo_dequant


class MarlinKernelSim(KernelSimulator):
    """MARLIN W4A16 symmetric kernel (group size 128)."""

    def __init__(self, handle_asymmetric_model: bool = False, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="marlin",
            bits=4,
            group_size=128,
            symmetric=True,
            asymmetric_metadata=False,
            fused=True,
            async_load=True,
            dequant_ops_per_element=1.0,
            uses_tensor_cores=True,
            tile_tuning=False,
            fixed_tile=TileShape(128, 128),
            bandwidth_factor=1.0,
            device=device,
        )
        #: When serving an asymmetrically-quantized model (the MiLo algorithm's
        #: preferred setting), MARLIN cannot fuse the zero-point correction and
        #: needs an extra elementwise pass over the output (paper §4.3.1).
        self.handle_asymmetric_model = handle_asymmetric_model

    def _extra_passes_time(self, shape: GemmShape) -> float:
        if not self.handle_asymmetric_model:
            return 0.0
        correction_bytes = 2 * shape.m * shape.n * _FP16 + shape.n * _FP16
        return correction_bytes / self.device.effective_bandwidth + self.device.kernel_launch_overhead


class GPTQ3bitKernelSim(KernelSimulator):
    """GPTQ's W3A16 GeMV kernel: per-channel asymmetric, batch size 1 only."""

    def __init__(self, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="gptq3bit",
            bits=3,
            group_size=64,
            symmetric=False,
            asymmetric_metadata=True,
            fused=True,
            # The GeMV's trivial per-row dot products hide entirely behind the
            # weight streaming, so the pipeline behaves as overlapped.
            async_load=True,
            dequant_ops_per_element=2.0,
            uses_tensor_cores=False,
            tile_tuning=False,
            max_batch=1,
            bandwidth_factor=0.95,
            device=device,
        )

    def weight_bytes(self, shape: GemmShape) -> float:
        # Per-channel (not per-group) scale and zero: one pair per output column.
        codes = shape.k * shape.n * self.bits / 8.0
        return codes + shape.n * 2 * _FP16

    def _sync_time(self, shape: GemmShape) -> float:
        # GeMV partial sums are combined with atomics; no split-K barrier.
        return 0.0


class DequantCutlassSim(KernelSimulator):
    """Unfused pipeline: MiLo Dequant kernel, then a CUTLASS FP16 GEMM.

    The de-quantized FP16 weight makes a round trip through global memory, so
    the weight is read once at 3 bits, written once at 16 bits, and read again
    at 16 bits by the GEMM — the traffic penalty that motivates fusion.
    """

    def __init__(self, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="milo-dequant+cutlass",
            bits=3,
            group_size=64,
            symmetric=True,
            asymmetric_metadata=False,
            fused=False,
            async_load=False,
            dequant_ops_per_element=1.0,
            uses_tensor_cores=True,
            tile_tuning=False,
            bandwidth_factor=0.9,
            device=device,
        )

    def io_bytes(self, shape: GemmShape) -> float:
        packed = self.weight_bytes(shape)
        fp16_weight = shape.k * shape.n * _FP16
        activations = shape.m * shape.k * _FP16
        output = shape.m * shape.n * _FP16
        # dequant kernel: read packed, write FP16; GEMM kernel: read FP16.
        return packed + 2 * fp16_weight + activations + output

    def _extra_passes_time(self, shape: GemmShape) -> float:
        # Second kernel launch for the GEMM.
        return self.device.kernel_launch_overhead


class FP16KernelSim(KernelSimulator):
    """Un-quantized FP16 GEMM (PyTorch / cuBLAS)."""

    def __init__(self, device: DeviceSpec = A100_40GB) -> None:
        super().__init__(
            name="fp16",
            bits=16,
            group_size=1,
            symmetric=True,
            fused=True,
            async_load=True,
            dequant_ops_per_element=0.0,
            uses_tensor_cores=True,
            tile_tuning=False,
            device=device,
        )


def default_backends(asymmetric_model: bool = False) -> dict[str, KernelSimulator]:
    """The backend line-up of Fig. 9, keyed by display name."""
    return {
        "MiLo Dequant + CUTLASS": DequantCutlassSim(),
        "GPTQ3bit Kernel": GPTQ3bitKernelSim(),
        "MARLIN Kernel": MarlinKernelSim(handle_asymmetric_model=asymmetric_model),
        "MiLo Kernel (sym)": MiLoKernelSim(symmetric=True),
        "MiLo Kernel (asym)": MiLoKernelSim(symmetric=False),
    }
