"""Request and sequence abstractions for the serving engine.

A :class:`Request` is what a client submits: an arrival time, a prompt length,
a decode budget, and an optional priority class.  The engine wraps each
admitted request in a :class:`Sequence`, which tracks the two phases of its
lifetime on the simulated device:

* **prefill** — the whole prompt is processed in one continuous-batching
  iteration (Orca-style iteration-level scheduling); the iteration that
  finishes prefill also emits the first output token, which defines the
  request's TTFT (time to first token);
* **decode** — each subsequent iteration the sequence participates in emits
  one token, until ``max_new_tokens`` have been produced; the average gap
  between those tokens is the TPOT (time per output token).

All timestamps are in simulated seconds on the discrete-event clock of
:class:`repro.serving.engine.ServingEngine`; nothing here reads wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RequestState", "Request", "Sequence"]


class RequestState(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    QUEUED = "queued"        # waiting for admission (KV blocks / batch slot)
    RUNNING = "running"      # member of the current continuous batch
    FINISHED = "finished"    # produced all of its tokens
    REJECTED = "rejected"    # admission control refused it


@dataclass(frozen=True)
class Request:
    """One client request of the simulated workload."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    max_new_tokens: int
    #: Lower value = more urgent.  The scheduler is FIFO *within* a priority
    #: class and strict-priority across classes.
    priority: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def total_tokens(self) -> int:
        """KV-cache footprint of the fully-decoded request, in tokens."""
        return self.prompt_tokens + self.max_new_tokens


@dataclass
class Sequence:
    """Engine-side state of one request."""

    request: Request
    state: RequestState = RequestState.QUEUED
    #: Order in which the scheduler first saw the request (dense, per engine
    #: run); ties on priority are broken by this, making admission FIFO.
    enqueue_index: int = 0
    prefill_done: bool = False
    generated_tokens: int = 0
    admission_time: float | None = None
    first_token_time: float | None = None
    finish_time: float | None = None

    # -- phase queries -----------------------------------------------------------
    @property
    def is_prefill(self) -> bool:
        return self.state is RequestState.RUNNING and not self.prefill_done

    @property
    def is_finished(self) -> bool:
        return self.state is RequestState.FINISHED

    def tokens_this_iteration(self) -> int:
        """Token rows this sequence contributes to the next iteration's GEMMs."""
        if self.state is not RequestState.RUNNING:
            return 0
        return self.request.prompt_tokens if not self.prefill_done else 1

    def kv_tokens_held(self) -> int:
        """Tokens of KV capacity the sequence holds while running.

        Admission is reservation-based (the block manager reserves the full
        ``prompt + max_new_tokens`` extent up front), so the held capacity is
        the request's total extent for its whole running life, not the tokens
        written so far.
        """
        if self.state is not RequestState.RUNNING:
            return 0
        return self.request.total_tokens

    # -- lifecycle transitions ---------------------------------------------------
    def admit(self, now: float) -> None:
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot admit a {self.state.value} sequence")
        self.state = RequestState.RUNNING
        self.admission_time = now

    def reject(self) -> None:
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot reject a {self.state.value} sequence")
        self.state = RequestState.REJECTED

    def advance(self, now: float) -> None:
        """Record the outcome of one iteration this sequence participated in."""
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"cannot advance a {self.state.value} sequence")
        if not self.prefill_done:
            # The prefill iteration also produces the first output token.
            self.prefill_done = True
            self.first_token_time = now
            self.generated_tokens = 1
        else:
            self.generated_tokens += 1
        if self.generated_tokens >= self.request.max_new_tokens:
            self.state = RequestState.FINISHED
            self.finish_time = now

    # -- metrics -----------------------------------------------------------------
    @property
    def ttft(self) -> float | None:
        """Time from arrival to the first output token (includes queueing)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.request.arrival_time

    @property
    def tpot(self) -> float | None:
        """Mean inter-token gap of the decode phase.

        Defined over the ``generated_tokens - 1`` gaps after the first token;
        a single-token request has no decode gap and reports 0.
        """
        if self.finish_time is None or self.first_token_time is None:
            return None
        if self.generated_tokens <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.generated_tokens - 1)

    @property
    def e2e_latency(self) -> float | None:
        """Arrival to last token."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.request.arrival_time
