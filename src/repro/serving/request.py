"""Request and sequence abstractions for the serving engine.

A :class:`Request` is what a client submits: an arrival time, a prompt length,
a decode budget, and an optional priority class.  The engine wraps each
admitted request in a :class:`Sequence`, which tracks the phases of its
lifetime on the simulated device:

* **prefill** — the prompt is processed over one or more continuous-batching
  iterations.  By default the whole prompt is fed in a single iteration
  (Orca-style); with chunked prefill (Sarathi-style, ``prefill_chunk``) at
  most ``chunk`` prompt tokens are fed per iteration, piggybacked with the
  decode tokens of other sequences.  The iteration that finishes prefill also
  emits the first output token, which defines the request's TTFT (time to
  first token);
* **decode** — each subsequent iteration the sequence participates in emits
  one token, until ``max_new_tokens`` have been produced; the average gap
  between those tokens is the TPOT (time per output token);
* **preempted** (on-demand allocation only) — the scheduler reclaimed the
  sequence's KV blocks to let a higher-precedence sequence grow.  The
  sequence is requeued and, on re-admission, *recomputes*: its prefill extent
  becomes ``prompt + tokens generated so far`` (the already-delivered tokens
  are re-prefilled, vLLM's recompute-on-resume), after which decode continues
  from where it left off.  TTFT keeps the original first delivery.

All timestamps are in simulated seconds on the discrete-event clock of
:class:`repro.serving.engine.ServingEngine`; nothing here reads wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RequestState", "Request", "Sequence"]


class RequestState(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    QUEUED = "queued"        # waiting for admission (KV blocks / batch slot)
    RUNNING = "running"      # member of the current continuous batch
    PREEMPTED = "preempted"  # KV blocks reclaimed; awaiting requeue
    FINISHED = "finished"    # produced all of its tokens
    REJECTED = "rejected"    # admission control refused it
    STRANDED = "stranded"    # still waiting when the engine ran out of work


@dataclass(frozen=True, slots=True)
class Request:
    """One client request of the simulated workload."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    max_new_tokens: int
    #: Lower value = more urgent.  The scheduler is FIFO *within* a priority
    #: class and strict-priority across classes.
    priority: int = 0
    #: Identity of a shared prompt prefix (e.g. one of K system prompts).
    #: Requests declaring the same ``prefix_id`` assert that their first
    #: ``prefix_tokens`` prompt tokens are identical, so their KV blocks may
    #: be mapped read-only by every concurrent holder (prefix caching).
    prefix_id: int | None = None
    #: Leading prompt tokens drawn from the shared prefix (<= prompt_tokens).
    prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.prefix_id is None:
            if self.prefix_tokens != 0:
                raise ValueError("prefix_tokens requires a prefix_id")
        else:
            if self.prefix_id < 0:
                raise ValueError("prefix_id must be non-negative")
            if not 0 < self.prefix_tokens <= self.prompt_tokens:
                raise ValueError(
                    "prefix_tokens must lie in [1, prompt_tokens] when a "
                    "prefix_id is given"
                )

    @property
    def total_tokens(self) -> int:
        """KV-cache footprint of the fully-decoded request, in tokens."""
        return self.prompt_tokens + self.max_new_tokens


@dataclass(slots=True)
class Sequence:
    """Engine-side state of one request."""

    request: Request
    state: RequestState = RequestState.QUEUED
    #: Order in which the scheduler first saw the request (dense, per engine
    #: run); ties on priority are broken by this, making admission FIFO.  A
    #: preempted sequence keeps its index, so it rejoins the queue ahead of
    #: every later arrival of its priority class (no starvation by churn).
    enqueue_index: int = 0
    prefill_done: bool = False
    #: Prompt tokens fed so far in the current (re-)prefill pass.
    prefill_progress: int = 0
    #: Prefix tokens whose KV was resident at the last admission (prefix
    #: cache hit); they are skipped by the current prefill pass.
    prefix_hit_tokens: int = 0
    #: Generated tokens folded into the prefill extent by recompute-on-resume.
    recompute_base: int = 0
    generated_tokens: int = 0
    #: Times this sequence was preempted (on-demand allocation only).
    preemptions: int = 0
    #: Tokens of KV state parked in host memory by swap-to-host preemption
    #: (``--preempt-mode swap``).  Non-zero only between :meth:`swap_out` and
    #: the engine's swap-in on re-admission; the engine prices the restore as
    #: ``blocks(swapped_tokens)`` over :attr:`DeviceSpec.host_bandwidth` and
    #: then clears it.  Always 0 under recompute preemption.
    swapped_tokens: int = 0
    #: Device index of the pool holding this sequence's KV blocks (set by the
    #: scheduler at each admission; a preempted sequence may re-home).  Always
    #: 0 on a single-device engine.
    home_device: int = 0
    #: Expert-placement epoch under which the sequence was (last) admitted
    #: (stamped by the scheduler).  The engine's overlap mode bumps the epoch
    #: at every dynamic expert re-placement, so this records which cluster
    #: layout served the request; always 0 outside overlap mode.
    placement_epoch: int = 0
    #: Engine-internal: iteration index at which this sequence's decode
    #: completes, scheduled by the event-driven fast path when prefill
    #: finishes (``None`` outside the fast path / after the finish event).
    finish_iteration: int | None = None
    admission_time: float | None = None
    first_token_time: float | None = None
    finish_time: float | None = None

    # -- phase queries -----------------------------------------------------------
    @property
    def is_prefill(self) -> bool:
        return self.state is RequestState.RUNNING and not self.prefill_done

    @property
    def is_finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def prefill_extent(self) -> int:
        """Tokens the current prefill pass must process before decode.

        The prompt for a fresh sequence; ``prompt + generated-so-far`` for a
        sequence resuming from preemption (recompute).
        """
        return self.request.prompt_tokens + self.recompute_base

    @property
    def remaining_prefill(self) -> int:
        return max(0, self.prefill_extent - self.prefill_progress)

    def tokens_this_iteration(self, prefill_chunk: int | None = None) -> int:
        """Token rows this sequence contributes to the next iteration's GEMMs."""
        if self.state is not RequestState.RUNNING:
            return 0
        if not self.prefill_done:
            remaining = self.remaining_prefill
            return remaining if prefill_chunk is None else min(prefill_chunk, remaining)
        return 1

    def emits_token_this_iteration(self, prefill_chunk: int | None = None) -> bool:
        """Whether the next iteration appends a generated token's KV state."""
        if self.state is not RequestState.RUNNING:
            return False
        if self.prefill_done:
            return True
        return self.tokens_this_iteration(prefill_chunk) >= self.remaining_prefill

    def kv_tokens_written(self) -> int:
        """Tokens of KV state materialized so far (on-demand accounting)."""
        if not self.prefill_done:
            return self.prefill_progress
        return self.request.prompt_tokens + self.generated_tokens

    def kv_tokens_held(self) -> int:
        """Tokens of KV capacity the sequence holds under *reservation*.

        Reservation-based admission reserves the full ``prompt +
        max_new_tokens`` extent up front, so the held capacity is the
        request's total extent for its whole running life, not the tokens
        written so far.  :class:`~repro.serving.kv_cache.OnDemandPolicy`
        tracks actual holdings through the block pool instead.
        """
        if self.state is not RequestState.RUNNING:
            return 0
        return self.request.total_tokens

    def apply_prefix_hit(self, hit_tokens: int) -> None:
        """Skip prefill for prefix tokens whose KV is already resident.

        Called by the allocation policy at admission time, after the block
        table has mapped the resident shared blocks.  At least one prompt
        token is always recomputed — the iteration that finishes prefill
        must still run to emit the first output token (vLLM recomputes the
        last prompt token of a full-prompt cache hit for the same reason).
        """
        if hit_tokens < 0:
            raise ValueError("hit_tokens must be non-negative")
        self.prefix_hit_tokens = min(hit_tokens, self.prefill_extent - 1)
        self.prefill_progress = self.prefix_hit_tokens

    # -- lifecycle transitions ---------------------------------------------------
    def admit(self, now: float) -> None:
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot admit a {self.state.value} sequence")
        self.state = RequestState.RUNNING
        if self.admission_time is None:
            self.admission_time = now

    def reject(self) -> None:
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot reject a {self.state.value} sequence")
        self.state = RequestState.REJECTED

    def strand(self) -> None:
        """Terminal state for a request still queued when the run ends.

        A scheduling policy that refuses admission (or a batch that never
        drains) can leave requests in the waiting queue when the engine has
        no arrivals and no running work left; the engine surfaces them as
        ``stranded`` instead of silently dropping them from the report.
        """
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot strand a {self.state.value} sequence")
        self.state = RequestState.STRANDED

    def preempt(self) -> int:
        """Drop to PREEMPTED, discarding in-flight KV state.

        Returns the tokens of KV work that must be recomputed on resume:
        the prompt tokens prefetched so far plus every generated token (they
        are all re-prefilled by the resumed sequence's recompute pass).
        """
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"cannot preempt a {self.state.value} sequence")
        recomputed = self.kv_tokens_written()
        self.state = RequestState.PREEMPTED
        self.recompute_base = self.generated_tokens
        self.prefill_progress = 0
        self.prefix_hit_tokens = 0  # re-admission re-queries the prefix index
        self.prefill_done = False
        self.preemptions += 1
        return recomputed

    def swap_out(self) -> int:
        """Drop to PREEMPTED, parking in-flight KV state in host memory.

        The swap-to-host alternative to :meth:`preempt`: the KV written so
        far survives (copied to host over PCIe by the engine's accounting),
        so no prefill state is reset — on re-admission the sequence pays a
        swap-in transfer instead of a recompute pass and resumes exactly
        where it stopped.  Returns the tokens of KV state swapped out.
        """
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"cannot swap out a {self.state.value} sequence")
        self.swapped_tokens = self.kv_tokens_written()
        self.state = RequestState.PREEMPTED
        self.preemptions += 1
        return self.swapped_tokens

    def requeue(self) -> None:
        if self.state is not RequestState.PREEMPTED:
            raise RuntimeError(f"cannot requeue a {self.state.value} sequence")
        self.state = RequestState.QUEUED

    def advance(self, now: float, prefill_chunk: int | None = None) -> None:
        """Record the outcome of one iteration this sequence participated in."""
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"cannot advance a {self.state.value} sequence")
        if not self.prefill_done:
            self.prefill_progress += self.tokens_this_iteration(prefill_chunk)
            if self.prefill_progress < self.prefill_extent:
                return  # mid-chunk: no token emitted this iteration
            # The iteration that finishes (re-)prefill also produces one new token.
            self.prefill_done = True
            self.generated_tokens += 1
            if self.first_token_time is None:
                self.first_token_time = now
        else:
            self.generated_tokens += 1
        if self.generated_tokens >= self.request.max_new_tokens:
            self.state = RequestState.FINISHED
            self.finish_time = now

    # -- metrics -----------------------------------------------------------------
    @property
    def ttft(self) -> float | None:
        """Time from arrival to the first output token (includes queueing)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.request.arrival_time

    @property
    def tpot(self) -> float | None:
        """Mean inter-token gap of the decode phase.

        Defined over the ``generated_tokens - 1`` gaps after the first token;
        a single-token request has no decode gap and reports 0.
        """
        if self.finish_time is None or self.first_token_time is None:
            return None
        if self.generated_tokens <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.generated_tokens - 1)

    @property
    def e2e_latency(self) -> float | None:
        """Arrival to last token."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.request.arrival_time
