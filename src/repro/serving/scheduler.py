"""Iteration-level (continuous-batching) scheduler.

Orca-style continuous batching: the batch is re-formed at every *iteration*
boundary rather than per request-batch.  Finished sequences are evicted and
their KV blocks freed as soon as their last token is produced, and queued
requests join the very next iteration if a batch slot and enough KV blocks
are available — no waiting for the whole batch to drain.

Scheduling policy and its invariants (all covered by
``tests/serving/test_scheduler.py``):

* **Strict priority, FIFO within a class.**  The waiting queue is ordered by
  ``(priority, enqueue_index)``; a request can never be overtaken by a
  later-arriving request of the same or lower priority.
* **No starvation (queue mode).**  Admission stops at the first waiting
  request that does not fit instead of skipping over it, so head-of-line
  requests cannot be starved by smaller late arrivals; since running
  sequences always finish in bounded time, the head is eventually admitted.
* **Batch never exceeds capacity.**  ``len(running) <= max_batch_size`` and
  reserved KV blocks never exceed the pool, enforced through the
  reservation-based :class:`~repro.serving.kv_cache.BlockManager`.
* **Rejection is typed.**  A request whose full extent could never fit in an
  *empty* pool is rejected in either admission mode; in ``"reject"`` mode a
  request is also rejected if it does not fit at the moment it is first
  considered (load shedding), instead of queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kv_cache import BlockManager
from .request import Request, Sequence

__all__ = ["SchedulerConfig", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Policy knobs of the continuous-batching scheduler."""

    #: Hard cap on concurrent sequences, on top of the KV-capacity limit.
    max_batch_size: int = 64
    #: ``"queue"`` holds requests until capacity frees up; ``"reject"`` sheds
    #: load by rejecting requests that do not fit when first considered.
    admission: str = "queue"

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.admission not in ("queue", "reject"):
            raise ValueError(f"admission must be 'queue' or 'reject', got {self.admission!r}")


class ContinuousBatchingScheduler:
    """Forms the per-iteration batch over a shared KV block pool."""

    def __init__(self, block_manager: BlockManager, config: SchedulerConfig | None = None) -> None:
        self.block_manager = block_manager
        self.config = config or SchedulerConfig()
        self.waiting: list[Sequence] = []
        self.running: list[Sequence] = []
        self.rejected: list[Sequence] = []
        self.finished: list[Sequence] = []
        self._enqueue_counter = 0

    # -- intake ------------------------------------------------------------------
    def add_request(self, request: Request) -> Sequence:
        """Enqueue a request; rejects immediately if it could never fit."""
        seq = Sequence(request=request, enqueue_index=self._enqueue_counter)
        self._enqueue_counter += 1
        if not self.block_manager.fits_at_all(request.total_tokens):
            seq.reject()
            self.rejected.append(seq)
            return seq
        self.waiting.append(seq)
        self.waiting.sort(key=lambda s: (s.request.priority, s.enqueue_index))
        return seq

    # -- iteration boundary ------------------------------------------------------
    def admit(self, now: float) -> list[Sequence]:
        """Join waiting requests to the batch at an iteration boundary."""
        admitted: list[Sequence] = []
        while self.waiting and len(self.running) < self.config.max_batch_size:
            head = self.waiting[0]
            if self.block_manager.can_allocate(head.request.total_tokens):
                self.waiting.pop(0)
                self.block_manager.allocate(head.request.request_id, head.request.total_tokens)
                head.admit(now)
                self.running.append(head)
                admitted.append(head)
            elif self.config.admission == "reject":
                self.waiting.pop(0)
                head.reject()
                self.rejected.append(head)
            else:
                # Queue mode: keep FIFO order — do not skip the head to admit a
                # smaller request behind it (that is how starvation starts).
                break
        return admitted

    def evict_finished(self) -> list[Sequence]:
        """Remove finished sequences from the batch and free their KV blocks."""
        done = [s for s in self.running if s.is_finished]
        for seq in done:
            self.block_manager.free(seq.request.request_id)
            self.finished.append(seq)
        self.running = [s for s in self.running if not s.is_finished]
        return done

    # -- queries -----------------------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    def batch_tokens(self) -> int:
        """Token rows the current batch contributes to the next iteration."""
        return sum(seq.tokens_this_iteration() for seq in self.running)
