"""Iteration-level (continuous-batching) scheduler with pluggable policies.

Orca-style continuous batching: the batch is re-formed at every *iteration*
boundary rather than per request-batch.  Finished sequences are evicted and
their KV blocks freed as soon as their last token is produced, and queued
requests join the very next iteration if a batch slot and enough KV blocks
are available — no waiting for the whole batch to drain.

Two policy objects compose the scheduler:

* an :class:`~repro.serving.kv_cache.AllocationPolicy` decides *when KV
  blocks are taken* (full-extent reservation vs on-demand growth);
* a :class:`SchedulingPolicy` decides *who goes first*: the admission order
  of the waiting queue, whether another sequence may join the batch, and —
  when on-demand allocation runs the pool dry — which running sequence to
  preempt.

Scheduling invariants (all covered by ``tests/serving/test_scheduler.py``
and ``tests/serving/test_policies.py``):

* **Strict priority, FIFO within a class.**  The waiting queue is ordered by
  ``(priority, enqueue_index)``; a request can never be overtaken by a
  later-arriving request of the same or lower priority.  Preempted sequences
  keep their original ``enqueue_index`` and so rejoin ahead of later
  arrivals of their class.
* **No starvation (queue mode).**  Admission stops at the first waiting
  request that does not fit instead of skipping over it, so head-of-line
  requests cannot be starved by smaller late arrivals; since running
  sequences always finish in bounded time (preemption victims are always
  the *lowest*-precedence running sequences, so the highest-precedence one
  always makes progress), the head is eventually admitted.
* **Batch never exceeds capacity.**  ``len(running) <= max_batch_size`` and
  allocated KV blocks never exceed the pool; under on-demand allocation
  :meth:`ContinuousBatchingScheduler.ensure_capacity` preempts before any
  iteration that would overflow.
* **Rejection is typed.**  A request whose full extent could never fit in an
  *empty* pool is rejected in either admission mode; in ``"reject"`` mode a
  request is also rejected if it does not fit at the moment it is first
  considered (load shedding), instead of queueing.  A *preempted* sequence
  is never load-shed: it was already admitted once and always requeues.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from .kv_cache import AllocationPolicy, BlockManager, ReservationPolicy
from .request import Request, RequestState, Sequence

if TYPE_CHECKING:
    from .telemetry.tracer import Tracer

__all__ = [
    "ADMISSION_MODES",
    "PREEMPT_MODES",
    "SchedulerConfig",
    "SchedulingPolicy",
    "FifoPriorityPolicy",
    "WaitingQueue",
    "ContinuousBatchingScheduler",
]


#: Admission control modes shared by :class:`SchedulerConfig`,
#: :class:`~repro.serving.engine.EngineConfig`, and the CLI's
#: ``--admission`` choices (REG001: one constant, no drift).
ADMISSION_MODES: tuple[str, ...] = ("queue", "reject")

#: What preemption does to the victim's KV state, shared by
#: :class:`SchedulerConfig`, :class:`~repro.serving.engine.EngineConfig`, and
#: the CLI's ``--preempt-mode`` choices (REG001): ``"recompute"`` discards it
#: and re-prefills on resume (vLLM recompute, the historical behavior);
#: ``"swap"`` parks it in host memory and pays a PCIe swap-in on resume.
PREEMPT_MODES: tuple[str, ...] = ("recompute", "swap")


@dataclass(frozen=True)
class SchedulerConfig:
    """Policy knobs of the continuous-batching scheduler."""

    #: Hard cap on concurrent sequences, on top of the KV-capacity limit.
    max_batch_size: int = 64
    #: ``"queue"`` holds requests until capacity frees up; ``"reject"`` sheds
    #: load by rejecting requests that do not fit when first considered.
    admission: str = "queue"
    #: Sarathi-style chunked prefill: at most this many prompt tokens are fed
    #: per iteration (piggybacked with decode tokens); ``None`` feeds the
    #: whole prompt in one iteration (PR 1 behavior).
    prefill_chunk: int | None = None
    #: What preemption does to the victim's KV: ``"recompute"`` discards and
    #: re-prefills (the historical behavior), ``"swap"`` parks it in host
    #: memory and the engine prices a swap-in on resume.
    preempt_mode: str = "recompute"

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.admission not in ADMISSION_MODES:
            raise ValueError(f"admission must be 'queue' or 'reject', got {self.admission!r}")
        if self.prefill_chunk is not None and self.prefill_chunk <= 0:
            raise ValueError("prefill_chunk must be positive (or None to disable)")
        if self.preempt_mode not in PREEMPT_MODES:
            raise ValueError(
                f"preempt_mode must be one of {PREEMPT_MODES}, got {self.preempt_mode!r}"
            )


class SchedulingPolicy:
    """Ordering hooks of the continuous-batching scheduler.

    The default is strict priority with FIFO inside a class for admission,
    batch membership capped by ``max_batch_size``, and
    lowest-precedence-first preemption (the victim is the request a strict
    priority queue would serve last).  Subclasses override individual hooks
    to express other disciplines without touching the scheduler loop.
    """

    #: Name surfaced in the serving report.
    name: str = "priority-fifo"

    def queue_key(self, seq: Sequence) -> tuple[int, ...]:
        """Sort key of the waiting queue; admission follows this order."""
        return (seq.request.priority, seq.enqueue_index)

    def may_join(self, running: list[Sequence], config: SchedulerConfig) -> bool:
        """Batch-formation hook: may another sequence join the batch?"""
        return len(running) < config.max_batch_size

    def select_victim(
        self, candidates: list[Sequence], pool: BlockManager | None = None
    ) -> Sequence | None:
        """Pick the running sequence to preempt when the pool runs dry.

        Default: the lowest-precedence sequence — maximal ``queue_key``, i.e.
        the lowest-priority, latest-enqueued one.  When the pool is given,
        ties inside a priority class prefer the candidate holding the fewest
        *shared* prefix blocks: preempting a sharer returns only its private
        blocks (the shared ones stay referenced by other sequences), so the
        low-sharing victim frees the most memory per preemption.  Without
        sharing every count is zero and the order is exactly the classic
        (priority, enqueue_index) one.

        The pool-aware order is expressed in terms of the *default*
        discipline; a subclass that overrides :meth:`queue_key` should
        override this hook too, or its victims will still be picked by
        (priority, sharing, enqueue_index).
        """
        if pool is None:
            return max(candidates, key=self.queue_key, default=None)
        return max(
            candidates,
            key=lambda seq: (
                seq.request.priority,
                -pool.shared_blocks_held(seq.request.request_id),
                seq.enqueue_index,
            ),
            default=None,
        )

    def select_rebalance(
        self,
        running: list[Sequence],
        pool: BlockManager,
        decode_pool: tuple[int, ...],
    ) -> tuple[Sequence, int] | None:
        """Pick a decode-phase migration to even the decode pool, or ``None``.

        Load-triggered rebalancing hook of the disaggregated engine: called
        at iteration boundaries where batch membership changed, over the
        decode pool's devices.  The default moves the smallest decode-phase
        sequence (fewest blocks held, ties by enqueue order) off the
        most-loaded decode device (fewest free blocks, ties by index) onto
        the least-loaded one — but only when the move leaves the destination
        at least ``2 × moved`` free blocks ahead of the source, a hysteresis
        band that keeps two near-even devices from trading the same sequence
        back and forth.  Returns ``(sequence, destination_device)``;
        subclasses may override for other elasticity disciplines.
        """
        if len(decode_pool) < 2:
            return None
        free = {d: pool.free_blocks_on(d) for d in decode_pool}
        most_loaded = min(decode_pool, key=lambda d: (free[d], d))
        least_loaded = max(decode_pool, key=lambda d: (free[d], -d))
        if most_loaded == least_loaded:
            return None
        candidates = [
            seq
            for seq in running
            if seq.state is RequestState.RUNNING
            and seq.prefill_done
            and seq.home_device == most_loaded
        ]
        if not candidates:
            return None
        mover = min(
            candidates,
            key=lambda seq: (
                pool.blocks_held(seq.request.request_id),
                seq.enqueue_index,
            ),
        )
        held = pool.blocks_held(mover.request.request_id)
        if held == 0 or free[least_loaded] < free[most_loaded] + 2 * held:
            return None
        return mover, least_loaded


class FifoPriorityPolicy(SchedulingPolicy):
    """The default scheduling discipline, under its explicit name."""


class WaitingQueue:
    """Heap-backed waiting queue ordered by the scheduling policy's key.

    The pre-PR-6 scheduler kept ``waiting`` as a plain list re-sorted on
    every insert — O(n log n) per arrival, the dominant cost of long-trace
    replays.  The heap makes a push O(log n) and a head pop O(log n) while
    serving admissions in exactly the old sorted order: entries carry a
    monotonically increasing push counter, so equal policy keys pop in
    insertion order — precisely the stable-sort semantics ``list.sort``
    gave (``tests/serving/test_heap_queue.py`` pins the equivalence under
    random priorities and preemption re-pushes).

    The policy key is evaluated once, at push time.  Every in-tree key —
    ``(priority, enqueue_index)`` — is immutable while a sequence waits;
    a custom policy whose key mutates for *queued* sequences must re-push
    them (the old code had the same caveat, just one re-sort later).

    List-compat surface: ``append`` aliases ``push``, ``sort`` is a no-op
    (the heap already serves keys in order), iteration and indexing yield
    the sorted view, ``pop(0)`` pops the head.
    """

    __slots__ = ("_key", "_heap", "_pushes")

    def __init__(self, key: Callable[[Sequence], tuple]) -> None:
        self._key = key
        self._heap: list[tuple[tuple, int, Sequence]] = []
        self._pushes = 0

    def push(self, seq: Sequence) -> None:
        heapq.heappush(self._heap, (self._key(seq), self._pushes, seq))
        self._pushes += 1

    #: List-compat alias so callers written against the old list still work.
    append = push

    def peek(self) -> Sequence:
        """The head — the sequence the policy admits next."""
        return self._heap[0][2]

    def pop(self, index: int = 0) -> Sequence:
        if index != 0:
            raise IndexError("WaitingQueue only pops the head (index 0)")
        return heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        self._heap.clear()

    def sort(self, key: Callable | None = None) -> None:
        """No-op list-compat shim: the heap already serves keys in order."""

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Sequence]:
        # The push counter makes every entry distinct, so sequences are
        # never compared and ties keep insertion order (stable-sort view).
        return (entry[2] for entry in sorted(self._heap))

    def __getitem__(self, index: int) -> Sequence:
        if index == 0 and self._heap:
            return self._heap[0][2]
        return sorted(self._heap)[index][2]


class ContinuousBatchingScheduler:
    """Forms the per-iteration batch over a shared KV block pool.

    ``allocation`` defaults to :class:`ReservationPolicy` over
    ``block_manager`` (the PR 1 semantics) and ``policy`` to
    :class:`FifoPriorityPolicy`, so existing two-argument construction keeps
    its exact behavior.
    """

    def __init__(
        self,
        block_manager: BlockManager,
        config: SchedulerConfig | None = None,
        *,
        allocation: AllocationPolicy | None = None,
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self.block_manager = block_manager
        self.config = config or SchedulerConfig()
        self.allocation = allocation or ReservationPolicy(block_manager)
        if self.allocation.pool is not block_manager:
            raise ValueError("allocation policy must wrap the scheduler's block manager")
        self.policy = policy or FifoPriorityPolicy()
        # Bound through `self.policy` so a policy installed after
        # construction (tests do this) still keys future pushes.
        self.waiting = WaitingQueue(lambda seq: self.policy.queue_key(seq))
        self.running: list[Sequence] = []
        self.rejected: list[Sequence] = []
        self.finished: list[Sequence] = []
        self.stranded: list[Sequence] = []
        self.preemptions = 0
        self.recomputed_tokens = 0
        #: Swap-to-host preemptions and the blocks they parked in host memory
        #: (``preempt_mode == "swap"`` only; both stay 0 under recompute).
        self.swaps = 0
        self.swapped_blocks = 0
        #: Disaggregated pool split, set by the engine (``None`` = colocated):
        #: new admissions are steered to the prefill pool, swapped-out
        #: decode-phase resumes to the decode pool, and the rebalance hook
        #: runs over the decode pool.  Requires a sharded block manager.
        self.prefill_pool: tuple[int, ...] | None = None
        self.decode_pool: tuple[int, ...] | None = None
        self._enqueue_counter = 0
        #: Current expert-placement epoch, stamped onto sequences at
        #: admission.  The engine's overlap mode bumps it at every dynamic
        #: re-placement; it stays 0 everywhere else.
        self.placement_epoch = 0
        #: Optional telemetry sink, attached by the engine's ``run`` when
        #: telemetry is enabled.  Emits the request lifecycle events
        #: (submit/reject/admit/preempt/finish/strand); every call is
        #: ``is not None``-guarded so the disabled path stays free.
        self.tracer: Tracer | None = None

    # -- intake ------------------------------------------------------------------
    def add_request(self, request: Request) -> Sequence:
        """Enqueue a request; rejects immediately if it could never fit."""
        seq = Sequence(request=request, enqueue_index=self._enqueue_counter)
        self._enqueue_counter += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.submit(request)
        # Under disaggregation the intake bound is two-sided: the request
        # must fit a prefill device (``fits_at_all`` checks the admissible
        # pools) *and* its full decoded extent must fit some decode device,
        # or the post-prefill handoff could never land anywhere and the
        # sequence would bounce between preemption and re-prefill forever.
        fits = self.allocation.fits_at_all(request)
        if fits and self.decode_pool is not None:
            fits = any(
                self.block_manager.pools[d].fits_at_all(request.total_tokens)
                for d in self.decode_pool
            )
        if not fits:
            seq.reject()
            self.rejected.append(seq)
            if tracer is not None:
                tracer.reject(seq, request.arrival_time)
            return seq
        self.waiting.push(seq)
        return seq

    # -- iteration boundary ------------------------------------------------------
    def admit(self, now: float) -> list[Sequence]:
        """Join waiting requests to the batch at an iteration boundary."""
        admitted: list[Sequence] = []
        tracer = self.tracer
        while self.waiting and self.policy.may_join(self.running, self.config):
            head = self.waiting[0]
            if self.decode_pool is not None:
                # Steer the allocation: a swapped-out decode-phase sequence
                # resumes in the decode pool (its restored KV lives where
                # decode runs), while fresh arrivals and recompute resumes —
                # which (re-)prefill — are admitted to the prefill pool.
                self.block_manager.admit_devices = (
                    self.decode_pool if head.prefill_done else self.prefill_pool
                )
            if self.allocation.can_admit(head):
                self.waiting.pop(0)
                self.allocation.admit(head)
                # Record where the allocation landed: the pool picks the
                # least-loaded fitting device (always 0 on a single pool),
                # and the engine charges this sequence's attention tokens to
                # that device.  A preempted sequence may re-home on resume.
                head.home_device = self.block_manager.home_device(head.request.request_id)
                head.placement_epoch = self.placement_epoch
                head.admit(now)
                self.running.append(head)
                admitted.append(head)
                if tracer is not None:
                    # After allocation.admit, so the KV alloc/share event
                    # precedes the admit event it belongs to.
                    tracer.admit(head, now)
            elif self.config.admission == "reject" and head.preemptions == 0:
                self.waiting.pop(0)
                head.reject()
                self.rejected.append(head)
                if tracer is not None:
                    tracer.reject(head, now)
            else:
                # Queue mode (and previously-admitted preempted sequences in
                # either mode): keep FIFO order — do not skip the head to
                # admit a smaller request behind it (that is how starvation
                # starts).
                break
        if self.decode_pool is not None:
            # Leave the restriction on the prefill pool — the resting state
            # intake's ``fits_at_all`` and the engine's capacity checks see.
            self.block_manager.admit_devices = self.prefill_pool
        return admitted

    def ensure_capacity(self) -> list[Sequence]:
        """Secure KV blocks for every token the next iteration will append.

        Under reservation allocation this is a no-op.  Under on-demand
        allocation, running sequences are visited in precedence order; when
        the pool cannot cover a deficit, the scheduling policy picks victims
        from the lower-precedence tail of the batch, whose blocks are freed
        and who requeue for recompute-on-resume.  A victim that shares
        prefix blocks returns only its private ones (the policy therefore
        prefers low-sharing victims), so several preemptions may be needed
        to cover one deficit.  A sequence preempts *itself* only when no
        lower-precedence victim remains (it is the tail).

        Placement-awareness: a sequence's KV is pinned to its home device,
        so the deficit is measured against *that device's* free blocks and
        victims are drawn only from sequences homed there — preempting a
        sequence on another device frees blocks the grower can never use.
        On a single-device pool every home is 0 and this reduces exactly to
        the pre-sharding behavior.

        Returns the sequences preempted at this boundary.
        """
        if not self.allocation.grows or not self.running:
            return []
        preempted: list[Sequence] = []
        chunk = self.config.prefill_chunk
        for seq in sorted(self.running, key=self.policy.queue_key):
            if seq.state is not RequestState.RUNNING:
                continue  # already preempted at this boundary
            deficit = self.allocation.blocks_deficit(seq, chunk)
            home = seq.home_device
            while deficit > self.block_manager.free_blocks_on(home):
                candidates = [
                    s
                    for s in self.running
                    if s is not seq
                    and s.home_device == home
                    and self.policy.queue_key(s) > self.policy.queue_key(seq)
                ]
                victim = self.policy.select_victim(candidates, self.block_manager)
                if victim is None:
                    victim = seq  # tail of the batch: yield its own blocks
                self._preempt(victim)
                preempted.append(victim)
                if victim is seq:
                    deficit = 0
                    break
            if deficit > 0:
                self.allocation.grow(seq, deficit)
        return preempted

    def _preempt(self, victim: Sequence) -> None:
        """Reclaim a running sequence's blocks and requeue it.

        ``preempt_mode`` decides what happens to the victim's KV state:
        ``"recompute"`` discards it (prefill state resets, the resume pass
        re-prefills every token written so far); ``"swap"`` parks it in host
        memory — the sequence keeps its prefill state, and the engine prices
        the swap-in over :attr:`DeviceSpec.host_bandwidth` on re-admission.
        """
        if self.config.preempt_mode == "swap":
            swapped_blocks = self.block_manager.blocks_held(victim.request.request_id)
            self.allocation.release(victim)
            swapped = victim.swap_out()
            self.swaps += 1
            self.swapped_blocks += swapped_blocks
            self.preemptions += 1
            victim.requeue()
            self.running.remove(victim)
            self.waiting.push(victim)
            if self.tracer is not None:
                # After allocation.release: the KV free event precedes the
                # swap event, mirroring admission's alloc-then-admit order.
                self.tracer.swap_out(victim, swapped_blocks, swapped)
            return
        self.allocation.release(victim)
        recomputed = victim.preempt()
        self.recomputed_tokens += recomputed
        self.preemptions += 1
        victim.requeue()
        self.running.remove(victim)
        self.waiting.push(victim)
        if self.tracer is not None:
            # After allocation.release: the KV free event precedes the
            # preempt event, mirroring admission's alloc-then-admit order.
            self.tracer.preempt(victim, recomputed)

    def drain_stranded(self) -> list[Sequence]:
        """Move every still-waiting sequence to the ``stranded`` terminal state.

        Called by the engine when the run is over (no arrivals left, nothing
        running) but the waiting queue is not empty — which a conservative
        custom :class:`SchedulingPolicy` can cause.  Without this the
        sequences would vanish from the report and ``num_requests`` would
        undercount the submitted work.
        """
        tracer = self.tracer
        for seq in self.waiting:
            seq.strand()
            self.stranded.append(seq)
            if tracer is not None:
                tracer.strand(seq)
        self.waiting.clear()
        return self.stranded

    def evict_finished(self) -> list[Sequence]:
        """Remove finished sequences from the batch and free their KV blocks."""
        done: list[Sequence] = []
        still_running: list[Sequence] = []
        finished_state = RequestState.FINISHED
        for seq in self.running:
            (done if seq.state is finished_state else still_running).append(seq)
        release = self.allocation.release
        tracer = self.tracer
        if tracer is None:
            for seq in done:
                release(seq)
        else:
            for seq in done:
                # Finish event first, then the KV free it causes.
                tracer.finish(seq)
                release(seq)
        self.finished.extend(done)
        # In-place so engine-held aliases of ``running`` stay live.
        self.running[:] = still_running
        return done

    # -- queries -----------------------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    def batch_tokens(self) -> int:
        """Token rows the current batch contributes to the next iteration."""
        chunk = self.config.prefill_chunk
        return sum(seq.tokens_this_iteration(chunk) for seq in self.running)
