"""Simulated online serving on top of the Table 7 inference backends.

The paper's end-to-end evaluation stops at the latency of one decode step
per backend and batch size; this package turns those step latencies into a
request-level serving system so memory savings can be read as *serving
capacity*: a continuous-batching scheduler (iteration-level batching à la
Orca), a paged KV-cache block manager with reservation-based admission
control over the backend's leftover VRAM, and a deterministic discrete-event
clock whose service times are exactly the backends'
:meth:`~repro.runtime.backends.InferenceBackend.iteration_latency`.

Modules
-------
``request``
    :class:`Request` / :class:`Sequence` lifecycle and per-request metrics
    (TTFT, TPOT, end-to-end latency).
``kv_cache``
    Paged :class:`BlockManager` over the VRAM the quantized weights leave
    free.
``scheduler``
    :class:`ContinuousBatchingScheduler` — strict priority, FIFO within a
    class, no starvation, batch bounded by KV capacity.
``engine``
    :class:`ServingEngine` — the discrete-event loop and the
    :class:`ServingReport` with p50/p95 TTFT, TPOT and sustained QPS.
``workload``
    Seeded Poisson and replay-trace workload generators.
"""

from .engine import EngineConfig, ServingEngine, ServingReport
from .kv_cache import BlockManager, KVCacheExhausted, blocks_for_budget, kv_block_bytes
from .request import Request, RequestState, Sequence
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig
from .workload import poisson_workload, replay_workload

__all__ = [
    "Request",
    "RequestState",
    "Sequence",
    "BlockManager",
    "KVCacheExhausted",
    "kv_block_bytes",
    "blocks_for_budget",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "EngineConfig",
    "ServingEngine",
    "ServingReport",
    "poisson_workload",
    "replay_workload",
]
