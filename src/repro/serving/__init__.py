"""Simulated online serving on top of the Table 7 inference backends.

The paper's end-to-end evaluation stops at the latency of one decode step
per backend and batch size; this package turns those step latencies into a
request-level serving system so memory savings can be read as *serving
capacity*: a continuous-batching scheduler (iteration-level batching à la
Orca), a paged KV-cache block pool over the backend's leftover VRAM, and a
deterministic discrete-event clock whose service times are exactly the
backends' :meth:`~repro.runtime.backends.InferenceBackend.iteration_latency`.

Memory and scheduling decisions are *policies*, not hard-wired behavior:

* :class:`AllocationPolicy` decides when KV blocks are taken from the
  physical :class:`BlockManager` pool.  :class:`ReservationPolicy` (default)
  reserves a request's full ``prompt + max_new_tokens`` extent before
  admission — deterministic, never exhausts mid-decode.
  :class:`OnDemandPolicy` allocates blocks as tokens are written
  (vLLM-style), packing strictly more concurrent sequences into the same
  pool; on exhaustion the scheduler preempts the lowest-precedence running
  sequence, frees its blocks and requeues it for recompute-on-resume.
* :class:`SchedulingPolicy` decides who goes first: admission order
  (strict priority, FIFO within a class), batch formation, and
  preemption-victim selection (:class:`FifoPriorityPolicy` is the default;
  with prefix sharing it prefers victims holding few shared blocks, since
  preempting a sharer frees only its private blocks).
* Sarathi-style chunked prefill (``EngineConfig.prefill_chunk``) feeds at
  most N prompt tokens per iteration, piggybacked with decode tokens, so a
  long prompt does not stall the whole batch.
* Prefix sharing / copy-on-write: requests declaring a shared prompt prefix
  (``Request.prefix_id`` / ``prefix_tokens``) map resident prefix blocks
  read-only through the :class:`BlockManager` prefix index (refcounted
  block identity, CoW on the first divergent write) and skip the covered
  prefill compute; the report's ``prefix_cache`` section counts hits,
  shared blocks, CoW copies and the dedup ratio.
* Multi-GPU expert parallelism (``EngineConfig.devices > 1``): the KV pool
  becomes a :class:`ShardedBlockManager` (one per-device pool, sequences
  pinned to a least-loaded home device) and the routed experts are placed
  by an :class:`ExpertPlacement` from the :data:`PLACEMENT_POLICIES`
  registry (``balanced`` round-robin vs ``frequency`` Fig. 3 skew-aware
  packing); the iteration cost is the max over per-device costs plus an
  all-to-all dispatch term, and the report gains a ``cluster`` section.
  One device reduces to the single-device engine byte-for-byte.
* Overlap-aware layered cost model (``EngineConfig.overlap``): the
  iteration cost decomposes per MoE layer — each layer gets its own expert
  placement (:class:`LayeredExpertPlacement`, Fig. 3 skew differs by
  depth), its own max-over-devices compute term, and its all-to-all
  overlaps with the next layer's compute
  (:func:`~repro.serving.engine.overlap_step_seconds`, scaled by the
  device's ``overlap_efficiency``).  A :class:`RoutingDriftTracker` window
  optionally re-packs drifted layers at run time
  (``EngineConfig.replacement_threshold``), pricing moved expert weights
  over the interconnect (:func:`expert_migration_seconds`); the report
  gains an ``overlap`` section.  With ``overlap=False`` (default) the
  serial whole-model cost model is untouched, byte for byte.
* Disaggregated prefill/decode serving (``EngineConfig.prefill_devices`` /
  ``decode_devices``, ``milo serve --disagg P:D``): the device group splits
  into a prefill pool and a decode pool, each spanning the whole model with
  its own pool-local expert placement.  New requests prefill on the prefill
  pool; the iteration that completes prefill hands the sequence's KV blocks
  to the least-loaded decode device
  (:meth:`ShardedBlockManager.migrate`), priced per block over the
  interconnect and charged to the deterministic clock.  A load-triggered
  :meth:`SchedulingPolicy.select_rebalance` hook keeps the decode pool
  even, and ``EngineConfig.preempt_mode='swap'`` (:data:`PREEMPT_MODES`)
  turns preemption into swap-to-host: the victim's KV parks in host memory
  and is restored over ``DeviceSpec.host_bandwidth`` on re-admission, with
  the recompute-equivalent cost reported alongside for comparison.  The
  report gains a ``migration`` section; disaggregation off reduces to the
  colocated engine byte-for-byte.
* Opt-in observability (:mod:`repro.serving.telemetry`): a :class:`Tracer`
  records structured lifecycle spans (request phases, per-iteration device
  compute, KV block moves) and a :class:`MetricsRegistry` samples
  scheduler/KV gauges on a sim-time interval, both exportable as raw JSONL
  or Perfetto-loadable Chrome trace-event JSON
  (:func:`chrome_trace`) and summarized by ``milo analyze``.  Everything
  runs on the simulated clock (DET001-clean), the fast path and general
  loop emit byte-identical streams, and with telemetry disabled every hook
  sits behind one ``is not None`` test — reports stay byte-identical
  (goldens) at <5% overhead (``telemetry_overhead_frac`` benchmark gate).

Modules
-------
``request``
    :class:`Request` / :class:`Sequence` lifecycle (including the
    ``PREEMPTED`` state and recompute-on-resume) and per-request metrics
    (TTFT, TPOT, end-to-end latency).
``kv_cache``
    Physical paged :class:`BlockManager` pool — numbered blocks on a free
    list, per-sequence block tables, per-block refcounts, prefix index and
    copy-on-write — plus the :class:`AllocationPolicy` implementations over
    the VRAM the quantized weights leave free.
``scheduler``
    :class:`ContinuousBatchingScheduler` — composes an allocation policy
    with a :class:`SchedulingPolicy`; strict priority, FIFO within a class,
    no starvation, batch bounded by KV capacity, deficit-driven preemption.
``engine``
    :class:`ServingEngine` — the discrete-event loop and the
    :class:`ServingReport` with p50/p95 TTFT, TPOT, sustained QPS,
    preemption/recompute counters and peak KV utilization.
``workload``
    Seeded Poisson, replay-trace and JSONL trace-file workload loaders.
``cluster``
    :class:`DeviceGroup`, :class:`ExpertPlacement` policies and the
    :class:`ShardedBlockManager` per-device KV pools.
``telemetry``
    :class:`Tracer`, :class:`MetricsRegistry`, the Chrome trace-event
    exporter and the ``milo analyze`` trace summarizer.
"""

from .cluster import (
    PLACEMENT_POLICIES,
    BalancedPlacement,
    DeviceGroup,
    ExpertPlacement,
    FrequencyPlacement,
    LayeredExpertPlacement,
    RoutingDriftTracker,
    ShardedBlockManager,
    expert_migration_seconds,
    make_expert_placement,
    split_tokens,
)
from .engine import (
    EngineConfig,
    ServingEngine,
    ServingReport,
    expert_weight_fraction,
    overlap_step_seconds,
)
from .kv_cache import (
    ALLOCATION_POLICIES,
    AllocationPolicy,
    BlockManager,
    KVCacheExhausted,
    OnDemandPolicy,
    ReservationPolicy,
    blocks_for_budget,
    kv_block_bytes,
    make_allocation_policy,
)
from .request import Request, RequestState, Sequence
from .telemetry import (
    MetricsRegistry,
    Tracer,
    analyze_trace,
    chrome_trace,
    validate_chrome_trace,
)
from .scheduler import (
    ADMISSION_MODES,
    PREEMPT_MODES,
    ContinuousBatchingScheduler,
    FifoPriorityPolicy,
    SchedulerConfig,
    SchedulingPolicy,
)
from .workload import TraceSchemaError, load_trace, poisson_workload, replay_workload

__all__ = [
    "Request",
    "RequestState",
    "Sequence",
    "BlockManager",
    "KVCacheExhausted",
    "AllocationPolicy",
    "ReservationPolicy",
    "OnDemandPolicy",
    "ALLOCATION_POLICIES",
    "make_allocation_policy",
    "kv_block_bytes",
    "blocks_for_budget",
    "ContinuousBatchingScheduler",
    "SchedulingPolicy",
    "FifoPriorityPolicy",
    "ADMISSION_MODES",
    "PREEMPT_MODES",
    "SchedulerConfig",
    "EngineConfig",
    "ServingEngine",
    "ServingReport",
    "expert_weight_fraction",
    "DeviceGroup",
    "ExpertPlacement",
    "BalancedPlacement",
    "FrequencyPlacement",
    "LayeredExpertPlacement",
    "RoutingDriftTracker",
    "PLACEMENT_POLICIES",
    "make_expert_placement",
    "split_tokens",
    "ShardedBlockManager",
    "expert_migration_seconds",
    "overlap_step_seconds",
    "poisson_workload",
    "replay_workload",
    "load_trace",
    "TraceSchemaError",
    "Tracer",
    "MetricsRegistry",
    "analyze_trace",
    "chrome_trace",
    "validate_chrome_trace",
]
