"""Multi-GPU serving: device groups, expert placement, sharded KV pools.

Three layers turn the single-device serving engine into an expert-parallel
cluster (the first open ROADMAP item after PR 3):

* :class:`DeviceGroup` — N :class:`~repro.kernels.device.DeviceSpec`\\ s with
  stable per-device names (``gpu0`` … ``gpuN-1``).
* :class:`ExpertPlacement` — assigns the model's routed experts to devices.
  ``balanced`` round-robins expert ids; ``frequency`` packs experts onto
  devices greedily by activation frequency (longest-processing-time first),
  using the paper's Fig. 3 routing skew
  (:func:`repro.analysis.expert_frequency.fig3_reference_frequencies`) so hot
  experts are spread instead of colliding.  Policies live in the
  :data:`PLACEMENT_POLICIES` registry, mirroring
  :data:`~repro.serving.kv_cache.ALLOCATION_POLICIES`.
* :class:`ShardedBlockManager` — one physical
  :class:`~repro.serving.kv_cache.BlockManager` pool per device.  A
  sequence's KV is *pinned to its home device* (attention reads it every
  iteration; migrating it would be a cross-device copy the simulator charges
  nowhere), chosen at admission as the least-loaded device that fits.
  Prefix-shared blocks are resident *per device*: sharing only deduplicates
  within a pool, so a prefix group spanning homes stores one copy per device
  that hosts a member — exactly the replication a real paged allocator pays.

Why placement interacts with routing skew (paper Fig. 3): the engine's
iteration cost is the *max* over per-device costs, each driven by the token
load of that device's resident experts.  Under skewed routing, round-robin
placement concentrates hot experts and produces a straggler device every
iteration; frequency-aware placement evens the expert mass and shrinks the
critical path — the capacity/queueing tradeoff this PR measures instead of
assuming.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence as SequenceType

from ..kernels.device import DeviceSpec
from .kv_cache import BlockManager, KVCacheExhausted

__all__ = [
    "DeviceGroup",
    "ExpertPlacement",
    "BalancedPlacement",
    "FrequencyPlacement",
    "LayeredExpertPlacement",
    "RoutingDriftTracker",
    "PLACEMENT_POLICIES",
    "make_expert_placement",
    "expert_migration_seconds",
    "split_tokens",
    "ShardedBlockManager",
]


@dataclass(frozen=True)
class DeviceGroup:
    """An ordered group of accelerators serving one model expert-parallel."""

    devices: tuple[DeviceSpec, ...]

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a DeviceGroup needs at least one device")

    @classmethod
    def replicate(cls, device: DeviceSpec, count: int) -> "DeviceGroup":
        """A homogeneous group of ``count`` copies of one device spec."""
        if count <= 0:
            raise ValueError("device count must be positive")
        return cls(devices=tuple(device for _ in range(count)))

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def names(self) -> tuple[str, ...]:
        """Stable per-device names (``gpu0`` … ``gpuN-1``)."""
        return tuple(f"gpu{i}" for i in range(len(self.devices)))

    @property
    def total_memory_gb(self) -> float:
        return sum(d.memory_gb for d in self.devices)


class ExpertPlacement(abc.ABC):
    """Maps each routed expert (same layout every layer) to a device.

    Instances are built from the per-expert activation frequencies (Fig. 3)
    and expose the resulting ``assignment`` plus the per-device *mass* — the
    fraction of routed tokens each device's resident experts attract — which
    the engine uses to split every iteration's token load.
    """

    #: Name surfaced in the serving report and on the CLI.
    name: str = "abstract"

    def __init__(self, frequencies: SequenceType[float], num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        # len() rather than truthiness: numpy arrays (the natural output of
        # fig3_reference_frequencies / ExpertFrequencyProfile) are ambiguous.
        if len(frequencies) == 0:
            raise ValueError("frequencies must be non-empty")
        if any(f < 0 for f in frequencies):
            raise ValueError("frequencies must be non-negative")
        total = float(sum(frequencies))
        if total <= 0:
            raise ValueError("frequencies must sum to a positive value")
        self.num_devices = num_devices
        #: Normalized activation frequency per expert (sums to 1).
        self.frequencies = tuple(float(f) / total for f in frequencies)
        #: Device index per expert id.
        self.assignment: tuple[int, ...] = tuple(self._assign())
        mass = [0.0] * num_devices
        for expert, device in enumerate(self.assignment):
            if not 0 <= device < num_devices:
                raise ValueError(
                    f"{self.name} placement put expert {expert} on device {device}, "
                    f"outside [0, {num_devices})"
                )
            mass[device] += self.frequencies[expert]
        #: Fraction of routed tokens attracted by each device's experts.
        self.device_mass: tuple[float, ...] = tuple(mass)

    @abc.abstractmethod
    def _assign(self) -> list[int]:
        """Device index per expert id, in expert-id order."""

    def experts_on(self, device: int) -> int:
        """Number of routed experts resident on ``device``."""
        return sum(1 for d in self.assignment if d == device)

    @property
    def load_imbalance(self) -> float:
        """Max device mass over the perfectly-even mass (1.0 = balanced)."""
        return max(self.device_mass) * self.num_devices


class BalancedPlacement(ExpertPlacement):
    """Round-robin by expert id — even *counts*, frequency-blind.

    Under skewed routing the count-balanced layout is mass-imbalanced:
    whichever residue class the hot experts fall into becomes the straggler
    device, every iteration.
    """

    name = "balanced"

    def _assign(self) -> list[int]:
        return [e % self.num_devices for e in range(len(self.frequencies))]


class FrequencyPlacement(ExpertPlacement):
    """Greedy frequency-aware packing (longest-processing-time first).

    Experts are placed in decreasing activation frequency onto the device
    with the least accumulated mass (ties: lowest device index).  LPT is the
    classic 4/3-approximation to makespan scheduling, which is exactly what
    the engine's max-over-devices iteration cost computes.
    """

    name = "frequency"

    def _assign(self) -> list[int]:
        assignment = [0] * len(self.frequencies)
        mass = [0.0] * self.num_devices
        order = sorted(
            range(len(self.frequencies)), key=lambda e: (-self.frequencies[e], e)
        )
        for expert in order:
            device = min(range(self.num_devices), key=lambda d: (mass[d], d))
            assignment[expert] = device
            mass[device] += self.frequencies[expert]
        return assignment


#: CLI-selectable expert placement policies, keyed by report/CLI name.
PLACEMENT_POLICIES: dict[str, type[ExpertPlacement]] = {
    BalancedPlacement.name: BalancedPlacement,
    FrequencyPlacement.name: FrequencyPlacement,
}


class LayeredExpertPlacement:
    """Per-layer expert placements for the overlap-aware layered cost model.

    The paper's Fig. 3 heatmap shows routing skew *differs by layer* — which
    expert is hot, and how hot, changes with depth — so a single whole-model
    :class:`ExpertPlacement` is the wrong layout for most layers.  This
    container keeps one expert→device assignment per MoE layer, all seeded
    from the offline profile's placement (``base``, what a single-distribution
    profiling pass yields), and evaluates each layer's *effective* device
    mass under that layer's true routing frequencies (``layer_frequencies``).
    The gap between the two is exactly what the engine's drift detector
    measures and :meth:`repack_drifted` closes at run time.
    """

    def __init__(
        self,
        base: ExpertPlacement,
        layer_frequencies: SequenceType[SequenceType[float]],
    ) -> None:
        if len(layer_frequencies) == 0:
            raise ValueError("layer_frequencies must have one row per MoE layer")
        num_experts = len(base.frequencies)
        rows: list[tuple[float, ...]] = []
        for layer, row in enumerate(layer_frequencies):
            if len(row) != num_experts:
                raise ValueError(
                    f"layer {layer} has {len(row)} expert frequencies, "
                    f"expected {num_experts}"
                )
            total = float(sum(row))
            if total <= 0 or any(f < 0 for f in row):
                raise ValueError(
                    f"layer {layer} frequencies must be non-negative with a "
                    f"positive sum"
                )
            rows.append(tuple(float(f) / total for f in row))
        self.num_devices = base.num_devices
        #: Placement policy the per-layer assignments were seeded from.
        self.name = base.name
        #: True per-layer routing frequencies (normalized rows).
        self.layer_frequencies: tuple[tuple[float, ...], ...] = tuple(rows)
        #: Expert→device assignment per layer (seeded from the profile-built
        #: base placement, re-packed per layer as drift is detected).
        self.assignments: list[tuple[int, ...]] = [base.assignment] * len(rows)
        #: Frequencies each layer's current assignment was packed for — the
        #: drift baseline (the offline profile until the first re-placement).
        self.packed_from: list[tuple[float, ...]] = [base.frequencies] * len(rows)
        self._recompute_mass()

    @property
    def num_layers(self) -> int:
        return len(self.layer_frequencies)

    def _recompute_mass(self) -> None:
        masses: list[tuple[float, ...]] = []
        for assignment, truth in zip(self.assignments, self.layer_frequencies):
            mass = [0.0] * self.num_devices
            for expert, device in enumerate(assignment):
                mass[device] += truth[expert]
            masses.append(tuple(mass))
        #: Fraction of this layer's routed tokens each device attracts under
        #: the layer's *true* frequencies (not the profile the assignment was
        #: packed for) — the engine splits every layer's token load by this.
        self.layer_mass: tuple[tuple[float, ...], ...] = tuple(masses)

    def layer_load_imbalance(self, layer: int) -> float:
        """Max device mass of one layer over the perfectly-even mass."""
        return max(self.layer_mass[layer]) * self.num_devices

    def repack_drifted(
        self,
        measured: SequenceType[SequenceType[float]],
        threshold: float,
    ) -> int:
        """Re-run LPT packing for layers whose routing drifted past ``threshold``.

        ``measured`` holds one normalized frequency row per layer (from a
        :class:`RoutingDriftTracker` window).  A layer is re-packed when the
        total-variation distance between its measured frequencies and the
        frequencies its current assignment was packed for exceeds
        ``threshold``.  Returns the number of ``(layer, expert)`` weight
        shards that changed device — the unit the engine prices migration in.
        Layers that drifted but repack to the identical assignment update
        their baseline without counting moves.
        """
        if len(measured) != self.num_layers:
            raise ValueError(
                f"measured has {len(measured)} rows, expected {self.num_layers}"
            )
        moved = 0
        for layer, row in enumerate(measured):
            baseline = self.packed_from[layer]
            drift = 0.5 * sum(abs(m - p) for m, p in zip(row, baseline))
            if drift <= threshold:
                continue
            new_assignment = FrequencyPlacement(row, self.num_devices).assignment
            moved += sum(
                1 for a, b in zip(new_assignment, self.assignments[layer]) if a != b
            )
            self.assignments[layer] = new_assignment
            self.packed_from[layer] = tuple(row)
        if moved:
            self._recompute_mass()
        return moved


class RoutingDriftTracker:
    """Sliding window of measured per-layer routing, for dynamic re-placement.

    The engine feeds it the batch token count at every iteration whose batch
    composition changed; after ``window`` observations the accumulated
    per-layer expert token counts are normalized into measured frequencies
    and compared (by the engine, via
    :meth:`LayeredExpertPlacement.repack_drifted`) against the frequencies
    the current placements were packed for.  The simulator's router is
    deterministic — each observed batch routes its tokens in expectation, so
    the counts are ``tokens × layer frequency`` — but the window/normalize
    machinery is exactly what a counter-based production drift detector runs
    on sampled router statistics.
    """

    def __init__(
        self,
        layer_frequencies: SequenceType[SequenceType[float]],
        window: int = 64,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if len(layer_frequencies) == 0:
            raise ValueError("layer_frequencies must be non-empty")
        self.window = window
        self._layer_frequencies = tuple(tuple(row) for row in layer_frequencies)
        self._observed_tokens = 0
        self._observations = 0

    @property
    def window_full(self) -> bool:
        return self._observations >= self.window

    def observe(self, tokens: int) -> None:
        """Record one batch's routed token counts (``tokens`` ≥ 1)."""
        self._observed_tokens += tokens
        self._observations += 1

    def measured(self) -> list[tuple[float, ...]]:
        """Normalized per-layer frequencies of the window's counts."""
        if self._observed_tokens <= 0:
            raise ValueError("no tokens observed in the current window")
        # counts[layer][e] = observed_tokens * freq[layer][e]; normalizing
        # divides the scalar back out, leaving the per-layer frequencies.
        return [tuple(row) for row in self._layer_frequencies]

    def reset(self) -> None:
        """Start a fresh window (called after each drift decision)."""
        self._observed_tokens = 0
        self._observations = 0


def expert_migration_seconds(
    moved: int, bytes_per_expert_layer: float, interconnect_bandwidth: float
) -> float:
    """Time to move ``moved`` per-layer expert weight shards between devices.

    Dynamic re-placement is not free: every ``(layer, expert)`` shard that
    changes device crosses the interconnect once.  The engine adds this to
    the simulated clock at the iteration the re-placement triggers — the
    capacity/queueing cost that makes the replacement threshold a real
    tradeoff instead of a free knob.
    """
    if moved < 0:
        raise ValueError("moved must be non-negative")
    if interconnect_bandwidth <= 0:
        raise ValueError("interconnect_bandwidth must be positive")
    return moved * bytes_per_expert_layer / interconnect_bandwidth


def make_expert_placement(
    name: str, frequencies: SequenceType[float], num_devices: int
) -> ExpertPlacement:
    """Instantiate a named placement policy over expert frequencies."""
    try:
        placement_cls = PLACEMENT_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown expert placement {name!r}; known: {sorted(PLACEMENT_POLICIES)}"
        ) from None
    return placement_cls(frequencies, num_devices)


def split_tokens(total: int, shares: SequenceType[float]) -> list[int]:
    """Apportion ``total`` tokens over devices by share (largest remainder).

    Deterministic: exact quotas are floored, then the leftover tokens go to
    the devices with the largest fractional parts (ties: lowest index).  The
    result always sums to ``total``; with one device it is ``[total]``
    exactly, which keeps the single-device engine bit-for-bit.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if len(shares) == 1 and shares[0] == 1.0:
        # Single device owns everything: skip the float apportioning (the
        # general path floors float(total) back to total with remainder 0).
        return [total]
    quotas = [total * share for share in shares]
    floors = [int(q) for q in quotas]
    remainder = total - sum(floors)
    order = sorted(range(len(shares)), key=lambda d: (floors[d] - quotas[d], d))
    for d in order[:remainder]:
        floors[d] += 1
    return floors


class ShardedBlockManager:
    """Per-device KV block pools behind the single-pool interface.

    Presents the :class:`~repro.serving.kv_cache.BlockManager` surface the
    allocation policies and scheduler already speak, routing every
    per-sequence operation to the sequence's *home* pool.  Admission picks
    the home device: the least-loaded device (most free blocks, ties by
    index) among those with room — or, for prefix-carrying requests, the
    device with the most resident prefix blocks first, so sharers co-locate
    with their prefix instead of replicating it.

    Aggregate queries (``used_blocks``, ``free_blocks``, sharing stats) sum
    over pools; per-device queries carry an ``_on(device)`` suffix.  The
    scheduler's preemption math must use the per-device forms: freeing
    blocks on another device can never cover a deficit on this one.
    """

    def __init__(
        self,
        pools: SequenceType[BlockManager],
        device_names: SequenceType[str] | None = None,
    ) -> None:
        if not pools:
            raise ValueError("ShardedBlockManager needs at least one pool")
        block_sizes = {pool.block_size for pool in pools}
        if len(block_sizes) != 1:
            raise ValueError(f"pools disagree on block_size: {sorted(block_sizes)}")
        self.pools: list[BlockManager] = list(pools)
        for d, pool in enumerate(self.pools):
            # Telemetry KV events emitted by a pool carry its device index.
            pool.device_index = d
        self.block_size = self.pools[0].block_size
        if device_names is None:
            device_names = tuple(f"gpu{i}" for i in range(len(self.pools)))
        if len(device_names) != len(self.pools):
            raise ValueError("device_names must match the number of pools")
        self.device_names = tuple(device_names)
        #: seq_id -> device index of the pool holding its blocks.
        self._home: dict[int, int] = {}
        #: Restrict *new* admissions (home selection and the intake
        #: ``fits_at_all`` check) to these device indices; ``None`` (default)
        #: considers every pool.  The disaggregated engine points this at the
        #: prefill pool — or the decode pool while re-admitting a swapped-out
        #: decode-phase sequence — and :meth:`migrate` is how blocks cross the
        #: boundary afterwards.  Sequences already resident are unaffected.
        self.admit_devices: tuple[int, ...] | None = None
        #: Cumulative :meth:`migrate` calls / blocks moved (see ``reset_stats``).
        self.migrations = 0
        self.migrated_blocks = 0

    def _admissible(self) -> range | tuple[int, ...]:
        return range(len(self.pools)) if self.admit_devices is None else self.admit_devices

    # -- home selection ----------------------------------------------------------
    def _fitting_devices(self, needed_blocks: int) -> list[int]:
        return [
            d for d in self._admissible() if needed_blocks <= self.pools[d].free_blocks
        ]

    def _pick_home(self, num_tokens: int) -> int | None:
        """Least-loaded device (most free blocks, ties by index) that fits."""
        needed = self.blocks_needed(num_tokens)
        fitting = self._fitting_devices(needed)
        if not fitting:
            return None
        return max(fitting, key=lambda d: (self.pools[d].free_blocks, -d))

    def _pick_shared_home(
        self, num_tokens: int, prefix_id: int, prefix_tokens: int, share_partial: bool
    ) -> int | None:
        """Most resident prefix hits first, then least-loaded, then index."""
        best: tuple[int, int, int] | None = None
        choice: int | None = None
        for d in self._admissible():
            pool = self.pools[d]
            if not pool.can_allocate_shared(
                num_tokens, prefix_id, prefix_tokens, share_partial
            ):
                continue
            hits = pool.prefix_hits(prefix_id, prefix_tokens, share_partial)
            key = (hits, pool.free_blocks, -d)
            if best is None or key > best:
                best = key
                choice = d
        return choice

    def _home_pool(self, seq_id: int) -> BlockManager:
        device = self._home.get(seq_id)
        if device is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks on any device")
        return self.pools[device]

    def home_device(self, seq_id: int) -> int:
        """Device index of the pool holding this sequence's KV."""
        device = self._home.get(seq_id)
        if device is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks on any device")
        return device

    # -- aggregate queries (BlockManager surface) ---------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.pools)

    @property
    def num_blocks(self) -> int:
        return sum(pool.num_blocks for pool in self.pools)

    @property
    def used_blocks(self) -> int:
        return sum(pool.used_blocks for pool in self.pools)

    @property
    def free_blocks(self) -> int:
        return sum(pool.free_blocks for pool in self.pools)

    @property
    def shared_blocks(self) -> int:
        return sum(pool.shared_blocks for pool in self.pools)

    @property
    def outstanding_sequences(self) -> int:
        return len(self._home)

    @property
    def physical_allocs(self) -> int:
        return sum(pool.physical_allocs for pool in self.pools)

    @property
    def prefix_hit_blocks(self) -> int:
        return sum(pool.prefix_hit_blocks for pool in self.pools)

    @property
    def prefix_hit_tokens(self) -> int:
        return sum(pool.prefix_hit_tokens for pool in self.pools)

    @property
    def cow_copies(self) -> int:
        return sum(pool.cow_copies for pool in self.pools)

    def num_blocks_on(self, device: int) -> int:
        return self.pools[device].num_blocks

    def used_blocks_on(self, device: int) -> int:
        return self.pools[device].used_blocks

    def free_blocks_on(self, device: int) -> int:
        """Free blocks of one device's pool (the preemption-deficit bound)."""
        return self.pools[device].free_blocks

    def blocks_needed(self, num_tokens: int) -> int:
        return self.pools[0].blocks_needed(num_tokens)

    def blocks_held(self, seq_id: int) -> int:
        device = self._home.get(seq_id)
        return self.pools[device].blocks_held(seq_id) if device is not None else 0

    def shared_blocks_held(self, seq_id: int) -> int:
        device = self._home.get(seq_id)
        return self.pools[device].shared_blocks_held(seq_id) if device is not None else 0

    def block_table(self, seq_id: int) -> tuple[int, ...]:
        device = self._home.get(seq_id)
        return self.pools[device].block_table(seq_id) if device is not None else ()

    def fits_at_all(self, num_tokens: int) -> bool:
        """A sequence must fit one *single* device's empty pool (KV is pinned).

        The pools' summed capacity is irrelevant: a block table can never
        span devices, so a request larger than every individual pool can
        never run even on an idle cluster.  Under an :attr:`admit_devices`
        restriction only the admissible pools count — a request that fits no
        admission-pool device can never be admitted.
        """
        return any(self.pools[d].fits_at_all(num_tokens) for d in self._admissible())

    def max_sequences(self, tokens_per_sequence: int) -> int:
        """Concurrent sequences of one length an empty *cluster* sustains."""
        return sum(pool.max_sequences(tokens_per_sequence) for pool in self.pools)

    def can_allocate(self, num_tokens: int) -> bool:
        return self._pick_home(num_tokens) is not None

    def can_allocate_shared(
        self,
        num_tokens: int,
        prefix_id: int,
        prefix_tokens: int,
        share_partial: bool = False,
    ) -> bool:
        return (
            self._pick_shared_home(num_tokens, prefix_id, prefix_tokens, share_partial)
            is not None
        )

    # -- mutations ----------------------------------------------------------------
    def allocate(self, seq_id: int, num_tokens: int) -> int:
        if seq_id in self._home:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        device = self._pick_home(num_tokens)
        if device is None:
            raise KVCacheExhausted(
                f"no device can hold {self.blocks_needed(num_tokens)} blocks for "
                f"sequence {seq_id} (free per device: "
                f"{[pool.free_blocks for pool in self.pools]})"
            )
        taken = self.pools[device].allocate(seq_id, num_tokens)
        self._home[seq_id] = device
        return taken

    def allocate_shared(
        self,
        seq_id: int,
        num_tokens: int,
        prefix_id: int,
        prefix_tokens: int,
        share_partial: bool = False,
    ) -> tuple[int, int]:
        if seq_id in self._home:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        device = self._pick_shared_home(
            num_tokens, prefix_id, prefix_tokens, share_partial
        )
        if device is None:
            raise KVCacheExhausted(
                f"no device can admit sequence {seq_id} "
                f"({self.blocks_needed(num_tokens)} blocks after prefix hits)"
            )
        result = self.pools[device].allocate_shared(
            seq_id, num_tokens, prefix_id, prefix_tokens, share_partial
        )
        self._home[seq_id] = device
        return result

    def grow(self, seq_id: int, num_blocks: int) -> int:
        return self._home_pool(seq_id).grow(seq_id, num_blocks)

    def cow_cost(self, seq_id: int, token_index: int) -> int:
        return self._home_pool(seq_id).cow_cost(seq_id, token_index)

    def ensure_writable(self, seq_id: int, token_index: int) -> int:
        return self._home_pool(seq_id).ensure_writable(seq_id, token_index)

    def free(self, seq_id: int) -> int:
        device = self._home.pop(seq_id, None)
        if device is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks on any device")
        return self.pools[device].free(seq_id)

    def migrate(self, seq_id: int, src: int, dst: int) -> int:
        """Bulk-move a sequence's KV blocks from device ``src`` to ``dst``.

        The disaggregated engine's prefill→decode handoff and the decode-pool
        rebalancer both land here.  The destination pool materializes the
        same number of *private* blocks the sequence held on the source, then
        the source table is released through the ordinary refcounted path —
        so shared prefix blocks merely drop one reference (their residency on
        the source, and every other holder's table, is untouched), while the
        migrant's copies on the destination are private (block identity never
        spans devices).  Raises :class:`KVCacheExhausted` if the destination
        cannot hold the table; the manager state is unchanged in that case.
        Returns the number of blocks now held on ``dst``.
        """
        if self._home.get(seq_id) != src:
            raise KVCacheExhausted(
                f"sequence {seq_id} is not resident on device {src} "
                f"(home: {self._home.get(seq_id)})"
            )
        if dst < 0 or dst >= len(self.pools):
            raise KVCacheExhausted(f"no device {dst} in a {len(self.pools)}-pool cluster")
        if dst == src:
            return self.pools[src].blocks_held(seq_id)
        blocks = self.pools[src].blocks_held(seq_id)
        # Adopt-then-free: the transfer is priced by the caller, and a
        # destination that cannot fit must leave the source table intact.
        self.pools[dst].adopt(seq_id, blocks)
        self.pools[src].free(seq_id)
        self._home[seq_id] = dst
        self.migrations += 1
        self.migrated_blocks += blocks
        return blocks

    # -- stats / invariants -------------------------------------------------------
    def reset_stats(self) -> None:
        self.migrations = 0
        self.migrated_blocks = 0
        for pool in self.pools:
            pool.reset_stats()

    def assert_no_leaks(self) -> None:
        if self._home:
            held = ", ".join(
                f"{seq}@{self.device_names[d]}" for seq, d in sorted(self._home.items())
            )
            raise KVCacheExhausted(f"KV blocks leaked by sequences: {held}")
        for pool in self.pools:
            pool.assert_no_leaks()
        self.check_invariants()

    def check_invariants(self) -> None:
        """Per-pool structural checks plus the cross-device partition.

        Every sequence's block table must live in exactly its home pool and
        nowhere else, and every table in any pool must belong to a sequence
        homed there — i.e. the per-device pools partition the cluster's KV
        state cleanly, with no table referencing blocks outside its home.
        """
        for pool in self.pools:
            pool.check_invariants()
        seen: dict[int, int] = {}
        for d, pool in enumerate(self.pools):
            for seq_id in pool.sequences():
                if seq_id in seen:
                    raise KVCacheExhausted(
                        f"sequence {seq_id} holds blocks on both "
                        f"{self.device_names[seen[seq_id]]} and {self.device_names[d]}"
                    )
                seen[seq_id] = d
        if seen != self._home:
            raise KVCacheExhausted(
                f"home map disagrees with pool residency: homes={self._home}, "
                f"resident={seen}"
            )
