"""Chrome trace-event export and validation.

:func:`chrome_trace` converts a :class:`~repro.serving.telemetry.Tracer`
(and optionally a :class:`~repro.serving.telemetry.MetricsRegistry`) into
the Chrome trace-event JSON object format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* pid 0 is the simulator process; tid 0 is the *requests* track and tids
  1..D carry one track per device (named from the tracer's ``meta``).
* Every engine iteration becomes one complete-slice (``ph: "X"``) per
  device with the device's compute seconds as the duration (single-device
  runs use the full iteration span); sim seconds are exported as
  microseconds (``ts``/``dur`` floats), so one sim second reads as 1 s in
  the viewer.
* Each request becomes async begin/end pairs (``ph: "b"``/``"e"``,
  ``cat: "request"``) for its ``queued``, ``prefill``, and ``decode``
  phases on the requests track.
* Metrics samples become counter events (``ph: "C"``) for batch size,
  waiting depth, free KV blocks, and KV utilization.

The export embeds the raw event stream and samples under a top-level
``"milo"`` key — viewers ignore unknown top-level keys, and
:func:`~repro.serving.telemetry.analyze.load_trace_file` reads the exact
floats back from it, so a ``.trace.json`` file is self-contained for both
visualisation and ``milo analyze``.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry
from .tracer import TRACE_SCHEMA, Tracer

__all__ = ["chrome_trace", "validate_chrome_trace"]

_US = 1e6  # sim seconds -> trace microseconds


def _meta_event(name: str, pid: int, tid: int | None, value: str) -> dict[str, Any]:
    event: dict[str, Any] = {
        "ph": "M",
        "name": name,
        "pid": pid,
        "args": {"name": value},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _async_event(
    ph: str, phase: str, req: int, t: float, pid: int = 0, tid: int = 0
) -> dict[str, Any]:
    return {
        "ph": ph,
        "name": phase,
        "cat": "request",
        "id": req,
        "pid": pid,
        "tid": tid,
        "ts": t * _US,
    }


def chrome_trace(
    tracer: Tracer, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Build a Chrome trace-event JSON object from a completed run's tracer."""
    meta = tracer.meta
    device_names = meta.get("devices") or ["gpu0"]
    num_devices = len(device_names)

    events: list[dict[str, Any]] = [
        _meta_event("process_name", 0, None, str(meta.get("name", "milo serving sim"))),
        _meta_event("thread_name", 0, 0, "requests"),
    ]
    for d, device in enumerate(device_names):
        events.append(_meta_event("thread_name", 0, d + 1, str(device)))

    # Current lifecycle phase per request, so preemption can close whichever
    # span is open (a victim may be preempted mid-prefill or mid-decode) and
    # re-open its queued span.
    phase_of: dict[int, str] = {}

    for event in tracer.events:
        kind = event["kind"]
        if kind == "iter":
            t0 = event["t0"]
            args = {
                "iteration": event["i"],
                "tokens": event["tokens"],
                "batch": event["batch"],
            }
            compute = event.get("compute")
            if compute is None:
                events.append(
                    {
                        "ph": "X",
                        "name": "iteration",
                        "pid": 0,
                        "tid": 1,
                        "ts": t0 * _US,
                        "dur": (event["t1"] - t0) * _US,
                        "args": args,
                    }
                )
            else:
                for d, compute_s in enumerate(compute):
                    events.append(
                        {
                            "ph": "X",
                            "name": "iteration",
                            "pid": 0,
                            "tid": d + 1,
                            "ts": t0 * _US,
                            "dur": compute_s * _US,
                            "args": args,
                        }
                    )
        elif kind == "submit":
            events.append(_async_event("b", "queued", event["req"], event["t"]))
            phase_of[event["req"]] = "queued"
        elif kind == "admit":
            events.append(_async_event("e", "queued", event["req"], event["t"]))
            events.append(_async_event("b", "prefill", event["req"], event["t"]))
            phase_of[event["req"]] = "prefill"
        elif kind == "first_token":
            events.append(_async_event("e", "prefill", event["req"], event["t"]))
            events.append(_async_event("b", "decode", event["req"], event["t"]))
            phase_of[event["req"]] = "decode"
        elif kind == "finish":
            events.append(_async_event("e", "decode", event["req"], event["t"]))
            phase_of.pop(event["req"], None)
        elif kind == "preempt":
            open_phase = phase_of.get(event["req"], "prefill")
            events.append(_async_event("e", open_phase, event["req"], event["t"]))
            events.append(_async_event("b", "queued", event["req"], event["t"]))
            phase_of[event["req"]] = "queued"
        elif kind == "swap" and event["op"] == "out":
            # Swap-out is the swap-mode preemption: close the open phase and
            # reopen the queued span (the re-admission's admit event opens
            # prefill again; a decode-phase resume just leaves it empty).
            open_phase = phase_of.get(event["req"], "prefill")
            events.append(_async_event("e", open_phase, event["req"], event["t"]))
            events.append(_async_event("b", "queued", event["req"], event["t"]))
            phase_of[event["req"]] = "queued"
        elif kind == "swap":  # op == "in": the PCIe restore stall
            events.append(
                {
                    "ph": "X",
                    "name": "swap_in",
                    "pid": 0,
                    "tid": 0,
                    "ts": event["t0"] * _US,
                    "dur": event["s"] * _US,
                    "args": {"req": event["req"], "blocks": event["blocks"]},
                }
            )
        elif kind == "handoff" or kind == "migrate":
            # KV transfer slice on the *destination* device's track.
            events.append(
                {
                    "ph": "X",
                    "name": kind,
                    "pid": 0,
                    "tid": event["dst"] + 1,
                    "ts": event["t0"] * _US,
                    "dur": event["s"] * _US,
                    "args": {
                        "req": event["req"],
                        "src": event["src"],
                        "dst": event["dst"],
                        "blocks": event["blocks"],
                    },
                }
            )
        elif kind == "reject" or kind == "strand":
            if phase_of.pop(event["req"], None) == "queued":
                events.append(_async_event("e", "queued", event["req"], event["t"]))

    samples = metrics.samples if metrics is not None else []
    for row in samples:
        ts = row["t"] * _US
        for counter in ("batch", "waiting", "free_blocks", "kv_utilization"):
            events.append(
                {
                    "ph": "C",
                    "name": counter,
                    "pid": 0,
                    "ts": ts,
                    "args": {counter: row[counter]},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "sim_devices": num_devices},
        # Raw exact-float stream for `milo analyze`; trace viewers ignore
        # unknown top-level keys.
        "milo": {
            "schema": TRACE_SCHEMA,
            "meta": meta,
            "events": tracer.events,
            "samples": samples,
        },
    }


def validate_chrome_trace(obj: Any) -> None:
    """Raise ``ValueError`` unless *obj* is a well-formed trace-event object.

    Checks the JSON Object Format rules each event phase requires:
    complete slices need a non-negative ``dur``, async events need ``id``
    and ``cat``, counters need numeric ``args``, metadata events need a
    recognised name.  Used by the CI trace-artifact gate.
    """
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for idx, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {idx}: not an object")
        ph = event.get("ph")
        if not isinstance(ph, str):
            raise ValueError(f"event {idx}: missing ph")
        if ph != "M":
            if not isinstance(event.get("name"), str):
                raise ValueError(f"event {idx}: missing name")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                raise ValueError(f"event {idx}: ts must be a number")
            if ts < 0:
                raise ValueError(f"event {idx}: negative ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                raise ValueError(f"event {idx}: complete slice needs numeric dur")
            if dur < 0:
                raise ValueError(f"event {idx}: negative dur")
        elif ph in ("b", "e", "n"):
            if "id" not in event:
                raise ValueError(f"event {idx}: async event needs id")
            if not isinstance(event.get("cat"), str):
                raise ValueError(f"event {idx}: async event needs cat")
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"event {idx}: counter needs args")
            for key, value in args.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(
                        f"event {idx}: counter arg {key!r} must be numeric"
                    )
        elif ph == "M":
            if event.get("name") not in (
                "process_name",
                "process_labels",
                "process_sort_index",
                "thread_name",
                "thread_sort_index",
            ):
                raise ValueError(f"event {idx}: unknown metadata name")
        elif ph not in ("B", "E", "i", "s", "t", "f"):
            raise ValueError(f"event {idx}: unknown phase {ph!r}")
