"""Opt-in, deterministic observability for the serving simulator.

Everything here runs on the engine's *simulated* clock — no wall time, no
randomness (DET001-clean) — so traces are as reproducible as the reports:
the same (backend, workload, config) triple always yields byte-identical
trace and metrics files, and the fast path emits the same stream as the
general loop.

Modules
-------
``tracer``    :class:`Tracer` — structured lifecycle event stream
              (request phases, per-iteration device compute, KV moves).
``metrics``   :class:`MetricsRegistry` — fixed sim-interval gauge sampling
              (batch size, queue depth, free blocks, KV utilization).
``export``    :func:`chrome_trace` / :func:`validate_chrome_trace` —
              Perfetto-loadable Chrome trace-event JSON.
``analyze``   :func:`analyze_trace` / :func:`load_trace_file` — queueing
              breakdown, per-device busy/straggler attribution, KV
              pressure; reconciles exactly with the run's JSON report.

Usage::

    engine = ServingEngine(spec, backend, config=config)
    tracer, metrics = Tracer(), MetricsRegistry(interval=0.5)
    engine.enable_telemetry(tracer=tracer, metrics=metrics)
    report = engine.run(requests)
    tracer.write_jsonl("run.jsonl")
    json.dump(chrome_trace(tracer, metrics), open("run.trace.json", "w"))

or from the CLI: ``milo serve ... --trace-events run.trace.json
--metrics-out run.metrics.jsonl`` then ``milo analyze run.trace.json``.

Telemetry is off by default and every hook in the hot loops is guarded by
a ``tracer is not None`` / ``metrics is not None`` check (enforced by lint
rule OBS001), so the disabled path stays byte-identical and allocation
free.
"""

from .analyze import analyze_trace, load_metrics_file, load_trace_file
from .export import chrome_trace, validate_chrome_trace
from .metrics import METRICS_SCHEMA, MetricsRegistry
from .tracer import TRACE_SCHEMA, Tracer

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "Tracer",
    "analyze_trace",
    "chrome_trace",
    "load_metrics_file",
    "load_trace_file",
    "validate_chrome_trace",
]
