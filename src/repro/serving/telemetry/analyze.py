"""Post-hoc trace analysis: queueing breakdown, device attribution, KV pressure.

:func:`analyze_trace` walks a raw event stream (from a
:class:`~repro.serving.telemetry.Tracer` or loaded back from disk with
:func:`load_trace_file`) and produces a summary that *reconciles exactly*
with the run's JSON report: latency summaries are accumulated in the same
(finish-event) order the engine uses, and per-device compute/straggler
totals sum the identical floats the engine's cost model emitted, so
``ttft_s``/``e2e_s`` match the report float-for-float and
``straggler_ratio`` matches to well under 1e-9
(``tests/serving/test_telemetry.py`` pins this).

Summary layout::

    sim_time_s            last iteration end
    iterations            number of iter events
    requests: {submitted, finished, rejected, preempted_requests, stranded}
    phases:               total and mean seconds per lifecycle phase
        queued / prefill / decode: {total_s, mean_s, share}
                          (share = fraction of summed phase time)
    ttft_s / tpot_s / e2e_s   p50/p95/mean/max summaries (finish order)
    devices: [{device, busy_s, busy_frac}]   busy_frac over sim_time_s
    straggler: {max_s, mean_s, ratio}        multi-device runs only
    overlap: {hidden_s, comm_s}              overlap runs only
    migration: {stalls, stall_s}             dynamic re-placement only
    migration: {handoffs, handoff_blocks, handoff_s, rebalances,
                rebalanced_blocks, rebalance_s, swaps, swapped_blocks,
                swap_in_s}                   disagg / swap runs only (the
                          ``s`` fields sum the exact stall floats the
                          engine's events carry, in event order, so they
                          match the report's migration section exactly)
    kv: {min_free_blocks, peak_utilization, cow_copies, grow_blocks,
         pressure: [{t, free_blocks, kv_utilization}]}
                          timeline from metrics samples when provided
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ...eval.reporting import summarize_latencies

__all__ = ["analyze_trace", "load_metrics_file", "load_trace_file"]


def load_trace_file(
    path: str,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]], dict[str, Any]]:
    """Load ``(events, samples, meta)`` from a trace file.

    Accepts either a Chrome ``.trace.json`` export (reads the embedded
    ``"milo"`` object back, exact floats included) or a raw tracer JSONL
    file (header line then one event per line; no samples).
    """
    with open(path) as fh:
        first = fh.readline()
        rest = fh.read()
    text = first + rest
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        obj = json.loads(text)
        milo = obj.get("milo")
        if not isinstance(milo, dict):
            raise ValueError(
                f"{path}: Chrome trace without an embedded 'milo' stream; "
                "re-export with milo serve --trace-events"
            )
        return (
            list(milo.get("events", [])),
            list(milo.get("samples", [])),
            dict(milo.get("meta", {})),
        )
    header = json.loads(first)
    if not isinstance(header, dict) or "schema" not in header:
        raise ValueError(f"{path}: not a milo trace (missing schema header)")
    events = [json.loads(line) for line in rest.splitlines() if line]
    return events, [], dict(header.get("meta", {}))


def load_metrics_file(path: str) -> list[dict[str, Any]]:
    """Load the sample rows of a ``--metrics-out`` JSONL file."""
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line]
    if not lines:
        return []
    header = json.loads(lines[0])
    if not isinstance(header, dict) or "schema" not in header:
        raise ValueError(f"{path}: not a milo metrics file (missing schema header)")
    return [json.loads(line) for line in lines[1:]]


def _phase_summary(durations: list[float], share_base: float) -> dict[str, Any]:
    total = sum(durations)
    return {
        "total_s": total,
        "mean_s": total / len(durations) if durations else None,
        "share": total / share_base if share_base else 0.0,
    }


def analyze_trace(
    events: Iterable[dict[str, Any]],
    samples: Iterable[dict[str, Any]] = (),
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Summarize a run's event stream (see module docstring for layout)."""
    meta = meta or {}
    submitted = rejected = stranded = preempt_events = 0
    preempted_requests: set[int] = set()
    arrival: dict[int, float] = {}
    admit_t: dict[int, float] = {}
    requeue_t: dict[int, float] = {}
    first_tok: dict[int, float] = {}
    queued_s: list[float] = []
    prefill_s: list[float] = []
    decode_s: list[float] = []
    # Latency lists accumulate in finish-event order == the engine's
    # `finished` order, so summaries match the report exactly.
    ttfts: list[float] = []
    tpots: list[float] = []
    e2es: list[float] = []
    iterations = 0
    sim_end = 0.0
    num_devices = len(meta.get("devices", ())) or 1
    busy = [0.0] * num_devices
    straggler_max = 0.0
    straggler_mean = 0.0
    hidden_s = 0.0
    comm_s = 0.0
    stall_s = 0.0
    stalls = 0
    handoffs = handoff_blocks = 0
    handoff_s = 0.0
    rebalances = rebalanced_blocks = 0
    rebalance_s = 0.0
    swaps = swapped_blocks = swap_ins = 0
    swap_in_s = 0.0
    has_compute = False
    has_overlap = False
    cow_copies = 0
    grow_blocks = 0
    min_free: int | None = None

    for event in events:
        kind = event["kind"]
        if kind == "iter":
            iterations += 1
            t1 = event["t1"]
            sim_end = t1
            compute = event.get("compute")
            if compute is None:
                busy[0] += t1 - event["t0"]
            else:
                has_compute = True
                for d, compute_s in enumerate(compute):
                    busy[d] += compute_s
                straggler_max += event["max"]
                straggler_mean += event["mean"]
            if "hidden" in event:
                has_overlap = True
                hidden_s += event["hidden"]
                comm_s += event["comm"]
            stall = event.get("stall")
            if stall:
                stalls += 1
                stall_s += stall
        elif kind == "submit":
            submitted += 1
            arrival[event["req"]] = event["t"]
        elif kind == "admit":
            req = event["req"]
            t = event["t"]
            # Queued time = arrival→first admit, plus requeue→re-admit after
            # each preemption.
            start = arrival[req] if event["preempted"] == 0 else requeue_t[req]
            queued_s.append(t - start)
            admit_t[req] = t
        elif kind == "first_token":
            req = event["req"]
            t = event["t"]
            prefill_s.append(t - admit_t[req])
            # first_token_time is sticky across preemption (re-prefill does
            # not reset TTFT), matching Sequence.ttft.
            if req not in first_tok:
                first_tok[req] = t
        elif kind == "finish":
            req = event["req"]
            t = event["t"]
            new = event["new"]
            decode_s.append(t - first_tok[req])
            ttfts.append(first_tok[req] - arrival[req])
            e2es.append(t - arrival[req])
            # Single-token requests have no decode gap and report tpot 0.0,
            # matching Sequence.tpot.
            tpots.append((t - first_tok[req]) / (new - 1) if new > 1 else 0.0)
        elif kind == "preempt":
            preempt_events += 1
            preempted_requests.add(event["req"])
            requeue_t[event["req"]] = event["t"]
        elif kind == "swap":
            if event["op"] == "out":
                # A swap-out is a preemption flavor: the victim requeues and
                # its later admit event references this requeue time.
                preempt_events += 1
                preempted_requests.add(event["req"])
                requeue_t[event["req"]] = event["t"]
                swaps += 1
                swapped_blocks += event["blocks"]
            else:
                swap_ins += 1
                swap_in_s += event["s"]
        elif kind == "handoff":
            handoffs += 1
            handoff_blocks += event["blocks"]
            handoff_s += event["s"]
        elif kind == "migrate":
            rebalances += 1
            rebalanced_blocks += event["blocks"]
            rebalance_s += event["s"]
        elif kind == "reject":
            rejected += 1
        elif kind == "strand":
            stranded += 1
        elif kind == "kv":
            op = event["op"]
            if op == "cow":
                cow_copies += 1
            elif op == "grow":
                grow_blocks += event["blocks"]
            free = event["free"]
            if min_free is None or free < min_free:
                min_free = free

    share_base = sum(queued_s) + sum(prefill_s) + sum(decode_s)
    result: dict[str, Any] = {
        "sim_time_s": sim_end,
        "iterations": iterations,
        "requests": {
            "submitted": submitted,
            "finished": len(e2es),
            "rejected": rejected,
            "preempted_requests": len(preempted_requests),
            "preemptions": preempt_events,
            "stranded": stranded,
        },
        "phases": {
            "queued": _phase_summary(queued_s, share_base),
            "prefill": _phase_summary(prefill_s, share_base),
            "decode": _phase_summary(decode_s, share_base),
        },
        "ttft_s": summarize_latencies(ttfts),
        "tpot_s": summarize_latencies(tpots),
        "e2e_s": summarize_latencies(e2es),
        "devices": [
            {
                "device": (
                    meta["devices"][d]
                    if d < len(meta.get("devices", ()))
                    else f"gpu{d}"
                ),
                "busy_s": busy[d],
                "busy_frac": busy[d] / sim_end if sim_end else 0.0,
            }
            for d in range(num_devices)
        ],
    }
    if has_compute:
        result["straggler"] = {
            "max_s": straggler_max,
            "mean_s": straggler_mean,
            "ratio": straggler_max / straggler_mean if straggler_mean else 1.0,
        }
    if has_overlap:
        result["overlap"] = {"hidden_s": hidden_s, "comm_s": comm_s}
    if stalls:
        result["migration"] = {"stalls": stalls, "stall_s": stall_s}
    if handoffs or rebalances or swaps or swap_ins:
        result.setdefault("migration", {}).update(
            {
                "handoffs": handoffs,
                "handoff_blocks": handoff_blocks,
                "handoff_s": handoff_s,
                "rebalances": rebalances,
                "rebalanced_blocks": rebalanced_blocks,
                "rebalance_s": rebalance_s,
                "swaps": swaps,
                "swapped_blocks": swapped_blocks,
                "swap_in_s": swap_in_s,
            }
        )

    kv: dict[str, Any] = {
        "min_free_blocks": min_free,
        "cow_copies": cow_copies,
        "grow_blocks": grow_blocks,
    }
    pressure = [
        {
            "t": row["t"],
            "free_blocks": row["free_blocks"],
            "kv_utilization": row["kv_utilization"],
        }
        for row in samples
    ]
    if pressure:
        kv["peak_utilization"] = max(row["kv_utilization"] for row in pressure)
        kv["pressure"] = pressure
    result["kv"] = kv
    return result
