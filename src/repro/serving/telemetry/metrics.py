"""Counter/gauge time series sampled on a fixed simulated-time interval.

A :class:`MetricsRegistry` holds one growing list of *samples*.  The engine
checks ``clock >= registry.next_due`` once per iteration (a single float
compare when enabled, a single ``is not None`` test when disabled) and,
when due, snapshots the scheduler and KV state:

==================  ==========================================================
``t``               simulated seconds at the sampling iteration's end
``i``               iteration index (after the sampled iteration)
``batch``           running sequences in the sampled iteration
``waiting``         queue depth behind admission control
``preemptions``     cumulative preemption count
``placement_epoch`` current expert placement epoch (bumps on re-placement)
``used_blocks``     KV blocks in use across all devices
``free_blocks``     KV blocks free across all devices
``kv_utilization``  ``used / (used + free)`` (0.0 for an empty pool)
``free_per_device`` per-device free-block list (multi-device runs only)
==================  ==========================================================

Sampling is aligned to the interval grid: after a sample at time ``t`` the
next one is due at ``interval * (floor(t / interval) + 1)``, so a quiet
stretch yields one sample per grid crossing rather than a backlog.  All
timestamps are simulated seconds — the registry is DET001-clean and the
fast path and general loop produce byte-identical JSONL streams.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["METRICS_SCHEMA", "MetricsRegistry"]

#: Schema tag of the metrics JSONL format (header line of every file).
METRICS_SCHEMA = "milo-metrics/v1"


class MetricsRegistry:
    """Fixed-interval sim-time sampler for scheduler and KV gauges."""

    __slots__ = ("interval", "samples", "next_due")

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"metrics interval must be positive, got {interval}")
        self.interval = float(interval)
        self.samples: list[dict[str, Any]] = []
        #: Simulated time of the next due sample; the engine compares the
        #: clock against this once per iteration.
        self.next_due: float = 0.0

    def sample(
        self,
        t: float,
        i: int,
        *,
        batch: int,
        waiting: int,
        preemptions: int,
        placement_epoch: int,
        used_blocks: int,
        free_blocks: int,
        free_per_device: list[int] | None = None,
    ) -> None:
        total = used_blocks + free_blocks
        row: dict[str, Any] = {
            "t": t,
            "i": i,
            "batch": batch,
            "waiting": waiting,
            "preemptions": preemptions,
            "placement_epoch": placement_epoch,
            "used_blocks": used_blocks,
            "free_blocks": free_blocks,
            "kv_utilization": used_blocks / total if total else 0.0,
        }
        if free_per_device is not None:
            row["free_per_device"] = free_per_device
        self.samples.append(row)
        self.next_due = self.interval * (math.floor(t / self.interval) + 1.0)

    # -- serialization -----------------------------------------------------------
    def to_jsonl(self) -> str:
        """Header line (schema + interval) followed by one sample per line."""
        lines = [
            json.dumps(
                {"schema": METRICS_SCHEMA, "interval": self.interval}, sort_keys=True
            )
        ]
        lines.extend(json.dumps(row) for row in self.samples)
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
