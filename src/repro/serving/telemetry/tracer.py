"""Structured lifecycle tracing on the engine's simulated clock.

One :class:`Tracer` collects a flat, strictly ordered stream of *events*
while the engine runs.  Every timestamp is a simulated second read off the
discrete-event clock — nothing here reads wall time (DET001), so the event
stream of a (backend, workload, config) triple is as reproducible as the
serving report itself: the fast path and the general loop emit **byte
identical** streams (``tests/serving/test_telemetry.py`` pins this).

Event catalogue (``kind`` field; every event also carries ``t`` or
``t0``/``t1`` sim-second timestamps):

=============  =================================================================
``submit``     request entered the scheduler (``t`` = arrival time), with
               ``prompt``/``new`` token budgets, ``priority``, and the shared
               prefix declaration when present.
``reject``     admission control refused the request — at intake (could never
               fit) or as load shedding in ``reject`` mode.
``admit``      request joined the running batch: home ``device``, placement
               ``epoch``, and how often it was ``preempted`` before (>0 marks
               a recompute-on-resume re-admission).
``first_token``  the iteration that finished (re-)prefill emitted the first
               output token (``t`` − arrival = TTFT); ``prefix_hit`` counts
               prompt tokens skipped via the prefix cache.
``finish``     last token produced; ``new`` = tokens generated.
``preempt``    scheduler reclaimed the sequence's KV blocks; ``recomputed``
               tokens must be re-prefilled on resume.
``swap``       swap-to-host preemption (``--preempt-mode swap``): ``op`` =
               ``out`` parks ``blocks`` (= ``tokens`` of KV) in host memory
               at ``t``; ``op`` = ``in`` restores them on re-admission over
               the ``t0``→``t1`` span, with the exact stall seconds ``s``
               (carried explicitly: ``(t0 + s) - t0`` is not IEEE-exact).
``handoff``    disaggregated prefill→decode KV handoff: ``blocks`` moved from
               device ``src`` to ``dst`` over ``t0``→``t1``, stall ``s``.
``migrate``    load-triggered decode-pool rebalance migration; same fields as
               ``handoff``.
``strand``     request still queued when the run ended (conservative custom
               policies only).
``kv``         block-pool movement: ``op`` ∈ ``alloc`` (reservation),
               ``share`` (prefix-hit admission, with ``hit_blocks``),
               ``grow`` (on-demand growth), ``cow`` (copy-on-write copy),
               ``free`` (eviction/preemption release) — each with the
               ``device``, the ``blocks`` moved and the pool's ``free``
               count after the move.
``iter``       one engine iteration: index ``i``, ``t0``→``t1`` clock span,
               batch ``tokens`` and size; multi-device iterations add the
               per-device ``compute`` seconds plus the ``max``/``mean``
               compute and ``remote`` all-to-all tokens the report's
               straggler accounting accumulates (copied float-for-float from
               the engine's memo, so summing them replays the report's
               totals exactly); overlap mode adds ``hidden``/``comm``
               seconds, and a dynamic re-placement adds its migration
               ``stall``.
=============  =================================================================

The engine keeps :attr:`Tracer.now` at the current simulated clock while
telemetry is enabled; hooks that have no clock of their own (KV moves,
preemptions, stranding) timestamp with it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..request import Request, Sequence

__all__ = ["TRACE_SCHEMA", "Tracer"]

#: Schema tag of the raw JSONL trace format (header line of every file).
TRACE_SCHEMA = "milo-trace/v1"


class Tracer:
    """Collects the structured event stream of one engine run.

    Attach a *fresh* tracer per run via
    :meth:`~repro.serving.engine.ServingEngine.enable_telemetry`; events
    accumulate in :attr:`events` in emission order and are never reordered.
    """

    __slots__ = ("events", "now", "meta")

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        #: The raw event stream, in emission order.
        self.events: list[dict[str, Any]] = []
        #: Current simulated clock, maintained by the engine while telemetry
        #: is enabled; hooks without a clock argument timestamp with it.
        self.now: float = 0.0
        #: Run metadata (model, backend, device names …) embedded in the
        #: JSONL header and the Chrome-trace export.
        self.meta: dict[str, Any] = dict(meta) if meta else {}

    # -- request lifecycle -------------------------------------------------------
    def submit(self, request: Request) -> None:
        event: dict[str, Any] = {
            "kind": "submit",
            "t": request.arrival_time,
            "req": request.request_id,
            "prompt": request.prompt_tokens,
            "new": request.max_new_tokens,
            "priority": request.priority,
        }
        if request.prefix_id is not None:
            event["prefix_id"] = request.prefix_id
            event["prefix_tokens"] = request.prefix_tokens
        self.events.append(event)

    def reject(self, seq: Sequence, t: float) -> None:
        self.events.append(
            {"kind": "reject", "t": t, "req": seq.request.request_id}
        )

    def admit(self, seq: Sequence, t: float) -> None:
        self.events.append(
            {
                "kind": "admit",
                "t": t,
                "req": seq.request.request_id,
                "device": seq.home_device,
                "epoch": seq.placement_epoch,
                "preempted": seq.preemptions,
            }
        )

    def first_token(self, seq: Sequence, t: float) -> None:
        self.events.append(
            {
                "kind": "first_token",
                "t": t,
                "req": seq.request.request_id,
                "prefix_hit": seq.prefix_hit_tokens,
            }
        )

    def finish(self, seq: Sequence) -> None:
        self.events.append(
            {
                "kind": "finish",
                "t": seq.finish_time,
                "req": seq.request.request_id,
                "new": seq.generated_tokens,
            }
        )

    def preempt(self, seq: Sequence, recomputed: int) -> None:
        self.events.append(
            {
                "kind": "preempt",
                "t": self.now,
                "req": seq.request.request_id,
                "recomputed": recomputed,
            }
        )

    def swap_out(self, seq: Sequence, blocks: int, tokens: int) -> None:
        self.events.append(
            {
                "kind": "swap",
                "op": "out",
                "t": self.now,
                "req": seq.request.request_id,
                "blocks": blocks,
                "tokens": tokens,
            }
        )

    def swap_in(self, seq: Sequence, t0: float, t1: float, blocks: int, s: float) -> None:
        self.events.append(
            {
                "kind": "swap",
                "op": "in",
                "t0": t0,
                "t1": t1,
                "req": seq.request.request_id,
                "blocks": blocks,
                "s": s,
            }
        )

    def handoff(
        self,
        seq: Sequence,
        t0: float,
        t1: float,
        src: int,
        dst: int,
        blocks: int,
        s: float,
    ) -> None:
        self.events.append(
            {
                "kind": "handoff",
                "t0": t0,
                "t1": t1,
                "req": seq.request.request_id,
                "src": src,
                "dst": dst,
                "blocks": blocks,
                "s": s,
            }
        )

    def migrate(
        self,
        seq: Sequence,
        t0: float,
        t1: float,
        src: int,
        dst: int,
        blocks: int,
        s: float,
    ) -> None:
        self.events.append(
            {
                "kind": "migrate",
                "t0": t0,
                "t1": t1,
                "req": seq.request.request_id,
                "src": src,
                "dst": dst,
                "blocks": blocks,
                "s": s,
            }
        )

    def strand(self, seq: Sequence) -> None:
        self.events.append(
            {"kind": "strand", "t": self.now, "req": seq.request.request_id}
        )

    # -- KV block pool -----------------------------------------------------------
    def kv(
        self,
        op: str,
        seq_id: int,
        blocks: int,
        device: int,
        free: int,
        hit_blocks: int | None = None,
    ) -> None:
        event: dict[str, Any] = {
            "kind": "kv",
            "t": self.now,
            "op": op,
            "seq": seq_id,
            "device": device,
            "blocks": blocks,
            "free": free,
        }
        if hit_blocks is not None:
            event["hit_blocks"] = hit_blocks
        self.events.append(event)

    # -- iterations --------------------------------------------------------------
    def iteration(
        self,
        i: int,
        t0: float,
        t1: float,
        tokens: int,
        batch: int,
        *,
        compute: tuple[float, ...] | None = None,
        max_compute: float | None = None,
        mean_compute: float | None = None,
        remote_tokens: int | None = None,
        hidden: float | None = None,
        comm: float | None = None,
        stall: float = 0.0,
    ) -> None:
        """One engine iteration (explicit or synthesized by the fast path's
        macro-stepped decode — the two streams are byte-identical)."""
        event: dict[str, Any] = {
            "kind": "iter",
            "i": i,
            "t0": t0,
            "t1": t1,
            "tokens": tokens,
            "batch": batch,
        }
        if compute is not None:
            event["compute"] = list(compute)
            event["max"] = max_compute
            event["mean"] = mean_compute
            event["remote"] = remote_tokens
        if hidden is not None:
            event["hidden"] = hidden
            event["comm"] = comm
        if stall:
            event["stall"] = stall
        self.events.append(event)

    # -- serialization -----------------------------------------------------------
    def to_jsonl(self) -> str:
        """Header line (schema + meta) followed by one event per line."""
        lines = [json.dumps({"schema": TRACE_SCHEMA, "meta": self.meta}, sort_keys=True)]
        lines.extend(json.dumps(event) for event in self.events)
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
