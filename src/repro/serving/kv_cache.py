"""Paged KV-cache: physical block pool + pluggable allocation policies.

The serving engine partitions the VRAM left over after the model weights
(:meth:`repro.runtime.backends.InferenceBackend.free_memory_gb`, which raises
the shared :class:`~repro.runtime.backends.OutOfMemoryError` when the weights
alone do not fit) into fixed-size *blocks* of ``block_size`` tokens of KV
state, vLLM-style.  A sequence holds ``ceil(tokens / block_size)`` blocks.

Two layers live here:

* :class:`BlockManager` — the **physical pool**: pure block accounting
  (allocate / grow / free / leak checks) with no opinion about *when* blocks
  are taken.
* :class:`AllocationPolicy` — the **decision layer** the scheduler talks to.
  :class:`ReservationPolicy` reserves a request's full ``prompt +
  max_new_tokens`` extent before admitting it, so a running sequence can
  never hit an out-of-blocks condition mid-decode (deterministic, trivially
  checkable, the PR 1 default).  :class:`OnDemandPolicy` allocates blocks
  only as KV state is actually written, which packs strictly more concurrent
  sequences into the same pool — the vLLM tradeoff — at the price of
  mid-decode exhaustion, which the scheduler resolves by preempting the
  lowest-precedence running sequence (recompute-on-resume).

Either way, the pool is the quantity the paper's memory story improves: a
3-bit MiLo checkpoint leaves ~2x more free VRAM on a 40 GB A100 than a
16-bit one, which shows up here as a proportionally larger block pool and
therefore a larger sustainable batch.

Per-token KV footprint comes from
:attr:`repro.models.registry.FullModelSpec.kv_bytes_per_token`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..models.registry import FullModelSpec
from .request import Request, Sequence

__all__ = [
    "KVCacheExhausted",
    "BlockManager",
    "AllocationPolicy",
    "ReservationPolicy",
    "OnDemandPolicy",
    "ALLOCATION_POLICIES",
    "make_allocation_policy",
    "kv_block_bytes",
    "blocks_for_budget",
]

_GB = 1024**3


class KVCacheExhausted(RuntimeError):
    """Raised when a block allocation exceeds the pool (engine bug, not OOM).

    Admission control checks :meth:`BlockManager.can_allocate` first, so in a
    correctly-behaving engine this never propagates to callers; it exists to
    make scheduler violations loud in tests rather than silently corrupting
    the accounting.
    """


def kv_block_bytes(spec: FullModelSpec, block_size: int) -> int:
    """Bytes of one KV block (``block_size`` tokens) for a full-size model."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return spec.kv_bytes_per_token * block_size


def blocks_for_budget(spec: FullModelSpec, free_gb: float, block_size: int) -> int:
    """How many KV blocks fit in ``free_gb`` of leftover VRAM."""
    if free_gb <= 0:
        return 0
    return int(free_gb * _GB // kv_block_bytes(spec, block_size))


@dataclass
class BlockManager:
    """Fixed-pool paged allocator with per-sequence accounting.

    Only counts are tracked (no block-id free lists): the simulator never
    reads cache contents, so identity of blocks does not matter, while the
    counts preserve the alloc/grow/free/leak semantics the tests assert.
    """

    num_blocks: int
    block_size: int
    _allocated: dict[int, int] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    # -- queries -----------------------------------------------------------------
    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks required to hold ``num_tokens`` tokens of KV state."""
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        return -(-num_tokens // self.block_size)

    @property
    def used_blocks(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_blocks(self) -> int:
        return self.num_blocks - self.used_blocks

    @property
    def outstanding_sequences(self) -> int:
        """Sequences currently holding blocks (0 after a clean engine run)."""
        return len(self._allocated)

    def blocks_held(self, seq_id: int) -> int:
        """Blocks currently held by a sequence (0 if it holds none)."""
        return self._allocated.get(seq_id, 0)

    def can_allocate(self, num_tokens: int) -> bool:
        return self.blocks_needed(num_tokens) <= self.free_blocks

    def fits_at_all(self, num_tokens: int) -> bool:
        """Whether an empty pool could ever hold ``num_tokens`` tokens."""
        return self.blocks_needed(num_tokens) <= self.num_blocks

    def max_sequences(self, tokens_per_sequence: int) -> int:
        """Concurrent sequences of a given length an empty pool sustains."""
        needed = self.blocks_needed(tokens_per_sequence)
        return self.num_blocks // needed if needed else 0

    # -- mutations ---------------------------------------------------------------
    def allocate(self, seq_id: int, num_tokens: int) -> int:
        """Reserve blocks for ``num_tokens`` tokens; returns blocks taken."""
        if seq_id in self._allocated:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        needed = self.blocks_needed(num_tokens)
        if needed > self.free_blocks:
            raise KVCacheExhausted(
                f"need {needed} blocks for sequence {seq_id} but only "
                f"{self.free_blocks}/{self.num_blocks} are free"
            )
        self._allocated[seq_id] = needed
        return needed

    def grow(self, seq_id: int, num_blocks: int) -> int:
        """Append blocks to an existing allocation (on-demand growth)."""
        if seq_id not in self._allocated:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks to grow")
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if num_blocks > self.free_blocks:
            raise KVCacheExhausted(
                f"need {num_blocks} more blocks for sequence {seq_id} but only "
                f"{self.free_blocks}/{self.num_blocks} are free"
            )
        self._allocated[seq_id] += num_blocks
        return self._allocated[seq_id]

    def free(self, seq_id: int) -> int:
        """Release a sequence's blocks; returns blocks returned to the pool."""
        if seq_id not in self._allocated:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks")
        return self._allocated.pop(seq_id)

    def assert_no_leaks(self) -> None:
        """Raise if any sequence still holds blocks (used by engine teardown)."""
        if self._allocated:
            held = ", ".join(str(s) for s in sorted(self._allocated))
            raise KVCacheExhausted(f"KV blocks leaked by sequences: {held}")


class AllocationPolicy(abc.ABC):
    """Decides when KV blocks are taken from / returned to the physical pool.

    The scheduler consults the policy at three points: request intake
    (:meth:`fits_at_all`), admission (:meth:`can_admit` / :meth:`admit`) and
    every iteration boundary (:meth:`blocks_deficit` / :meth:`grow`, which
    only the on-demand policy exercises).  :meth:`release` returns a
    sequence's blocks on finish *or* preemption.
    """

    #: Name surfaced in the serving report and on the CLI.
    name: str = "abstract"
    #: Whether sequences may need per-iteration growth (enables the
    #: scheduler's ensure-capacity/preemption path).
    grows: bool = False

    def __init__(self, pool: BlockManager) -> None:
        self.pool = pool

    def fits_at_all(self, request: Request) -> bool:
        """Whether the request could ever complete, even alone in the pool.

        Both policies need the full decoded extent to fit an empty pool — a
        request that cannot finish solo can never finish at all.
        """
        return self.pool.fits_at_all(request.total_tokens)

    @abc.abstractmethod
    def can_admit(self, seq: Sequence) -> bool:
        """Whether the pool currently has room to admit the sequence."""

    @abc.abstractmethod
    def admit(self, seq: Sequence) -> int:
        """Allocate the sequence's admission-time blocks; returns blocks taken."""

    def blocks_deficit(self, seq: Sequence, prefill_chunk: int | None = None) -> int:
        """Extra blocks the sequence needs before its next iteration (0 here)."""
        return 0

    def grow(self, seq: Sequence, num_blocks: int) -> int:
        """Append blocks for a running sequence (on-demand only)."""
        raise KVCacheExhausted(f"{self.name} policy never grows allocations")

    def release(self, seq: Sequence) -> int:
        """Return all of a sequence's blocks to the pool."""
        return self.pool.free(seq.request.request_id)


class ReservationPolicy(AllocationPolicy):
    """PR 1 semantics: reserve the full decoded extent before admission.

    A running sequence can never exhaust the pool mid-decode, so the batch
    never shrinks involuntarily and replay is trivially deterministic — at
    the cost of holding ``max_new_tokens`` worth of blocks that are mostly
    unwritten.
    """

    name = "reserve"
    grows = False

    def can_admit(self, seq: Sequence) -> bool:
        return self.pool.can_allocate(seq.request.total_tokens)

    def admit(self, seq: Sequence) -> int:
        return self.pool.allocate(seq.request.request_id, seq.request.total_tokens)


class OnDemandPolicy(AllocationPolicy):
    """vLLM-style growth: allocate blocks as KV state is actually written.

    Admission takes blocks for the sequence's prefill extent plus one decode
    token; every later appended token grows the allocation one block at a
    time as it crosses block boundaries.  When the pool runs dry the
    *scheduler* preempts the lowest-precedence running sequence (this policy
    only reports the deficit), frees its blocks, and requeues it for
    recompute-on-resume.
    """

    name = "ondemand"
    grows = True

    def _admission_tokens(self, seq: Sequence) -> int:
        # Prefill extent (prompt, plus recomputed tokens when resuming) + the
        # first appended token, so a fresh admission never deficits mid-prefill.
        return seq.prefill_extent + 1

    def can_admit(self, seq: Sequence) -> bool:
        return self.pool.can_allocate(self._admission_tokens(seq))

    def admit(self, seq: Sequence) -> int:
        return self.pool.allocate(seq.request.request_id, self._admission_tokens(seq))

    def blocks_deficit(self, seq: Sequence, prefill_chunk: int | None = None) -> int:
        if not seq.emits_token_this_iteration(prefill_chunk):
            return 0  # mid-prefill chunks stay within the admission allocation
        tokens_after = seq.request.prompt_tokens + seq.generated_tokens + 1
        needed = self.pool.blocks_needed(tokens_after)
        return max(0, needed - self.pool.blocks_held(seq.request.request_id))

    def grow(self, seq: Sequence, num_blocks: int) -> int:
        return self.pool.grow(seq.request.request_id, num_blocks)


#: CLI-selectable allocation policies, keyed by report/CLI name.
ALLOCATION_POLICIES: dict[str, type[AllocationPolicy]] = {
    ReservationPolicy.name: ReservationPolicy,
    OnDemandPolicy.name: OnDemandPolicy,
}


def make_allocation_policy(name: str, pool: BlockManager) -> AllocationPolicy:
    """Instantiate a named allocation policy over a physical block pool."""
    try:
        policy_cls = ALLOCATION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown KV allocation policy {name!r}; known: {sorted(ALLOCATION_POLICIES)}"
        ) from None
    return policy_cls(pool)
