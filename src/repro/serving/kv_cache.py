"""Paged KV-cache block manager for the serving engine.

The serving engine partitions the VRAM left over after the model weights
(:meth:`repro.runtime.backends.InferenceBackend.free_memory_gb`, which raises
the shared :class:`~repro.runtime.backends.OutOfMemoryError` when the weights
alone do not fit) into fixed-size *blocks* of ``block_size`` tokens of KV
state, vLLM-style.  A sequence holds ``ceil(tokens / block_size)`` blocks.

Admission is **reservation-based**: the scheduler reserves blocks for a
request's full ``prompt + max_new_tokens`` extent before admitting it, so a
running sequence can never hit an out-of-blocks condition mid-decode.  That
is deliberately more conservative than on-demand growth (it trades a little
capacity for determinism and a trivially-checkable "batch never exceeds KV
capacity" invariant), and it is exactly the quantity the paper's memory story
improves: a 3-bit MiLo checkpoint leaves ~2x more free VRAM on a 40 GB A100
than a 16-bit one, which shows up here as a proportionally larger block pool
and therefore a larger sustainable batch.

Per-token KV footprint comes from
:attr:`repro.models.registry.FullModelSpec.kv_bytes_per_token`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.registry import FullModelSpec

__all__ = ["KVCacheExhausted", "BlockManager", "kv_block_bytes", "blocks_for_budget"]

_GB = 1024**3


class KVCacheExhausted(RuntimeError):
    """Raised when a block allocation exceeds the pool (engine bug, not OOM).

    Admission control checks :meth:`BlockManager.can_allocate` first, so in a
    correctly-behaving engine this never propagates to callers; it exists to
    make scheduler violations loud in tests rather than silently corrupting
    the accounting.
    """


def kv_block_bytes(spec: FullModelSpec, block_size: int) -> int:
    """Bytes of one KV block (``block_size`` tokens) for a full-size model."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return spec.kv_bytes_per_token * block_size


def blocks_for_budget(spec: FullModelSpec, free_gb: float, block_size: int) -> int:
    """How many KV blocks fit in ``free_gb`` of leftover VRAM."""
    if free_gb <= 0:
        return 0
    return int(free_gb * _GB // kv_block_bytes(spec, block_size))


@dataclass
class BlockManager:
    """Fixed-pool paged allocator with per-sequence accounting.

    Only counts are tracked (no block-id free lists): the simulator never
    reads cache contents, so identity of blocks does not matter, while the
    counts preserve the alloc/free/leak semantics the tests assert.
    """

    num_blocks: int
    block_size: int
    _allocated: dict[int, int] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    # -- queries -----------------------------------------------------------------
    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks required to hold ``num_tokens`` tokens of KV state."""
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        return -(-num_tokens // self.block_size)

    @property
    def used_blocks(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_blocks(self) -> int:
        return self.num_blocks - self.used_blocks

    @property
    def outstanding_sequences(self) -> int:
        """Sequences currently holding blocks (0 after a clean engine run)."""
        return len(self._allocated)

    def can_allocate(self, num_tokens: int) -> bool:
        return self.blocks_needed(num_tokens) <= self.free_blocks

    def fits_at_all(self, num_tokens: int) -> bool:
        """Whether an empty pool could ever hold ``num_tokens`` tokens."""
        return self.blocks_needed(num_tokens) <= self.num_blocks

    def max_sequences(self, tokens_per_sequence: int) -> int:
        """Concurrent sequences of a given length an empty pool sustains."""
        needed = self.blocks_needed(tokens_per_sequence)
        return self.num_blocks // needed if needed else 0

    # -- mutations ---------------------------------------------------------------
    def allocate(self, seq_id: int, num_tokens: int) -> int:
        """Reserve blocks for ``num_tokens`` tokens; returns blocks taken."""
        if seq_id in self._allocated:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        needed = self.blocks_needed(num_tokens)
        if needed > self.free_blocks:
            raise KVCacheExhausted(
                f"need {needed} blocks for sequence {seq_id} but only "
                f"{self.free_blocks}/{self.num_blocks} are free"
            )
        self._allocated[seq_id] = needed
        return needed

    def free(self, seq_id: int) -> int:
        """Release a sequence's blocks; returns blocks returned to the pool."""
        if seq_id not in self._allocated:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks")
        return self._allocated.pop(seq_id)

    def assert_no_leaks(self) -> None:
        """Raise if any sequence still holds blocks (used by engine teardown)."""
        if self._allocated:
            held = ", ".join(str(s) for s in sorted(self._allocated))
            raise KVCacheExhausted(f"KV blocks leaked by sequences: {held}")
