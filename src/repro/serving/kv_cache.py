"""Paged KV-cache: physical block pool + pluggable allocation policies.

The serving engine partitions the VRAM left over after the model weights
(:meth:`repro.runtime.backends.InferenceBackend.free_memory_gb`, which raises
the shared :class:`~repro.runtime.backends.OutOfMemoryError` when the weights
alone do not fit) into fixed-size *blocks* of ``block_size`` tokens of KV
state, vLLM-style.  A sequence holds ``ceil(tokens / block_size)`` blocks.

Two layers live here:

* :class:`BlockManager` — the **physical pool**: numbered blocks on a free
  list, a per-sequence *block table* mapping logical block slots to physical
  block ids, a per-block reference count, and a hash-keyed *prefix index*
  that lets sequences sharing a common prompt prefix map the same physical
  blocks read-only.  The first write into a still-shared block triggers
  copy-on-write (:meth:`BlockManager.ensure_writable`).
* :class:`AllocationPolicy` — the **decision layer** the scheduler talks to.
  :class:`ReservationPolicy` reserves a request's full ``prompt +
  max_new_tokens`` extent before admitting it, so a running sequence can
  never hit an out-of-blocks condition mid-decode (deterministic, trivially
  checkable, the PR 1 default).  :class:`OnDemandPolicy` allocates blocks
  only as KV state is actually written, which packs strictly more concurrent
  sequences into the same pool — the vLLM tradeoff — at the price of
  mid-decode exhaustion, which the scheduler resolves by preempting the
  lowest-precedence running sequence (recompute-on-resume).

Prefix sharing
--------------
A :class:`~repro.serving.request.Request` may declare that its first
``prefix_tokens`` prompt tokens are drawn from a shared prefix identified by
``prefix_id`` (e.g. one of K system prompts).  The prefix index keys each
*full* block of that region by ``(prefix_id, block_index)``; admission walks
the index and maps every resident block read-only (refcount++) instead of
taking a fresh block, so K concurrent sequences with a common prefix store
its KV once.  A trailing partially-filled prefix block is shared only when
the whole prompt *is* the prefix (otherwise divergent prompt tokens would
land in it during prefill); the first divergent write into such a block is
copy-on-write: the writer gets a private copy, the sharers keep the original.
Releasing a sharer (finish *or* preemption) only returns blocks whose
refcount drops to zero — preempting a sharer frees just its private blocks.

Either way, the pool is the quantity the paper's memory story improves: a
3-bit MiLo checkpoint leaves ~2x more free VRAM on a 40 GB A100 than a
16-bit one, which shows up here as a proportionally larger block pool and
therefore a larger sustainable batch — and deduplicated prefixes stretch
that pool further still.

Per-token KV footprint comes from
:attr:`repro.models.registry.FullModelSpec.kv_bytes_per_token`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..models.registry import FullModelSpec
from .request import Request, Sequence

if TYPE_CHECKING:
    from .telemetry.tracer import Tracer

__all__ = [
    "KVCacheExhausted",
    "BlockManager",
    "AllocationPolicy",
    "ReservationPolicy",
    "OnDemandPolicy",
    "ALLOCATION_POLICIES",
    "make_allocation_policy",
    "kv_block_bytes",
    "blocks_for_budget",
]

_GB = 1024**3


class KVCacheExhausted(RuntimeError):
    """Raised when a block allocation exceeds the pool (engine bug, not OOM).

    Admission control checks :meth:`BlockManager.can_allocate` first, so in a
    correctly-behaving engine this never propagates to callers; it exists to
    make scheduler violations loud in tests rather than silently corrupting
    the accounting.
    """


def kv_block_bytes(spec: FullModelSpec, block_size: int) -> int:
    """Bytes of one KV block (``block_size`` tokens) for a full-size model."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return spec.kv_bytes_per_token * block_size


def blocks_for_budget(spec: FullModelSpec, free_gb: float, block_size: int) -> int:
    """How many KV blocks fit in ``free_gb`` of leftover VRAM."""
    if free_gb <= 0:
        return 0
    return int(free_gb * _GB // kv_block_bytes(spec, block_size))


class BlockManager:
    """Fixed-pool paged allocator with block identity and prefix sharing.

    Every block has an id; free ids live on a stack (lowest id allocated
    first), allocated ids carry a refcount, and each sequence owns a block
    table listing the physical block backing each of its logical block
    slots.  Blocks registered in the prefix index are immutable while
    shared; writes into them go through :meth:`ensure_writable` (in-place
    un-registration at refcount 1, copy-on-write above).
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self._num_blocks = num_blocks
        #: Stack of free block ids; pop() hands out the lowest id first.
        self._free: list[int] = list(range(num_blocks - 1, -1, -1))
        #: Refcount per allocated block id.
        self._ref: dict[int, int] = {}
        #: Per-sequence block table: seq_id -> [block_id, ...] in token order.
        self._tables: dict[int, list[int]] = {}
        #: (prefix_id, block_index) -> block id of a resident shareable block.
        self._prefix_index: dict[tuple[int, int], int] = {}
        #: Reverse map of the prefix index (block id -> key).
        self._prefix_key: dict[int, tuple[int, int]] = {}
        #: Blocks with refcount > 1, maintained at the 1<->2 transitions so
        #: the per-iteration :attr:`shared_blocks` probe is O(1).
        self._shared_count = 0
        #: Optional telemetry sink (attached by
        #: :meth:`~repro.serving.engine.ServingEngine.enable_telemetry`) and
        #: this pool's device index in a sharded cluster (stamped by
        #: :class:`~repro.serving.cluster.ShardedBlockManager`).  Every hook
        #: below is ``is not None``-guarded, so the disabled path costs one
        #: attribute test per pool *mutation* — never per block.
        self.tracer: Tracer | None = None
        self.device_index = 0
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the cumulative sharing counters (per engine run)."""
        #: Physical blocks ever taken from the free list.
        self.physical_allocs = 0
        #: Admissions served from the prefix index instead of the free list.
        self.prefix_hit_blocks = 0
        #: Tokens of KV state those hits covered.
        self.prefix_hit_tokens = 0
        #: Copy-on-write block copies performed.
        self.cow_copies = 0

    # -- queries -----------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @num_blocks.setter
    def num_blocks(self, value: int) -> None:
        """Resize the pool; allocated blocks must all fit the new range."""
        if value < 0:
            raise ValueError("num_blocks must be non-negative")
        if any(block_id >= value for block_id in self._ref):
            raise KVCacheExhausted(
                f"cannot shrink pool to {value} blocks: allocated ids exceed it"
            )
        self._num_blocks = value
        allocated = set(self._ref)
        self._free = [b for b in range(value - 1, -1, -1) if b not in allocated]

    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks required to hold ``num_tokens`` tokens of KV state."""
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        return -(-num_tokens // self.block_size)

    @property
    def used_blocks(self) -> int:
        """Physical blocks taken from the pool (shared blocks count once)."""
        return self._num_blocks - len(self._free)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def shared_blocks(self) -> int:
        """Physical blocks currently mapped by more than one sequence."""
        return self._shared_count

    @property
    def outstanding_sequences(self) -> int:
        """Sequences currently holding blocks (0 after a clean engine run)."""
        return len(self._tables)

    def sequences(self) -> tuple[int, ...]:
        """Ids of the sequences currently holding blocks, in sorted order."""
        return tuple(sorted(self._tables))

    def home_device(self, seq_id: int) -> int:
        """Device index of this pool — always 0 for the single-device pool.

        The scheduler's placement-aware preemption math asks for a
        sequence's home device and the free blocks on it; a plain pool
        answers 0 / :attr:`free_blocks`, so the single-device scheduler
        reduces bit-for-bit to the pre-sharding behavior
        (:class:`~repro.serving.cluster.ShardedBlockManager` answers with
        real per-device state).
        """
        return 0

    def free_blocks_on(self, device: int) -> int:
        """Free blocks on one device — the whole pool for a single device."""
        if device != 0:
            raise KVCacheExhausted(f"single-device pool has no device {device}")
        return len(self._free)

    def blocks_held(self, seq_id: int) -> int:
        """Logical blocks in a sequence's table (0 if it holds none)."""
        table = self._tables.get(seq_id)
        return len(table) if table is not None else 0

    def shared_blocks_held(self, seq_id: int) -> int:
        """Blocks in a sequence's table that other sequences also map."""
        table = self._tables.get(seq_id)
        if not table:
            return 0
        return sum(1 for block_id in table if self._ref[block_id] > 1)

    def block_table(self, seq_id: int) -> tuple[int, ...]:
        """The sequence's physical block ids, in token order (read-only view)."""
        return tuple(self._tables.get(seq_id, ()))

    def can_allocate(self, num_tokens: int) -> bool:
        return self.blocks_needed(num_tokens) <= self.free_blocks

    def fits_at_all(self, num_tokens: int) -> bool:
        """Whether an empty pool could ever hold ``num_tokens`` tokens."""
        return self.blocks_needed(num_tokens) <= self._num_blocks

    def max_sequences(self, tokens_per_sequence: int) -> int:
        """Concurrent sequences of a given length an empty pool sustains."""
        needed = self.blocks_needed(tokens_per_sequence)
        return self._num_blocks // needed if needed else 0

    # -- prefix sharing ----------------------------------------------------------
    def _shareable_blocks(self, prefix_tokens: int, share_partial: bool) -> int:
        """Prefix-region blocks eligible for the index (full + optional tail)."""
        full = prefix_tokens // self.block_size
        partial = 1 if share_partial and prefix_tokens % self.block_size else 0
        return full + partial

    def prefix_hits(self, prefix_id: int, prefix_tokens: int, share_partial: bool = False) -> int:
        """Resident shareable blocks for this prefix, as a contiguous run from 0.

        Sharing stops at the first non-resident block so the covered tokens
        always form a prefix of the KV stream (a hit for block 2 without
        block 1 would be unusable).
        """
        hits = 0
        for idx in range(self._shareable_blocks(prefix_tokens, share_partial)):
            if (prefix_id, idx) not in self._prefix_index:
                break
            hits += 1
        return hits

    def _hit_tokens(self, hits: int, prefix_tokens: int) -> int:
        """Tokens of valid prefix KV covered by ``hits`` leading blocks."""
        return min(hits * self.block_size, prefix_tokens)

    def can_allocate_shared(
        self,
        num_tokens: int,
        prefix_id: int,
        prefix_tokens: int,
        share_partial: bool = False,
    ) -> bool:
        """Whether the pool can admit ``num_tokens`` given resident prefix hits."""
        needed = self.blocks_needed(num_tokens)
        hits = min(self.prefix_hits(prefix_id, prefix_tokens, share_partial), needed)
        return needed - hits <= self.free_blocks

    def allocate_shared(
        self,
        seq_id: int,
        num_tokens: int,
        prefix_id: int,
        prefix_tokens: int,
        share_partial: bool = False,
    ) -> tuple[int, int]:
        """Build a block table mapping resident prefix blocks read-only.

        Walks the prefix index from block 0: every resident block is mapped
        by reference (refcount++); the first miss ends sharing and every
        later block — including the rest of the prefix region, which is
        registered in the index for future sharers — comes fresh off the
        free list.  Returns ``(fresh_blocks_taken, hit_tokens)`` where
        ``hit_tokens`` counts the prefix KV tokens already resident.
        """
        if seq_id in self._tables:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        needed = self.blocks_needed(num_tokens)
        shareable = min(self._shareable_blocks(prefix_tokens, share_partial), needed)
        hits = min(self.prefix_hits(prefix_id, prefix_tokens, share_partial), needed)
        fresh = needed - hits
        if fresh > self.free_blocks:
            raise KVCacheExhausted(
                f"need {fresh} blocks for sequence {seq_id} (after {hits} prefix "
                f"hits) but only {self.free_blocks}/{self._num_blocks} are free"
            )
        table: list[int] = []
        for idx in range(hits):
            block_id = self._prefix_index[(prefix_id, idx)]
            self._ref[block_id] += 1
            if self._ref[block_id] == 2:
                self._shared_count += 1
            table.append(block_id)
        for idx in range(hits, needed):
            block_id = self._take_free_block()
            key = (prefix_id, idx)
            if idx < shareable and key not in self._prefix_index:
                # Fresh prefix block: register it so later sharers hit it.
                # (A broken hit chain may leave a later index entry resident;
                # it is left alone and this block stays private.)
                self._prefix_index[key] = block_id
                self._prefix_key[block_id] = key
            table.append(block_id)
        self._tables[seq_id] = table
        hit_tokens = self._hit_tokens(hits, prefix_tokens)
        self.prefix_hit_blocks += hits
        self.prefix_hit_tokens += hit_tokens
        if self.tracer is not None:
            self.tracer.kv(
                "share", seq_id, fresh, self.device_index, len(self._free),
                hit_blocks=hits,
            )
        return fresh, hit_tokens

    def cow_cost(self, seq_id: int, token_index: int) -> int:
        """Free blocks a write at ``token_index`` would consume (0 or 1).

        1 when the backing block is a still-shared prefix block (refcount >
        1): the writer needs a private copy.  0 for private blocks and for
        index-registered blocks held by a single sequence (un-registered and
        mutated in place, no copy).
        """
        table = self._tables.get(seq_id)
        if table is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks")
        idx = token_index // self.block_size
        if idx >= len(table):
            return 0  # the write lands in a block growth has yet to append
        block_id = table[idx]
        return 1 if block_id in self._prefix_key and self._ref[block_id] > 1 else 0

    def ensure_writable(self, seq_id: int, token_index: int) -> int:
        """Make the block backing ``token_index`` privately writable.

        Copy-on-write: a still-shared prefix block is replaced in this
        sequence's table by a fresh private copy (sharers keep the original,
        which stays in the prefix index); a prefix block with refcount 1 is
        simply un-registered — its content is about to diverge from the pure
        prefix, so future admissions must not hit it.  Returns the free
        blocks consumed (1 for a copy, else 0).
        """
        table = self._tables.get(seq_id)
        if table is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks")
        idx = token_index // self.block_size
        if idx >= len(table):
            raise KVCacheExhausted(
                f"sequence {seq_id} write at token {token_index} exceeds its "
                f"{len(table)}-block table (grow before writing)"
            )
        block_id = table[idx]
        key = self._prefix_key.get(block_id)
        if key is None:
            return 0  # already private
        if self._ref[block_id] == 1:
            # Sole holder: mutate in place, but drop it from the index first.
            del self._prefix_index[key]
            del self._prefix_key[block_id]
            return 0
        copy_id = self._take_free_block()
        self._ref[block_id] -= 1
        if self._ref[block_id] == 1:
            self._shared_count -= 1
        table[idx] = copy_id
        self.cow_copies += 1
        if self.tracer is not None:
            self.tracer.kv("cow", seq_id, 1, self.device_index, len(self._free))
        return 1

    # -- mutations ---------------------------------------------------------------
    def _take_free_block(self) -> int:
        if not self._free:
            raise KVCacheExhausted(
                f"no free blocks left in a {self._num_blocks}-block pool"
            )
        block_id = self._free.pop()
        self._ref[block_id] = 1
        self.physical_allocs += 1
        return block_id

    def _take_free_blocks(self, n: int) -> list[int]:
        """Take ``n`` free blocks at once — the same ids in the same order
        ``n`` successive :meth:`_take_free_block` calls would return (the
        free list is a stack, so the bulk take slices its tail and reverses),
        without the per-block call overhead on the allocation hot path."""
        if n <= 0:
            return []
        free = self._free
        if n > len(free):
            raise KVCacheExhausted(
                f"no free blocks left in a {self._num_blocks}-block pool"
            )
        taken = free[-n:]
        del free[-n:]
        taken.reverse()
        ref = self._ref
        for block_id in taken:
            ref[block_id] = 1
        self.physical_allocs += n
        return taken

    def allocate(self, seq_id: int, num_tokens: int) -> int:
        """Reserve private blocks for ``num_tokens`` tokens; returns blocks taken."""
        if seq_id in self._tables:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        needed = self.blocks_needed(num_tokens)
        if needed > self.free_blocks:
            raise KVCacheExhausted(
                f"need {needed} blocks for sequence {seq_id} but only "
                f"{self.free_blocks}/{self._num_blocks} are free"
            )
        self._tables[seq_id] = self._take_free_blocks(needed)
        if self.tracer is not None:
            self.tracer.kv("alloc", seq_id, needed, self.device_index, len(self._free))
        return needed

    def adopt(self, seq_id: int, num_blocks: int) -> int:
        """Materialize ``num_blocks`` private blocks for an incoming migrant.

        The receiving half of a cross-device migration
        (:meth:`~repro.serving.cluster.ShardedBlockManager.migrate`): the
        sequence's KV state is being copied in from another device, so it
        gets exactly as many *private* blocks here as it held there — block
        identity never spans devices, so shared source blocks arrive as
        private copies.  Returns the blocks taken.
        """
        if seq_id in self._tables:
            raise KVCacheExhausted(f"sequence {seq_id} already holds blocks")
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if num_blocks > self.free_blocks:
            raise KVCacheExhausted(
                f"need {num_blocks} blocks to adopt sequence {seq_id} but only "
                f"{self.free_blocks}/{self._num_blocks} are free"
            )
        self._tables[seq_id] = self._take_free_blocks(num_blocks)
        if self.tracer is not None:
            self.tracer.kv(
                "adopt", seq_id, num_blocks, self.device_index, len(self._free)
            )
        return num_blocks

    def grow(self, seq_id: int, num_blocks: int) -> int:
        """Append private blocks to an existing table (on-demand growth)."""
        table = self._tables.get(seq_id)
        if table is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks to grow")
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if num_blocks > self.free_blocks:
            raise KVCacheExhausted(
                f"need {num_blocks} more blocks for sequence {seq_id} but only "
                f"{self.free_blocks}/{self._num_blocks} are free"
            )
        table.extend(self._take_free_blocks(num_blocks))
        if self.tracer is not None:
            self.tracer.kv(
                "grow", seq_id, num_blocks, self.device_index, len(self._free)
            )
        return len(table)

    def free(self, seq_id: int) -> int:
        """Release a sequence's table; returns blocks returned to the pool.

        Shared blocks only drop a reference — a sharer's release (finish or
        preemption) physically frees just the blocks it held alone, and a
        prefix block leaves the index only when its last holder lets go.
        """
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise KVCacheExhausted(f"sequence {seq_id} holds no blocks")
        if self._shared_count == 0 and not self._prefix_key:
            # No block anywhere is shared or prefix-registered, so every
            # table entry holds the sole reference: skip the per-block
            # sharing checks and return the whole table to the free list in
            # one extend (same append order as the general loop).
            ref = self._ref
            for block_id in table:
                del ref[block_id]
            self._free.extend(table)
            if self.tracer is not None:
                self.tracer.kv(
                    "free", seq_id, len(table), self.device_index, len(self._free)
                )
            return len(table)
        freed = 0
        for block_id in table:
            self._ref[block_id] -= 1
            if self._ref[block_id] == 1:
                self._shared_count -= 1
            if self._ref[block_id] == 0:
                del self._ref[block_id]
                key = self._prefix_key.pop(block_id, None)
                if key is not None:
                    del self._prefix_index[key]
                self._free.append(block_id)
                freed += 1
        if self.tracer is not None:
            self.tracer.kv("free", seq_id, freed, self.device_index, len(self._free))
        return freed

    # -- invariants --------------------------------------------------------------
    def assert_no_leaks(self) -> None:
        """Raise if any sequence still holds blocks (used by engine teardown)."""
        if self._tables:
            held = ", ".join(str(s) for s in sorted(self._tables))
            raise KVCacheExhausted(f"KV blocks leaked by sequences: {held}")
        self.check_invariants()

    def check_invariants(self) -> None:
        """Structural self-check: free + allocated partition the pool exactly.

        Meant for tests to call after every mutation; raises
        :class:`KVCacheExhausted` on any violation.
        """
        free = set(self._free)
        allocated = set(self._ref)
        if len(free) != len(self._free):
            raise KVCacheExhausted("free list contains duplicate block ids")
        if free & allocated:
            raise KVCacheExhausted("block ids both free and allocated")
        if free | allocated != set(range(self._num_blocks)):
            raise KVCacheExhausted("free + allocated blocks do not cover the pool")
        if any(count <= 0 for count in self._ref.values()):
            raise KVCacheExhausted("allocated block with non-positive refcount")
        mapped: dict[int, int] = {}
        for table in self._tables.values():
            for block_id in table:
                mapped[block_id] = mapped.get(block_id, 0) + 1
        if mapped != self._ref:
            raise KVCacheExhausted("refcounts disagree with block-table references")
        for key, block_id in self._prefix_index.items():
            if self._prefix_key.get(block_id) != key:
                raise KVCacheExhausted("prefix index and reverse map disagree")
            if block_id not in self._ref:
                raise KVCacheExhausted("prefix index points at a free block")
        if self._shared_count != sum(1 for c in self._ref.values() if c > 1):
            raise KVCacheExhausted("shared-block counter disagrees with refcounts")


class AllocationPolicy(abc.ABC):
    """Decides when KV blocks are taken from / returned to the physical pool.

    The scheduler consults the policy at three points: request intake
    (:meth:`fits_at_all`), admission (:meth:`can_admit` / :meth:`admit`) and
    every iteration boundary (:meth:`blocks_deficit` / :meth:`grow`, which
    only the on-demand policy exercises).  :meth:`release` returns a
    sequence's blocks on finish *or* preemption.

    Requests carrying a ``prefix_id`` are admitted through the pool's
    prefix-sharing path in either policy; requests without one take the
    exact pre-sharing code path, so non-shared workloads reproduce the
    original accounting bit for bit.
    """

    #: Name surfaced in the serving report and on the CLI.
    name: str = "abstract"
    #: Whether sequences may need per-iteration growth (enables the
    #: scheduler's ensure-capacity/preemption path).
    grows: bool = False

    def __init__(self, pool: BlockManager) -> None:
        self.pool = pool

    def fits_at_all(self, request: Request) -> bool:
        """Whether the request could ever complete, even alone in the pool.

        Both policies need the full decoded extent to fit an empty pool — a
        request that cannot finish solo can never finish at all (sharing is
        ignored: residency of another sequence's blocks is not guaranteed).
        """
        return self.pool.fits_at_all(request.total_tokens)

    def _share_partial(self, seq: Sequence) -> bool:
        """Whether the trailing partial prefix block may be mapped read-only.

        Only when the whole prompt *is* the shared prefix: otherwise the
        sequence's own divergent prompt tokens land in that block during
        prefill, which would force an immediate copy.  The reservation
        policy never shares it (eager private copy) so it keeps its
        no-mid-decode-allocation invariant.
        """
        return False

    def _admit_tokens(self, seq: Sequence) -> int:
        """KV tokens the admission-time allocation must cover."""
        return seq.request.total_tokens

    def can_admit(self, seq: Sequence) -> bool:
        """Whether the pool currently has room to admit the sequence."""
        request = seq.request
        if request.prefix_id is None or seq.swapped_tokens:
            return self.pool.can_allocate(self._admit_tokens(seq))
        return self.pool.can_allocate_shared(
            self._admit_tokens(seq),
            request.prefix_id,
            request.prefix_tokens,
            self._share_partial(seq),
        )

    def admit(self, seq: Sequence) -> int:
        """Allocate the sequence's admission-time blocks; returns blocks taken.

        Prefix-carrying requests map resident shared blocks read-only and
        skip the covered prefill tokens (at least one prompt token is always
        recomputed, so the finishing iteration still emits the first token).
        A sequence re-admitted after swap-to-host (``swapped_tokens`` set)
        takes private blocks instead: its KV is restored wholesale from host
        memory, not rebuilt by a prefill pass, so mapping index blocks
        read-only (and skipping prefill it will not run) would misstate what
        the swap-in actually transfers.
        """
        request = seq.request
        if request.prefix_id is None or seq.swapped_tokens:
            return self.pool.allocate(request.request_id, self._admit_tokens(seq))
        fresh, hit_tokens = self.pool.allocate_shared(
            request.request_id,
            self._admit_tokens(seq),
            request.prefix_id,
            request.prefix_tokens,
            self._share_partial(seq),
        )
        seq.apply_prefix_hit(hit_tokens)
        return fresh

    def blocks_deficit(self, seq: Sequence, prefill_chunk: int | None = None) -> int:
        """Extra blocks the sequence needs before its next iteration (0 here)."""
        return 0

    def grow(self, seq: Sequence, num_blocks: int) -> int:
        """Append blocks for a running sequence (on-demand only)."""
        raise KVCacheExhausted(f"{self.name} policy never grows allocations")

    def release(self, seq: Sequence) -> int:
        """Return all of a sequence's blocks to the pool."""
        return self.pool.free(seq.request.request_id)


class ReservationPolicy(AllocationPolicy):
    """PR 1 semantics: reserve the full decoded extent before admission.

    A running sequence can never exhaust the pool mid-decode, so the batch
    never shrinks involuntarily and replay is trivially deterministic — at
    the cost of holding ``max_new_tokens`` worth of blocks that are mostly
    unwritten.  Prefix sharing maps only *full* prefix blocks (the trailing
    partial block is copied eagerly), so no copy-on-write can ever be needed
    mid-decode and the invariant survives sharing.
    """

    name = "reserve"
    grows = False


class OnDemandPolicy(AllocationPolicy):
    """vLLM-style growth: allocate blocks as KV state is actually written.

    Admission takes blocks for the sequence's prefill extent plus one decode
    token; every later appended token grows the allocation one block at a
    time as it crosses block boundaries, or copies a still-shared prefix
    block the moment the sequence first writes into it (copy-on-write).
    When the pool runs dry the *scheduler* preempts the lowest-precedence
    running sequence (this policy only reports the deficit), frees its
    blocks, and requeues it for recompute-on-resume.
    """

    name = "ondemand"
    grows = True

    def _admit_tokens(self, seq: Sequence) -> int:
        # Prefill extent (prompt, plus recomputed tokens when resuming) + the
        # first appended token, so a fresh admission never deficits mid-prefill.
        # A swap-to-host resume arrives with its written KV intact: the
        # allocation must cover the restored tokens plus the next appended
        # one, or — for a victim swapped mid-prefill — the remaining prefill
        # writes, whichever extends further.
        if seq.swapped_tokens:
            return max(seq.kv_tokens_written(), seq.prefill_extent) + 1
        return seq.prefill_extent + 1

    def _share_partial(self, seq: Sequence) -> bool:
        # The *prefill extent*, not the prompt, must equal the prefix: a
        # sequence resuming from preemption re-prefills its generated tokens
        # (recompute_base > 0), and those divergent writes land in the tail
        # block — mapping it shared would poison the index for later hits.
        request = seq.request
        return (
            seq.prefill_extent == request.prefix_tokens
            and request.prefix_tokens % self.pool.block_size != 0
        )

    def blocks_deficit(self, seq: Sequence, prefill_chunk: int | None = None) -> int:
        """Blocks the next emitting iteration needs (growth or one CoW copy).

        Not a pure query: when the write needs no blocks but targets a
        registered prefix block this sequence holds alone, the block is
        un-registered *here* — the scheduler only calls :meth:`grow` on a
        positive deficit, and the iteration boundary is the last point
        before the divergent write.  The scheduler calls this exactly once
        per running sequence per boundary.
        """
        if not seq.emits_token_this_iteration(prefill_chunk):
            return 0  # mid-prefill chunks stay within the admission allocation
        tokens_after = seq.request.prompt_tokens + seq.generated_tokens + 1
        needed = self.pool.blocks_needed(tokens_after)
        growth = max(0, needed - self.pool.blocks_held(seq.request.request_id))
        if growth:
            return growth  # the appended token lands in a fresh private block
        # The token lands in an existing block.  A still-shared prefix block
        # must be copied before the write (copy-on-write, costs one block); a
        # registered block held by this sequence alone costs nothing but must
        # leave the prefix index *now* — its content is about to diverge, and
        # the scheduler never calls ``grow`` on a zero deficit, so the free
        # un-registration happens here.
        write_pos = tokens_after - 1
        if self.pool.cow_cost(seq.request.request_id, write_pos):
            return 1
        self.pool.ensure_writable(seq.request.request_id, write_pos)
        return 0

    def grow(self, seq: Sequence, num_blocks: int) -> int:
        """Secure the deficit :meth:`blocks_deficit` reported.

        ``num_blocks`` is deliberately advisory: preemptions between the
        deficit computation and this call can shrink the real need (a
        victim's release may drop a shared block's last other holder, making
        the planned copy a free un-registration), so the executor re-derives
        boundary growth and falls back to :meth:`BlockManager.ensure_writable`
        for the copy-on-write case.
        """
        seq_id = seq.request.request_id
        tokens_after = seq.request.prompt_tokens + seq.generated_tokens + 1
        needed = self.pool.blocks_needed(tokens_after)
        growth = max(0, needed - self.pool.blocks_held(seq_id))
        if growth:
            self.pool.grow(seq_id, growth)
        else:
            # Deficit without boundary growth: the write needs copy-on-write
            # (a no-op if a preemption just dropped the block's last sharer).
            self.pool.ensure_writable(seq_id, tokens_after - 1)
        return self.pool.blocks_held(seq_id)


#: CLI-selectable allocation policies, keyed by report/CLI name.
ALLOCATION_POLICIES: dict[str, type[AllocationPolicy]] = {
    ReservationPolicy.name: ReservationPolicy,
    OnDemandPolicy.name: OnDemandPolicy,
}


def make_allocation_policy(name: str, pool: BlockManager) -> AllocationPolicy:
    """Instantiate a named allocation policy over a physical block pool."""
    try:
        policy_cls = ALLOCATION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown KV allocation policy {name!r}; known: {sorted(ALLOCATION_POLICIES)}"
        ) from None
    return policy_cls(pool)
