"""Discrete-event continuous-batching serving engine.

This is the request-level layer the paper's Table 7 stops short of: instead
of quoting the latency of one decode step per backend and batch size, it
drives those same step latencies as the *service times* of a discrete-event
simulation and measures what a client of an online system would see —
time-to-first-token (TTFT), time-per-output-token (TPOT) and sustained QPS
under a given arrival process.

How the clock maps to Table 7
-----------------------------
The engine holds one simulated clock (seconds).  At every iteration boundary
it forms a batch (securing KV capacity for running sequences, admitting
queued requests, evicting finished ones), counts the token rows the batch
contributes — a prefilling request contributes its whole prompt (or at most
``prefill_chunk`` of it), a decoding request contributes one token — and
advances the clock by ``backend.iteration_latency(spec, tokens).total``.
For a pure decode batch of ``B`` sequences that quantity *is* the Table 7
cell for batch size ``B``; prefill iterations and kernels with a batch cap
(GPTQ's GeMV) reuse the same model through the chunked
:meth:`~repro.runtime.backends.InferenceBackend.iteration_latency`.  Nothing
reads wall time, so a (backend, workload, config) triple always reproduces
the identical report bit for bit.

Memory model
------------
At construction the engine asks the backend how much VRAM the full-size
checkpoint leaves free (:meth:`~repro.runtime.backends.InferenceBackend.free_memory_gb`
— which raises the shared typed
:class:`~repro.runtime.backends.OutOfMemoryError` if the weights alone do
not fit, exactly like Table 7's PyTorch-FP16 row), reserves a fixed
activation headroom, and turns the remainder into a paged KV block pool.
*How* that pool is spent is a pluggable
:class:`~repro.serving.kv_cache.AllocationPolicy` (``kv_policy``):
``"reserve"`` (default) reserves each request's full decoded extent up
front, ``"ondemand"`` allocates blocks as tokens are written and preempts
the lowest-precedence running sequence when the pool runs dry
(recompute-on-resume).  Either way admission flows from the same memory
accounting as the paper's "20.5 GB vs ~90 GB" story: quantized weights
leave more blocks, more blocks sustain a larger concurrent batch — and the
on-demand policy converts the *unwritten* tail of every reservation into
additional concurrency on top of that.

Requests that declare a shared prompt prefix (``Request.prefix_id`` /
``prefix_tokens``) are admitted through the pool's prefix index: resident
prefix blocks are mapped read-only instead of re-allocated (and their
prefill compute is skipped), so K sequences sharing a system prompt store
its KV once.  The report's ``prefix_cache`` section counts hit tokens and
blocks, the peak number of physically shared blocks, copy-on-write copies,
and the dedup ratio (logical blocks mapped per physical block allocated).

Multi-GPU (``devices > 1``)
---------------------------
The routed experts are sharded across N copies of the backend's device by an
:class:`~repro.serving.cluster.ExpertPlacement` (``balanced`` round-robin or
``frequency`` skew-aware packing) and the KV pool becomes a
:class:`~repro.serving.cluster.ShardedBlockManager` — one per-device pool,
sized from that device's *own* leftover VRAM (replicated weights + its
experts' share), each admission pinned to the least-loaded home device.  The
iteration cost becomes the max over per-device costs: every device runs its
experts' share of the token load (split by Fig. 3 routing-frequency mass, so
skew creates stragglers) plus an all-to-all term for tokens dispatched to
remote experts.  ``devices=1`` reduces to the exact pre-sharding engine,
byte for byte (``tests/serving/test_golden_equivalence.py`` pins this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from .telemetry.metrics import MetricsRegistry
    from .telemetry.tracer import Tracer

from ..analysis.expert_frequency import (
    fig3_layer_frequencies,
    fig3_reference_frequencies,
)
from ..models.registry import FULL_MODEL_SPECS, FullModelSpec
from ..runtime.backends import InferenceBackend, OutOfMemoryError
from ..runtime.memory import build_inventory
from ..eval.reporting import summarize_latencies
from .cluster import (
    PLACEMENT_POLICIES,
    DeviceGroup,
    ExpertPlacement,
    LayeredExpertPlacement,
    RoutingDriftTracker,
    ShardedBlockManager,
    expert_migration_seconds,
    make_expert_placement,
    split_tokens,
)
from .kv_cache import (
    ALLOCATION_POLICIES,
    BlockManager,
    blocks_for_budget,
    kv_block_bytes,
    make_allocation_policy,
)
from .request import Request, RequestState, Sequence
from .scheduler import (
    ADMISSION_MODES,
    PREEMPT_MODES,
    ContinuousBatchingScheduler,
    FifoPriorityPolicy,
    SchedulerConfig,
    SchedulingPolicy,
)

__all__ = [
    "EngineConfig",
    "ServingReport",
    "ServingEngine",
    "REPORT_SCHEMA_KEYS",
    "expert_weight_fraction",
    "overlap_step_seconds",
]

#: Every key the serving report may contain, at any nesting level.  The
#: ``report_sha256`` regression gate hashes the report verbatim, so adding
#: a key anywhere changes the hash of every benchmark; RPT001 (milo lint)
#: rejects any key written in ``to_dict`` / ``_build_report`` /
#: ``_cluster_section`` / ``run`` that is not declared here, making every
#: schema change an explicit two-line diff (the write + this constant).
REPORT_SCHEMA_KEYS: frozenset[str] = frozenset(
    {
        # top level
        "backend",
        "model",
        # latency summary sections (ttft_s / tpot_s / e2e_s, built by
        # summarize_latencies — string constants live in repro.eval, so the
        # live-report exhaustiveness test guards them, not RPT001)
        "p50",
        "p95",
        "mean",
        "max",
        "device",
        "policy",
        "num_requests",
        "completed",
        "rejected",
        "iterations",
        "preemptions",
        "recomputed_tokens",
        "sim_time_s",
        "sustained_qps",
        "ttft_s",
        "tpot_s",
        "e2e_s",
        "batch",
        "kv_cache",
        "kv_utilization_peak",
        "prefix_cache",
        "completion_order",
        "requests",
        "stranded",
        "cluster",
        "overlap",
        # batch section
        "peak",
        "mean_tokens",
        # kv_cache section (and per-device pools)
        "kv",
        "scheduler",
        "num_blocks",
        "block_size",
        "peak_used_blocks",
        # prefix_cache section
        "hit_tokens",
        "hit_blocks",
        "shared_blocks_peak",
        "cow_copies",
        "dedup_ratio",
        # per-request records
        "request_id",
        "state",
        "arrival_s",
        "prompt_tokens",
        "new_tokens",
        "placement_epoch",
        # cluster section
        "devices",
        "placement",
        "straggler_ratio",
        "alltoall_tokens",
        "per_device",
        "experts",
        "expert_load_share",
        "kv_blocks",
        "kv_peak_used_blocks",
        # overlap section
        "efficiency",
        "hidden_comm_s",
        "overlap_ratio",
        "replacements",
        "migration_s",
        # migration section (disaggregation / swap preemption) + the
        # per-device "role" tag of disaggregated cluster sections
        "migration",
        "prefill_devices",
        "decode_devices",
        "handoffs",
        "handoff_blocks",
        "handoff_s",
        "rebalances",
        "rebalanced_blocks",
        "rebalance_s",
        "swaps",
        "swapped_blocks",
        "swap_in_s",
        "recompute_equivalent_s",
        "role",
    }
)

#: Batch-composition changes per drift-detection window of the overlap
#: mode's dynamic re-placement (a sliding window of measured routing).
#: Small enough that a workload whose routing disagrees with the offline
#: profile is re-placed early in the run, large enough that one odd batch
#: cannot trigger a migration storm.
DRIFT_WINDOW = 16

#: Totals handed from either engine loop to ``run``: (clock, iterations,
#: total_tokens, peak_batch, peak_used_blocks, peak_shared_blocks,
#: peak_used_per_device, straggler_max_s, straggler_mean_s,
#: alltoall_tokens, hidden_comm_s, comm_total_s, migration_s,
#: replacements, disagg_totals).  ``disagg_totals`` nests the KV-movement
#: accounting of disaggregated / swap-mode runs: (handoffs, handoff_blocks,
#: handoff_s, rebalances, rebalanced_blocks, rebalance_s, swap_in_s,
#: recompute_equivalent_s) — all zero whenever the run cannot move KV (the
#: fast path never does: disagg forces the general loop and reservation
#: allocation never preempts, so there is nothing to swap).  Both loops
#: MUST populate every slot identically — the fast/general
#: byte-equivalence tests hash reports built from these.
_RunTotals = tuple[
    float, int, int, int, int, int, list[int],
    float, float, int, float, float, float, int,
    tuple[int, int, float, int, int, float, float, float],
]


def overlap_step_seconds(
    compute_s: Iterable[float], comm_s: Iterable[float], efficiency: float
) -> tuple[float, float]:
    """Step time of one layered iteration with dispatch/combine overlap.

    ``compute_s[l]`` is layer ``l``'s critical-path compute and ``comm_s[l]``
    its all-to-all time; the communication of layer ``l`` overlaps with the
    compute of layer ``l + 1``, hiding ``efficiency * min(compute, comm)``
    seconds at each boundary.  Returns ``(step_seconds, hidden_seconds)``.

    At ``efficiency=0`` the result is bit-for-bit the serial layered cost
    ``sum_l (compute_s[l] + comm_s[l])`` — same accumulation order, and
    ``x - 0.0 == x`` exactly in IEEE arithmetic for the non-negative carries
    involved.  At ``efficiency=1`` every boundary degenerates to
    ``max(compute_l, comm_{l-1})``.  The hidden term never exceeds either
    operand, so the overlap step is monotonically <= the serial step for any
    efficiency in [0, 1] (``tests/serving/test_overlap.py`` pins both
    properties).
    """
    step = 0.0
    hidden_total = 0.0
    carry = 0.0  # the previous layer's combine still in flight
    for compute, comm in zip(compute_s, comm_s):
        hidden = efficiency * (compute if compute < carry else carry)
        step += compute + (carry - hidden)
        hidden_total += hidden
        carry = comm
    # The last layer's combine has no successor compute to hide under.
    step += carry
    return step, hidden_total


def expert_weight_fraction(spec: FullModelSpec) -> float:
    """Fraction of the model's parameters held in routed-expert matrices.

    Expert parallelism shards exactly this fraction across the device group;
    everything else (attention, shared experts, embeddings, norms, router,
    LM head) is replicated on every device.  For Mixtral-8x7B the routed
    experts are ~96% of the checkpoint, which is why sharding them lets even
    the FP16 model fit a group of 40 GB devices that it OOMs individually.
    """
    inventory = build_inventory(spec)
    expert_params = sum(m * n for m, n in inventory.expert_shapes)
    return min(1.0, expert_params / (spec.params_billions * 1e9))


@dataclass(frozen=True)
class EngineConfig:
    """Sizing and policy knobs of the serving engine."""

    #: Tokens of KV state per paged block.
    block_size: int = 16
    #: Cap on concurrent sequences (on top of the KV-capacity limit).
    max_batch_size: int = 64
    #: ``"queue"`` or ``"reject"`` — see :class:`~repro.serving.scheduler.SchedulerConfig`.
    admission: str = "queue"
    #: VRAM held back for activations / workspace, in GB.
    reserve_gb: float = 1.0
    #: KV allocation policy: ``"reserve"`` (full-extent reservation, PR 1
    #: default) or ``"ondemand"`` (vLLM-style growth with preemption).
    kv_policy: str = "reserve"
    #: Sarathi-style chunked prefill: feed at most this many prompt tokens
    #: per iteration; ``None`` processes the whole prompt in one iteration.
    prefill_chunk: int | None = None
    #: Number of devices serving the model expert-parallel.  ``1`` (default)
    #: is the single-device engine, bit-for-bit; ``N > 1`` shards the KV
    #: block pool and the routed experts across N copies of the backend's
    #: device, with the iteration cost the max over per-device costs.
    devices: int = 1
    #: DistServe-style disaggregation: the first ``prefill_devices`` devices
    #: form the prefill pool and the remaining ``decode_devices`` the decode
    #: pool.  New requests are admitted onto (and charged to) the prefill
    #: pool; the iteration that completes prefill hands the sequence's KV
    #: blocks off to the least-loaded decode device, priced over the
    #: interconnect and charged to the clock.  Both fields must be set
    #: together and sum to ``devices``; ``0``/``0`` (default) is the
    #: colocated engine, bit-for-bit.
    prefill_devices: int = 0
    decode_devices: int = 0
    #: What a preemption does to the victim's KV: ``"recompute"`` (default)
    #: frees it and re-prefills on resume; ``"swap"`` parks it in host
    #: memory and restores it over ``host_bandwidth`` on re-admission (the
    #: report's ``migration`` section prices both, so the modes are directly
    #: comparable).  See :data:`~repro.serving.scheduler.PREEMPT_MODES`.
    preempt_mode: str = "recompute"
    #: Expert placement policy: ``"balanced"`` round-robin or ``"frequency"``
    #: (Fig. 3 skew-aware greedy packing) — see
    #: :data:`~repro.serving.cluster.PLACEMENT_POLICIES`.
    placement: str = "balanced"
    #: Per-expert routing frequencies driving expert load and the
    #: ``frequency`` placement; ``None`` uses the paper's Fig. 3 reference
    #: skew (:func:`~repro.analysis.expert_frequency.fig3_reference_frequencies`).
    #: Must have one entry per routed expert of the served model.
    expert_frequencies: tuple[float, ...] | None = None
    #: Overlap-aware layered cost model (multi-device only): each MoE layer
    #: gets its own expert placement and ``max(per-device compute)`` term,
    #: and the all-to-all of layer ``l`` overlaps with the compute of layer
    #: ``l + 1`` (``step = sum_l max-ish(compute_l, comm_{l-1})``, scaled by
    #: the device's ``overlap_efficiency``).  Off by default — the serial
    #: whole-model cost stays byte-identical to PR 6.
    overlap: bool = False
    #: Per-layer per-expert routing frequencies for the overlap cost model:
    #: ``num_layers`` rows of ``num_experts`` frequencies (the Fig. 3
    #: heatmap).  ``None`` uses the deterministic depth-varying model
    #: (:func:`~repro.analysis.expert_frequency.fig3_layer_frequencies`).
    #: Requires ``overlap=True``.
    layer_frequencies: tuple | None = None
    #: Total-variation drift threshold triggering dynamic expert
    #: re-placement: when a layer's measured routing frequencies drift more
    #: than this from the profile its placement was packed for, the layer is
    #: re-packed (LPT) and the moved expert weights are priced over the
    #: interconnect.  ``None`` (default) disables re-placement.  Requires
    #: ``overlap=True``.
    replacement_threshold: float | None = None
    #: Run the KV pool's structural self-checks (``assert_no_leaks`` /
    #: ``check_invariants``) at the end of every run.  On by default (and in
    #: every test); benchmarks turn it off — it never changes the report,
    #: only whether accounting bugs raise.
    debug_checks: bool = True
    #: Use the steady-state fast path (reservation allocation + default
    #: scheduling policy only): uneventful pure-decode iterations are
    #: compressed into a tight loop that repeats the exact per-iteration
    #: float operations, so reports stay bit-identical to the general
    #: per-iteration loop (``False`` forces that loop; used by the
    #: equivalence tests and as an escape hatch).
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.reserve_gb < 0:
            raise ValueError("reserve_gb must be non-negative")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.admission not in ADMISSION_MODES:
            raise ValueError(f"admission must be 'queue' or 'reject', got {self.admission!r}")
        if self.kv_policy not in ALLOCATION_POLICIES:
            raise ValueError(
                f"kv_policy must be one of {sorted(ALLOCATION_POLICIES)}, got {self.kv_policy!r}"
            )
        if self.prefill_chunk is not None and self.prefill_chunk <= 0:
            raise ValueError("prefill_chunk must be positive (or None to disable)")
        if self.devices <= 0:
            raise ValueError("devices must be positive")
        if self.prefill_devices < 0 or self.decode_devices < 0:
            raise ValueError("prefill_devices/decode_devices must be non-negative")
        if (self.prefill_devices > 0) != (self.decode_devices > 0):
            raise ValueError(
                "disaggregation needs both pools: set prefill_devices and "
                "decode_devices together (or neither for the colocated engine)"
            )
        if self.prefill_devices and self.prefill_devices + self.decode_devices != self.devices:
            raise ValueError(
                f"prefill_devices + decode_devices must equal devices "
                f"({self.prefill_devices} + {self.decode_devices} != {self.devices})"
            )
        if self.preempt_mode not in PREEMPT_MODES:
            raise ValueError(
                f"preempt_mode must be one of {PREEMPT_MODES}, got {self.preempt_mode!r}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement must be one of {sorted(PLACEMENT_POLICIES)}, "
                f"got {self.placement!r}"
            )
        if self.expert_frequencies is not None:
            # len() rather than truthiness: callers pass numpy arrays
            # straight from fig3_reference_frequencies / measured profiles.
            if len(self.expert_frequencies) == 0:
                raise ValueError("expert_frequencies must be non-empty when given")
            if any(f <= 0 for f in self.expert_frequencies):
                raise ValueError("expert_frequencies must all be positive")
        if self.overlap and self.devices <= 1:
            raise ValueError("overlap requires devices > 1 (there is no all-to-all to hide)")
        if self.overlap and self.prefill_devices:
            raise ValueError(
                "overlap and disaggregation are mutually exclusive: the layered "
                "overlap cost model assumes one placement spanning every device"
            )
        if self.layer_frequencies is not None:
            if not self.overlap:
                raise ValueError("layer_frequencies requires overlap=True")
            if len(self.layer_frequencies) == 0:
                raise ValueError("layer_frequencies must be non-empty when given")
        if self.replacement_threshold is not None:
            if not self.overlap:
                raise ValueError("replacement_threshold requires overlap=True")
            if not 0.0 < self.replacement_threshold < 1.0:
                raise ValueError(
                    "replacement_threshold must lie in (0, 1) — it is a "
                    "total-variation distance between frequency distributions"
                )


@dataclass
class ServingReport:
    """Aggregate + per-request results of one simulated serving run."""

    backend: str
    model: str
    device: str
    kv_policy: str
    scheduling_policy: str
    num_requests: int
    completed: int
    rejected: int
    #: Requests still in the waiting queue when the run ended — never
    #: admitted, never rejected.  0 for every in-tree scheduling policy
    #: (and then absent from :meth:`to_dict`, keeping historical reports
    #: byte-identical); a conservative custom policy can strand work, and
    #: ``completed + rejected + stranded == num_requests`` always holds.
    stranded: int
    iterations: int
    preemptions: int
    recomputed_tokens: int
    sim_time_s: float
    sustained_qps: float
    ttft: dict[str, float]
    tpot: dict[str, float]
    e2e: dict[str, float]
    peak_batch: int
    mean_batch_tokens: float
    kv_num_blocks: int
    kv_block_size: int
    kv_peak_used_blocks: int
    kv_utilization_peak: float
    prefix_hit_tokens: int
    prefix_hit_blocks: int
    prefix_shared_blocks_peak: int
    prefix_cow_copies: int
    prefix_dedup_ratio: float
    completion_order: list[int]
    requests: list[dict]
    #: Multi-GPU section: per-device KV utilization, expert counts, straggler
    #: ratio and all-to-all traffic.  ``None`` on a single-device engine, and
    #: then absent from :meth:`to_dict` — keeping single-device reports
    #: byte-identical to the pre-sharding engine.
    cluster: dict | None = None
    #: Overlap-mode section: hidden communication seconds, overlap ratio,
    #: dynamic re-placement count and migration stall.  ``None`` (and absent
    #: from :meth:`to_dict`) unless the engine ran with ``overlap=True`` —
    #: serial reports stay byte-identical.
    overlap: dict[str, Any] | None = None
    #: KV-movement section of disaggregated / swap-mode runs: prefill→decode
    #: handoffs, decode-pool rebalance migrations, and swap-to-host traffic
    #: with the recompute-equivalent cost for comparison.  ``None`` (and
    #: absent from :meth:`to_dict`) on a colocated recompute-mode engine —
    #: historical reports stay byte-identical.
    migration: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (the ``milo serve`` report schema)."""
        out = {
            "backend": self.backend,
            "model": self.model,
            "device": self.device,
            "policy": {"kv": self.kv_policy, "scheduler": self.scheduling_policy},
            "num_requests": self.num_requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "iterations": self.iterations,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
            "sim_time_s": self.sim_time_s,
            "sustained_qps": self.sustained_qps,
            "ttft_s": dict(self.ttft),
            "tpot_s": dict(self.tpot),
            "e2e_s": dict(self.e2e),
            "batch": {"peak": self.peak_batch, "mean_tokens": self.mean_batch_tokens},
            "kv_cache": {
                "num_blocks": self.kv_num_blocks,
                "block_size": self.kv_block_size,
                "peak_used_blocks": self.kv_peak_used_blocks,
            },
            "kv_utilization_peak": self.kv_utilization_peak,
            "prefix_cache": {
                "hit_tokens": self.prefix_hit_tokens,
                "hit_blocks": self.prefix_hit_blocks,
                "shared_blocks_peak": self.prefix_shared_blocks_peak,
                "cow_copies": self.prefix_cow_copies,
                "dedup_ratio": self.prefix_dedup_ratio,
            },
            "completion_order": list(self.completion_order),
            "requests": [dict(r) for r in self.requests],
        }
        if self.stranded:
            out["stranded"] = self.stranded
        if self.cluster is not None:
            out["cluster"] = dict(self.cluster)
        if self.overlap is not None:
            out["overlap"] = dict(self.overlap)
        if self.migration is not None:
            out["migration"] = dict(self.migration)
        return out


class ServingEngine:
    """Simulated online serving on top of one Table 7 inference backend."""

    def __init__(
        self,
        backend: InferenceBackend,
        spec: FullModelSpec | str,
        config: EngineConfig | None = None,
    ) -> None:
        if isinstance(spec, str):
            if spec not in FULL_MODEL_SPECS:
                raise KeyError(f"unknown full model spec {spec!r}")
            spec = FULL_MODEL_SPECS[spec]
        self.backend = backend
        self.spec = spec
        self.config = config or EngineConfig()

        if self.config.expert_frequencies is not None:
            if len(self.config.expert_frequencies) != spec.num_experts:
                raise ValueError(
                    f"expert_frequencies has {len(self.config.expert_frequencies)} "
                    f"entries but {spec.name} routes over {spec.num_experts} experts"
                )
            frequencies = tuple(float(f) for f in self.config.expert_frequencies)
        else:
            frequencies = tuple(fig3_reference_frequencies(spec.num_experts))
        self.device_group = DeviceGroup.replicate(backend.device, self.config.devices)
        self.placement = make_expert_placement(
            self.config.placement, frequencies, self.config.devices
        )
        # -- disaggregated prefill/decode pools -------------------------------
        #: Each pool serves the *whole* model on its own devices, so each
        #: gets its own expert placement spanning only that pool — a prefill
        #: device's weight footprint (and therefore KV pool) follows from the
        #: prefill placement, not the global colocated one.
        self._disagg = self.config.prefill_devices > 0
        if self._disagg:
            self._prefill_pool = tuple(range(self.config.prefill_devices))
            self._decode_pool = tuple(
                range(self.config.prefill_devices, self.config.devices)
            )
            self._prefill_placement = make_expert_placement(
                self.config.placement, frequencies, self.config.prefill_devices
            )
            self._decode_placement = make_expert_placement(
                self.config.placement, frequencies, self.config.decode_devices
            )
        #: Interconnect time to dispatch one routed token to a remote expert
        #: and combine its output back (hidden activations cross twice, FP16).
        self._alltoall_s_per_token = (
            2 * spec.hidden_size * 2 / backend.device.interconnect_bandwidth
        )

        if self.config.devices == 1:
            # Single device: the exact pre-sharding construction (one global
            # free-memory check, one physical pool).
            free_gb = backend.free_memory_gb(spec)  # raises OutOfMemoryError on misfit
            kv_budget_gb = free_gb - self.config.reserve_gb
            num_blocks = blocks_for_budget(spec, kv_budget_gb, self.config.block_size)
            if num_blocks <= 0:
                raise OutOfMemoryError(
                    f"{backend.name}: {spec.name} weights fit but leave no VRAM for "
                    f"KV cache ({free_gb:.1f} GB free, {self.config.reserve_gb:.1f} GB reserved)",
                    backend=backend.name,
                    required_gb=backend.model_memory_gb(spec) + self.config.reserve_gb,
                    available_gb=backend.device.memory_gb,
                    device=self.device_group.names[0],
                )
            self.block_manager: BlockManager | ShardedBlockManager = BlockManager(
                num_blocks=num_blocks, block_size=self.config.block_size
            )
        else:
            # Expert parallelism: the routed experts are sharded by the
            # placement, everything else replicated, so each device's weight
            # footprint — and therefore its KV pool — depends on how many
            # experts it hosts.  Admission capacity is re-checked *per
            # device*: a global average can say "fits" while the device the
            # frequency placement loaded with extra experts has no room.
            total_weights_gb = backend.model_memory_gb(spec)
            expert_frac = expert_weight_fraction(spec)
            pools = []
            for d, name in enumerate(self.device_group.names):
                if self._disagg:
                    # Decode-pool misfits must name the decode device: its
                    # pool-local placement decides how many experts it hosts,
                    # and the error is actionable only if it points there.
                    pool_placement, local = self._pool_placement(d)
                    local_experts = pool_placement.experts_on(local)
                else:
                    local_experts = self.placement.experts_on(d)
                weights_gb = total_weights_gb * (
                    (1.0 - expert_frac) + expert_frac * local_experts / spec.num_experts
                )
                free_gb = backend.device.memory_gb - weights_gb
                kv_budget_gb = free_gb - self.config.reserve_gb
                num_blocks = blocks_for_budget(spec, kv_budget_gb, self.config.block_size)
                if num_blocks <= 0:
                    raise OutOfMemoryError(
                        f"{backend.name}: {name} hosts {local_experts}/{spec.num_experts} "
                        f"experts of {spec.name} ({weights_gb:.1f} GB of weights) and has "
                        f"no VRAM left for KV cache ({free_gb:.1f} GB free, "
                        f"{self.config.reserve_gb:.1f} GB reserved)",
                        backend=backend.name,
                        required_gb=weights_gb + self.config.reserve_gb,
                        available_gb=backend.device.memory_gb,
                        device=name,
                    )
                pools.append(
                    BlockManager(num_blocks=num_blocks, block_size=self.config.block_size)
                )
            self.block_manager = ShardedBlockManager(
                pools, device_names=self.device_group.names
            )
            if self._disagg:
                # New admissions land on the prefill pool; the scheduler
                # re-steers this restriction per head (decode pool for
                # swapped decode-phase resumes) and restores it after.
                self.block_manager.admit_devices = self._prefill_pool

        #: Per-block KV transfer seconds: prefill→decode handoffs and
        #: rebalance migrations cross the interconnect; swap-to-host traffic
        #: crosses the host (PCIe) link.  Priced per paged block — the unit
        #: both the pools and the report account in.
        block_bytes = kv_block_bytes(spec, self.config.block_size)
        self._handoff_s_per_block = block_bytes / backend.device.interconnect_bandwidth
        self._swap_s_per_block = block_bytes / backend.device.host_bandwidth

        #: Memoized backend step latency per token-load (pure in the load for
        #: a fixed backend/spec, so it persists across runs).
        self._latency_cache: dict[int, float] = {}
        #: Memoized per-iteration cost beyond the single-int latency cache:
        #: keyed by the batch token count (single device) or by
        #: ``(tokens, per-device home token counts)`` (multi-device), holding
        #: the full ``(step, max_compute, mean_compute, remotes)`` result of
        #: the device loop.
        self._cost_cache: dict[object, tuple[Any, ...]] = {}

        # -- telemetry (opt-in; see repro.serving.telemetry) ------------------
        #: Attached via :meth:`enable_telemetry`; ``None`` keeps every hook
        #: on the hot paths behind a single ``is not None`` test, so the
        #: disabled engine is byte-identical and near-free (goldens +
        #: BENCH_engine report_sha256 pin the former, the
        #: ``telemetry_overhead_frac`` benchmark gate the latter).
        self.tracer: Tracer | None = None
        self.metrics: MetricsRegistry | None = None
        #: Memoized per-device compute tuples for iteration trace events —
        #: telemetry-only derived data, deliberately separate from
        #: ``_cost_cache`` so enabling tracing cannot perturb the report
        #: math's memo population order.
        self._telemetry_cost_cache: dict[object, tuple[float, ...]] = {}

        # -- overlap-aware layered cost model --------------------------------
        self._overlap = self.config.overlap
        self._drift: RoutingDriftTracker | None = None
        #: Bumped at every dynamic expert re-placement; part of the overlap
        #: cost memo key (a re-packed layer changes every iteration cost) and
        #: stamped onto sequences at admission via the scheduler.
        self._placement_epoch = 0
        if self._overlap:
            if self.config.layer_frequencies is not None:
                rows = [tuple(float(f) for f in row) for row in self.config.layer_frequencies]
                if len(rows) != spec.num_layers:
                    raise ValueError(
                        f"layer_frequencies has {len(rows)} rows but {spec.name} "
                        f"has {spec.num_layers} MoE layers"
                    )
            else:
                rows = [
                    tuple(row)
                    for row in fig3_layer_frequencies(spec.num_layers, spec.num_experts)
                ]
            #: Pristine per-layer profile rows, kept so repeated ``run()``
            #: calls can rebuild the layered placement dynamic re-placement
            #: may have mutated (run-to-run determinism).
            self._layer_rows = rows
            self.layered_placement = LayeredExpertPlacement(self.placement, rows)
            self._alltoall_s_per_layer_token = self._alltoall_s_per_token / spec.num_layers
            self._overlap_efficiency = min(
                1.0, max(0.0, backend.device.overlap_efficiency)
            )
            #: Bytes of one expert's weights in one layer — the unit of
            #: migration priced when re-placement moves a (layer, expert)
            #: shard across the interconnect.
            self._expert_layer_bytes = (
                backend.model_memory_gb(spec)
                * expert_weight_fraction(spec)
                * 1024**3
                / (spec.num_experts * spec.num_layers)
            )
            if self.config.replacement_threshold is not None:
                self._drift = RoutingDriftTracker(rows, window=DRIFT_WINDOW)

    def _pool_placement(self, d: int) -> tuple[ExpertPlacement, int]:
        """Pool-local placement serving global device ``d``, and its index in it.

        Disaggregated engines only: devices ``0..P-1`` belong to the prefill
        placement, ``P..P+D-1`` to the decode placement.
        """
        prefill = self.config.prefill_devices
        if d < prefill:
            return self._prefill_placement, d
        return self._decode_placement, d - prefill

    # -- capacity ----------------------------------------------------------------
    def max_batch_size(self, tokens_per_sequence: int) -> int:
        """Max concurrent sequences of a given total length this engine sustains.

        Sized for the reservation policy (each sequence pinning its full
        extent); the on-demand policy packs at least this many.
        """
        return min(
            self.config.max_batch_size,
            self.block_manager.max_sequences(tokens_per_sequence),
        )

    def make_scheduler(self) -> ContinuousBatchingScheduler:
        """Build the scheduler/policy stack for one run over this engine's pool."""
        scheduler = ContinuousBatchingScheduler(
            self.block_manager,
            SchedulerConfig(
                max_batch_size=self.config.max_batch_size,
                admission=self.config.admission,
                prefill_chunk=self.config.prefill_chunk,
                preempt_mode=self.config.preempt_mode,
            ),
            allocation=make_allocation_policy(self.config.kv_policy, self.block_manager),
            policy=FifoPriorityPolicy(),
        )
        if self._disagg:
            scheduler.prefill_pool = self._prefill_pool
            scheduler.decode_pool = self._decode_pool
        return scheduler

    # -- telemetry ---------------------------------------------------------------
    def enable_telemetry(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Attach observability sinks (see :mod:`repro.serving.telemetry`).

        Pass a *fresh* :class:`~repro.serving.telemetry.Tracer` /
        :class:`~repro.serving.telemetry.MetricsRegistry` per ``run`` —
        events append across runs otherwise.  Passing ``None`` for both
        detaches telemetry and restores the byte-identical disabled path.
        """
        self.tracer = tracer
        self.metrics = metrics
        if tracer is not None:
            meta = tracer.meta
            meta.setdefault("model", self.spec.name)
            meta.setdefault("backend", self.backend.name)
            meta.setdefault("devices", list(self.device_group.names))
            meta.setdefault("block_size", self.config.block_size)
            meta.setdefault("overlap", self._overlap)
        block_manager = self.block_manager
        if isinstance(block_manager, ShardedBlockManager):
            for pool in block_manager.pools:
                pool.tracer = tracer
        else:
            block_manager.tracer = tracer

    def _telemetry_per_device(
        self, tokens: int, home_key: tuple[int, ...]
    ) -> tuple[float, ...]:
        """Per-device compute seconds of one iteration, for trace events.

        Derived from the same memoized latencies the cost model reads, but
        kept in a separate telemetry-only memo: the report math's caches see
        the identical access pattern whether or not tracing is on.  The
        split depends only on the token count (device mass fixes the
        shares; ``home_key`` shifts communication, not compute), so the key
        is ``tokens`` — epoch-tagged under overlap, where re-placement
        changes each layer's split.
        """
        pool_tokens: tuple[int, int] | None = None
        if self._overlap:
            key: object = (tokens, self._placement_epoch)
        elif self._disagg:
            # Each pool splits its *own* token share by its own placement's
            # mass, so the split depends on the (prefill, decode) pool token
            # pair rather than the batch total.
            prefill = self.config.prefill_devices
            pool_tokens = (sum(home_key[:prefill]), sum(home_key[prefill:]))
            key = ("dg",) + pool_tokens
        else:
            key = tokens
        entry = self._telemetry_cost_cache.get(key)
        if entry is not None:
            return entry
        latency_cache = self._latency_cache
        backend = self.backend
        spec = self.spec
        if self._overlap:
            num_layers = spec.num_layers
            per_device = [0.0] * len(self.device_group)
            for mass in self.layered_placement.layer_mass:
                for d, load in enumerate(split_tokens(tokens, mass)):
                    if load:
                        whole = latency_cache.get(load)
                        if whole is None:
                            whole = backend.iteration_latency(spec, load).total
                            latency_cache[load] = whole
                        per_device[d] += whole / num_layers
            entry = tuple(per_device)
        elif pool_tokens is not None:
            computes = []
            for placement, ptokens in zip(
                (self._prefill_placement, self._decode_placement), pool_tokens
            ):
                if not ptokens:
                    computes.extend([0.0] * len(placement.device_mass))
                    continue
                for load in split_tokens(ptokens, placement.device_mass):
                    if load:
                        compute = latency_cache.get(load)
                        if compute is None:
                            compute = backend.iteration_latency(spec, load).total
                            latency_cache[load] = compute
                        computes.append(compute)
                    else:
                        computes.append(0.0)
            entry = tuple(computes)
        else:
            computes = []
            for load in split_tokens(tokens, self.placement.device_mass):
                if load:
                    compute = latency_cache.get(load)
                    if compute is None:
                        compute = backend.iteration_latency(spec, load).total
                        latency_cache[load] = compute
                    computes.append(compute)
                else:
                    computes.append(0.0)
            entry = tuple(computes)
        if len(self._telemetry_cost_cache) >= 262144:
            self._telemetry_cost_cache.clear()
        self._telemetry_cost_cache[key] = entry
        return entry

    def _sample_metrics(
        self,
        metrics: MetricsRegistry,
        scheduler: ContinuousBatchingScheduler,
        clock: float,
        iterations: int,
        batch: int,
    ) -> float:
        """Record one metrics sample; returns the next due time."""
        block_manager = self.block_manager
        num_devices = len(self.device_group)
        free_per_device = (
            [block_manager.free_blocks_on(d) for d in range(num_devices)]
            if num_devices > 1
            else None
        )
        metrics.sample(
            clock,
            iterations,
            batch=batch,
            waiting=len(scheduler.waiting),
            preemptions=scheduler.preemptions,
            placement_epoch=self._placement_epoch,
            used_blocks=block_manager.used_blocks,
            free_blocks=block_manager.free_blocks,
            free_per_device=free_per_device,
        )
        return metrics.next_due

    # -- simulation --------------------------------------------------------------
    def run(self, requests: Iterable[Request]) -> ServingReport:
        """Serve ``requests`` to completion and report client-visible metrics."""
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        scheduler = self.make_scheduler()
        scheduler.tracer = self.tracer
        self.block_manager.reset_stats()
        if self._overlap:
            # Dynamic re-placement mutates the layered placement mid-run;
            # rebuild it from the pristine profile so every run() starts from
            # the same state (run-to-run determinism), and drop the cost memo
            # whose epoch-tagged keys would otherwise alias across runs.
            if self._placement_epoch > 0:
                self.layered_placement = LayeredExpertPlacement(
                    self.placement, self._layer_rows
                )
                self._placement_epoch = 0
                self._cost_cache.clear()
                self._telemetry_cost_cache.clear()
            if self._drift is not None:
                self._drift.reset()
        # The steady-state fast path requires two properties the general loop
        # does not: blocks move only at admission/eviction (reservation
        # allocation — no growth, preemption or copy-on-write mid-decode),
        # and the admission outcome is a pure function of (waiting, running,
        # pool) state (the default policy), so a failed admit need not be
        # retried until that state changes.  Everything else takes the
        # general per-iteration loop.  Both produce bit-identical reports
        # (goldens + equivalence tests pin this).
        if (
            self.config.fast_path
            and not self._disagg
            and not scheduler.allocation.grows
            and type(scheduler.policy) in (SchedulingPolicy, FifoPriorityPolicy)
        ):
            totals = self._run_fast(pending, scheduler)
        else:
            totals = self._run_general(pending, scheduler)
        (clock, iterations, total_tokens, peak_batch, peak_used_blocks,
         peak_shared_blocks, peak_used_per_device,
         straggler_max_s, straggler_mean_s, alltoall_tokens,
         hidden_comm_s, comm_total_s, migration_s, replacements,
         disagg_totals) = totals
        if self.tracer is not None:
            self.tracer.now = clock  # strand events carry the final clock
        scheduler.drain_stranded()
        if self.config.debug_checks:
            self.block_manager.assert_no_leaks()
        cluster = None
        if len(self.device_group) > 1:
            cluster = self._cluster_section(
                peak_used_per_device, straggler_max_s, straggler_mean_s, alltoall_tokens
            )
        overlap = None
        if self._overlap:
            overlap = {
                "efficiency": self._overlap_efficiency,
                "hidden_comm_s": hidden_comm_s,
                "overlap_ratio": (
                    hidden_comm_s / comm_total_s if comm_total_s else 0.0
                ),
                "replacements": replacements,
                "migration_s": migration_s,
            }
        migration = None
        if self._disagg or self.config.preempt_mode == "swap":
            (handoffs, handoff_blocks, handoff_s, rebalances, rebalanced_blocks,
             rebalance_s, swap_in_s, recompute_equivalent_s) = disagg_totals
            migration = {
                "prefill_devices": self.config.prefill_devices,
                "decode_devices": self.config.decode_devices,
                "handoffs": handoffs,
                "handoff_blocks": handoff_blocks,
                "handoff_s": handoff_s,
                "rebalances": rebalances,
                "rebalanced_blocks": rebalanced_blocks,
                "rebalance_s": rebalance_s,
                "swaps": scheduler.swaps,
                "swapped_blocks": scheduler.swapped_blocks,
                "swap_in_s": swap_in_s,
                # What the swapped KV would have cost to re-prefill instead:
                # swap vs recompute directly comparable from one run.
                "recompute_equivalent_s": recompute_equivalent_s,
            }
        return self._build_report(
            scheduler, clock, iterations, total_tokens, peak_batch, peak_used_blocks,
            peak_shared_blocks, cluster, overlap, migration,
            first_submitted=pending[0].arrival_time if pending else None,
            num_submitted=len(pending),
        )

    def _iteration_cost(
        self, tokens: int, home_key: tuple[int, ...] | None
    ) -> tuple[float, float, float, tuple[float, ...] | None]:
        """Memoized cost of one iteration over ``tokens`` batch token rows.

        The iteration costs the *max* over per-device costs: each device
        runs its resident experts' share of the token load (split by routing
        frequency mass — skew makes stragglers) plus the all-to-all dispatch
        of routed tokens whose home device is not the expert's.  One device
        degenerates to the whole batch at zero dispatch — the exact
        pre-sharding iteration latency.

        ``home_key`` is ``None`` on a single device (the cost depends only
        on the token count) and the tuple of per-device home token counts
        otherwise.  Returns ``(step, max_compute, mean_compute,
        remote_tokens)``: the clock advance, the slowest device's compute,
        the mean compute over devices that received load, and the
        iteration's total remote-routed token count as an *integer*
        (round-half-up of the exact rational Σ_d load_d·ept·(tokens -
        home_d)/tokens; ``None`` single-device) — everything the caller
        accumulates per iteration, so the memoized replay performs the
        identical float operations the un-memoized loop did.  The *step*
        math keeps the exact float remote term (the clock is pinned byte
        for byte by the goldens); only the traffic *accounting* is integral.
        """
        key = tokens if home_key is None else (tokens, home_key)
        entry = self._cost_cache.get(key)
        if entry is not None:
            return entry
        latency_cache = self._latency_cache
        if home_key is None:
            compute = latency_cache.get(tokens)
            if compute is None:
                compute = self.backend.iteration_latency(self.spec, tokens).total
                latency_cache[tokens] = compute
            entry = (compute, compute, compute, None)
        else:
            step = 0.0
            max_compute = 0.0
            iter_compute_s = 0.0
            iter_loaded = 0
            remote_numer = 0  # Σ_d load_d · ept · (tokens - home_d), exact int
            experts_per_token = self.spec.experts_per_token
            alltoall_s = self._alltoall_s_per_token
            for d, load in enumerate(split_tokens(tokens, self.placement.device_mass)):
                if load:
                    compute = latency_cache.get(load)
                    if compute is None:
                        compute = self.backend.iteration_latency(self.spec, load).total
                        latency_cache[load] = compute
                    # Straggler accounting covers only devices that received
                    # token load this iteration: `split_tokens` hands a
                    # low-mass device zero tokens in a small batch, and its
                    # 0.0 compute must not deflate the mean.
                    iter_compute_s += compute
                    iter_loaded += 1
                else:
                    compute = 0.0
                remote_int = load * experts_per_token * (tokens - home_key[d])
                remote_numer += remote_int
                remote = remote_int / tokens
                max_compute = max(max_compute, compute)
                step = max(step, compute + remote * alltoall_s)
            mean_compute = iter_compute_s / iter_loaded if iter_loaded else 0.0
            # Round-half-up of remote_numer / tokens: token counts are whole.
            remote_tokens = (2 * remote_numer + tokens) // (2 * tokens)
            entry = (step, max_compute, mean_compute, remote_tokens)
        if len(self._cost_cache) >= 262144:
            # Multi-device home mixes are unbounded in principle; keep the
            # memo's footprint flat on adversarial workloads.
            self._cost_cache.clear()
        self._cost_cache[key] = entry
        return entry

    def _iteration_cost_disagg(
        self, tokens: int, home_key: tuple[int, ...]
    ) -> tuple[float, float, float, int]:
        """Memoized cost of one disaggregated iteration.

        The prefill pool and the decode pool run *concurrently*: each pool
        splits its own token share (``home_key`` entries of its devices) by
        its own placement's mass, pays its own all-to-all for tokens routed
        to remote experts *within the pool*, and the iteration's step is the
        max over every device of both pools.  A pool with no tokens this
        iteration contributes nothing (its devices are idle).  Returns the
        same ``(step, max_compute, mean_compute, remote_tokens)`` tuple as
        :meth:`_iteration_cost`, with ``remote_tokens`` summed over pools
        (round-half-up per pool, exact-integer accounting end to end).

        Shares ``_cost_cache`` and the ``(tokens, home_key)`` key shape with
        the colocated cost — safe because one engine instance is either
        disaggregated or not for its whole lifetime.
        """
        key = (tokens, home_key)
        entry = self._cost_cache.get(key)
        if entry is not None:
            return entry
        latency_cache = self._latency_cache
        experts_per_token = self.spec.experts_per_token
        alltoall_s = self._alltoall_s_per_token
        prefill = self.config.prefill_devices
        step = 0.0
        max_compute = 0.0
        iter_compute_s = 0.0
        iter_loaded = 0
        remote_tokens = 0
        for placement, pool_home in (
            (self._prefill_placement, home_key[:prefill]),
            (self._decode_placement, home_key[prefill:]),
        ):
            pool_tokens = sum(pool_home)
            if not pool_tokens:
                continue
            remote_numer = 0
            for d, load in enumerate(split_tokens(pool_tokens, placement.device_mass)):
                if load:
                    compute = latency_cache.get(load)
                    if compute is None:
                        compute = self.backend.iteration_latency(self.spec, load).total
                        latency_cache[load] = compute
                    iter_compute_s += compute
                    iter_loaded += 1
                else:
                    compute = 0.0
                remote_int = load * experts_per_token * (pool_tokens - pool_home[d])
                remote_numer += remote_int
                remote = remote_int / pool_tokens
                max_compute = max(max_compute, compute)
                step = max(step, compute + remote * alltoall_s)
            remote_tokens += (2 * remote_numer + pool_tokens) // (2 * pool_tokens)
        mean_compute = iter_compute_s / iter_loaded if iter_loaded else 0.0
        entry = (step, max_compute, mean_compute, remote_tokens)
        if len(self._cost_cache) >= 262144:
            self._cost_cache.clear()
        self._cost_cache[key] = entry
        return entry

    def _iteration_cost_overlap(
        self, tokens: int, home_key: tuple[int, ...]
    ) -> tuple[float, float, float, int, float, float]:
        """Memoized layered cost of one iteration under the overlap model.

        Decomposes the whole-model iteration into ``num_layers`` MoE layers:
        layer ``l`` splits the batch by *its own* placement's device mass
        (Fig. 3 skew differs by layer), costs ``max_d compute_{l,d}`` on the
        critical path, and its all-to-all overlaps with layer ``l + 1``'s
        compute through :func:`overlap_step_seconds`.  Per-device compute at
        a given load is the whole-model latency divided by ``num_layers`` —
        so a layered run whose layers all split identically reproduces the
        serial device-loop costs exactly.

        Keyed by ``(tokens, home_key, placement_epoch)``: dynamic
        re-placement changes every layer cost, so epochs must not share memo
        entries.  Returns ``(step, max_compute, mean_compute, remote_tokens,
        hidden_s, comm_s)`` — the serial tuple plus the iteration's hidden
        communication seconds and total (un-overlapped) communication
        seconds.
        """
        key = (tokens, home_key, self._placement_epoch)
        entry = self._cost_cache.get(key)
        if entry is not None:
            return entry
        latency_cache = self._latency_cache
        spec = self.spec
        backend = self.backend
        num_layers = spec.num_layers
        experts_per_token = spec.experts_per_token
        alltoall_layer_s = self._alltoall_s_per_layer_token
        computes: list[float] = []
        comms: list[float] = []
        max_compute_s = 0.0
        mean_compute_s = 0.0
        remote_numer = 0
        for mass in self.layered_placement.layer_mass:
            layer_max = 0.0
            layer_sum = 0.0
            layer_loaded = 0
            layer_remote = 0.0
            for d, load in enumerate(split_tokens(tokens, mass)):
                if load:
                    whole = latency_cache.get(load)
                    if whole is None:
                        whole = backend.iteration_latency(spec, load).total
                        latency_cache[load] = whole
                    compute = whole / num_layers
                    layer_sum += compute
                    layer_loaded += 1
                    if compute > layer_max:
                        layer_max = compute
                remote_int = load * experts_per_token * (tokens - home_key[d])
                remote_numer += remote_int
                remote = remote_int / tokens
                if remote > layer_remote:
                    layer_remote = remote
            computes.append(layer_max)
            comms.append(layer_remote * alltoall_layer_s)
            max_compute_s += layer_max
            mean_compute_s += layer_sum / layer_loaded if layer_loaded else 0.0
        step, hidden_s = overlap_step_seconds(
            computes, comms, self._overlap_efficiency
        )
        comm_s = 0.0
        for c in comms:
            comm_s += c
        # Mean remote tokens per layer, round-half-up — comparable to the
        # serial engine's once-per-iteration whole-model accounting.
        denom = num_layers * tokens
        remote_tokens = (2 * remote_numer + denom) // (2 * denom)
        entry = (step, max_compute_s, mean_compute_s, remote_tokens, hidden_s, comm_s)
        if len(self._cost_cache) >= 262144:
            self._cost_cache.clear()
        self._cost_cache[key] = entry
        return entry

    def _observe_routing(
        self, tokens: int, scheduler: ContinuousBatchingScheduler
    ) -> float:
        """Feed one iteration's routing into the drift tracker; maybe re-place.

        Called once per *distinct* batch composition (the fast path's
        macro-stepped iterations repeat the same composition, so observing
        only on change keeps the two loops equivalent).  When the sliding
        window fills, compares measured per-layer frequencies against the
        profile each layer's placement was packed for and re-packs drifted
        layers, returning the migration stall (seconds) to add to the clock
        — 0.0 when nothing moved.
        """
        drift = self._drift
        drift.observe(tokens)
        if not drift.window_full:
            return 0.0
        measured = drift.measured()
        drift.reset()
        moved = self.layered_placement.repack_drifted(
            measured, self.config.replacement_threshold
        )
        if not moved:
            return 0.0
        self._placement_epoch += 1
        scheduler.placement_epoch = self._placement_epoch
        return expert_migration_seconds(
            moved, self._expert_layer_bytes, self.backend.device.interconnect_bandwidth
        )

    def _run_general(
        self, pending: list[Request], scheduler: ContinuousBatchingScheduler
    ) -> _RunTotals:
        """The per-iteration loop: correct for every policy combination.

        Structurally the pre-PR-6 loop with the per-iteration work fused
        into one walk over the batch (token counting + per-device home
        tokens), the device cost loop memoized, eviction skipped on
        iterations nothing finished, and ``ensure_capacity`` skipped for
        non-growing allocation.
        """
        clock = 0.0
        next_arrival = 0
        n_pending = len(pending)
        iterations = 0
        total_tokens = 0
        peak_batch = 0
        peak_used_blocks = 0
        peak_shared_blocks = 0
        num_devices = len(self.device_group)
        peak_used_per_device = [0] * num_devices
        straggler_max_s = 0.0
        straggler_mean_s = 0.0
        alltoall_tokens = 0
        hidden_comm_s = 0.0
        comm_total_s = 0.0
        migration_s = 0.0
        replacements = 0
        handoffs = 0
        handoff_blocks = 0
        handoff_s = 0.0
        rebalances = 0
        rebalanced_blocks = 0
        rebalance_s = 0.0
        swap_in_s = 0.0
        recompute_equivalent_s = 0.0
        chunk = scheduler.config.prefill_chunk
        grows = scheduler.allocation.grows
        multi = num_devices > 1
        overlap_mode = self._overlap
        disagg = self._disagg
        swap_mode = scheduler.config.preempt_mode == "swap"
        rebalance_pool = disagg and len(self._decode_pool) > 1
        drift = self._drift if overlap_mode else None
        last_ckey = None
        block_manager = self.block_manager
        finished_state = RequestState.FINISHED
        tracer = self.tracer
        metrics = self.metrics
        #: Next due metrics sample time (``inf`` disables the clock compare).
        metrics_due = metrics.next_due if metrics is not None else float("inf")
        iter_t0 = 0.0
        iter_stall = 0.0

        while next_arrival < n_pending or scheduler.has_work:
            while next_arrival < n_pending and pending[next_arrival].arrival_time <= clock:
                scheduler.add_request(pending[next_arrival])
                next_arrival += 1
            if tracer is not None:
                # Preemption and KV events inside ensure_capacity/admit
                # timestamp with the tracer clock.
                tracer.now = clock
            if grows:
                # Running sequences secure the blocks their next token needs
                # (preempting the low-precedence tail if the pool is dry)
                # before any queued request may claim free blocks.
                scheduler.ensure_capacity()
            admitted = scheduler.admit(clock)
            if swap_mode and admitted:
                # Re-admitted swap victims restore their parked KV over the
                # host link before the batch may step; the stall is serial
                # (one PCIe link) and charged to the clock.
                for seq in admitted:
                    if seq.swapped_tokens:
                        blocks = block_manager.blocks_needed(seq.swapped_tokens)
                        stall = blocks * self._swap_s_per_block
                        resume_t0 = clock
                        clock += stall
                        swap_in_s += stall
                        # What discarding instead would have cost: one
                        # re-prefill pass over the swapped tokens.
                        lat = self._latency_cache.get(seq.swapped_tokens)
                        if lat is None:
                            lat = self.backend.iteration_latency(
                                self.spec, seq.swapped_tokens
                            ).total
                            self._latency_cache[seq.swapped_tokens] = lat
                        recompute_equivalent_s += lat
                        if tracer is not None:
                            tracer.swap_in(seq, resume_t0, clock, blocks, stall)
                            tracer.now = clock
                        seq.swapped_tokens = 0
            running = scheduler.running
            if not running:
                if next_arrival < n_pending:
                    # Idle: jump the clock to the next arrival.
                    clock = max(clock, pending[next_arrival].arrival_time)
                    continue
                break

            if multi:
                tokens = 0
                home_tokens = [0] * num_devices
                for seq in running:
                    t = seq.tokens_this_iteration(chunk)
                    tokens += t
                    home_tokens[seq.home_device] += t
                home_key = tuple(home_tokens)
                if overlap_mode:
                    (step, max_compute, mean_compute, remote_tokens,
                     hidden, comm) = self._iteration_cost_overlap(tokens, home_key)
                    hidden_comm_s += hidden
                    comm_total_s += comm
                elif disagg:
                    step, max_compute, mean_compute, remote_tokens = (
                        self._iteration_cost_disagg(tokens, home_key)
                    )
                else:
                    step, max_compute, mean_compute, remote_tokens = (
                        self._iteration_cost(tokens, home_key)
                    )
                alltoall_tokens += remote_tokens
                straggler_max_s += max_compute
                straggler_mean_s += mean_compute
            else:
                tokens = 0
                for seq in running:
                    tokens += seq.tokens_this_iteration(chunk)
                step = self._iteration_cost(tokens, None)[0]
            if tracer is not None:
                iter_t0 = clock  # float addition is not invertible
            clock += step
            iterations += 1
            total_tokens += tokens
            if drift is not None:
                # One observation per distinct batch composition — the fast
                # path's macro-stepped iterations repeat the same (tokens,
                # home) key and never observe, so the two loops agree.
                ckey = (tokens, home_key)
                if ckey != last_ckey:
                    last_ckey = ckey
                    stall = self._observe_routing(tokens, scheduler)
                    if stall:
                        clock += stall
                        migration_s += stall
                        replacements += 1
                        if tracer is not None:
                            iter_stall = stall
            batch = len(running)
            if tracer is not None:
                if multi:
                    if overlap_mode:
                        tracer.iteration(
                            iterations - 1, iter_t0, clock, tokens, batch,
                            compute=self._telemetry_per_device(tokens, home_key),
                            max_compute=max_compute, mean_compute=mean_compute,
                            remote_tokens=remote_tokens,
                            hidden=hidden, comm=comm, stall=iter_stall,
                        )
                    else:
                        tracer.iteration(
                            iterations - 1, iter_t0, clock, tokens, batch,
                            compute=self._telemetry_per_device(tokens, home_key),
                            max_compute=max_compute, mean_compute=mean_compute,
                            remote_tokens=remote_tokens, stall=iter_stall,
                        )
                else:
                    tracer.iteration(iterations - 1, iter_t0, clock, tokens, batch)
                iter_stall = 0.0
                tracer.now = clock  # finish/KV-free events below carry it
            if metrics is not None and clock >= metrics_due:
                metrics_due = self._sample_metrics(
                    metrics, scheduler, clock, iterations, batch
                )
            if batch > peak_batch:
                peak_batch = batch
            used = block_manager.used_blocks
            if used > peak_used_blocks:
                peak_used_blocks = used
            shared = block_manager.shared_blocks
            if shared > peak_shared_blocks:
                peak_shared_blocks = shared
            if multi:
                for d in range(num_devices):
                    u = block_manager.used_blocks_on(d)
                    if u > peak_used_per_device[d]:
                        peak_used_per_device[d] = u

            finished_any = False
            if disagg:
                # The walk additionally collects sequences whose prefill just
                # completed: their KV must leave the prefill pool before the
                # next iteration (first token already emitted — handoff
                # delays the second).
                handoff_ready: list[Sequence] | None = None
                for seq in running:
                    was_prefill = not seq.prefill_done
                    seq.advance(clock, chunk)
                    if seq.state is finished_state:
                        finished_any = True
                        if tracer is not None and was_prefill and seq.prefill_done:
                            tracer.first_token(seq, clock)
                    elif was_prefill and seq.prefill_done:
                        if tracer is not None:
                            tracer.first_token(seq, clock)
                        if handoff_ready is None:
                            handoff_ready = []
                        handoff_ready.append(seq)
                if handoff_ready:
                    for seq in handoff_ready:
                        req_id = seq.request.request_id
                        blocks = block_manager.blocks_held(req_id)
                        dst = -1
                        best_free = -1
                        for d in self._decode_pool:
                            free = block_manager.free_blocks_on(d)
                            if free >= blocks and free > best_free:
                                best_free = free
                                dst = d
                        if dst < 0:
                            # No decode device can hold the KV right now:
                            # preempt off the prefill device instead
                            # (preempt_mode decides recompute vs swap) and
                            # retry the whole admission later.
                            scheduler._preempt(seq)
                            continue
                        src = seq.home_device
                        block_manager.migrate(req_id, src, dst)
                        seq.home_device = dst
                        stall = blocks * self._handoff_s_per_block
                        transfer_t0 = clock
                        clock += stall
                        handoffs += 1
                        handoff_blocks += blocks
                        handoff_s += stall
                        if tracer is not None:
                            tracer.handoff(
                                seq, transfer_t0, clock, src, dst, blocks, stall
                            )
                            tracer.now = clock
            elif tracer is None:
                for seq in running:
                    seq.advance(clock, chunk)
                    if seq.state is finished_state:
                        finished_any = True
            else:
                for seq in running:
                    was_prefill = not seq.prefill_done
                    seq.advance(clock, chunk)
                    if was_prefill and seq.prefill_done:
                        # The iteration that completes (re-)prefill emits the
                        # first token; a single-token request finishes in the
                        # same iteration and its finish event follows below.
                        tracer.first_token(seq, clock)
                    if seq.state is finished_state:
                        finished_any = True
            if finished_any:
                scheduler.evict_finished()
                if rebalance_pool:
                    # Elasticity hook: batch membership changed, so the
                    # decode pool's load may have skewed — let the policy
                    # move (at most) one decode sequence per boundary.
                    move = scheduler.policy.select_rebalance(
                        running, block_manager, self._decode_pool
                    )
                    if move is not None:
                        mover, dst = move
                        src = mover.home_device
                        blocks = block_manager.migrate(
                            mover.request.request_id, src, dst
                        )
                        mover.home_device = dst
                        stall = blocks * self._handoff_s_per_block
                        transfer_t0 = clock
                        clock += stall
                        rebalances += 1
                        rebalanced_blocks += blocks
                        rebalance_s += stall
                        if tracer is not None:
                            tracer.migrate(
                                mover, transfer_t0, clock, src, dst, blocks, stall
                            )
                            tracer.now = clock

        return (
            clock, iterations, total_tokens, peak_batch, peak_used_blocks,
            peak_shared_blocks, peak_used_per_device,
            straggler_max_s, straggler_mean_s, alltoall_tokens,
            hidden_comm_s, comm_total_s, migration_s, replacements,
            (handoffs, handoff_blocks, handoff_s, rebalances,
             rebalanced_blocks, rebalance_s, swap_in_s, recompute_equivalent_s),
        )

    def _run_fast(
        self, pending: list[Request], scheduler: ContinuousBatchingScheduler
    ) -> _RunTotals:
        """Event-driven loop for reservation allocation + the default policy.

        Rests on two invariants of that combination (asserted by ``run``):

        * KV blocks move only at admission and eviction — mid-decode there
          is no growth, preemption or copy-on-write, so peak trackers only
          need sampling when the batch membership changes;
        * a failed admission stays failed until an arrival or an eviction
          changes the (waiting, running, pool) state, so ``admit`` is only
          called when ``admit_dirty`` marks such a change.

        Decode progress is tracked as *finish events* on an iteration-index
        heap instead of a per-sequence walk: a sequence completing prefill
        at iteration ``i`` finishes at iteration ``i + max_new_tokens - 1``
        exactly, so between events nothing per-sequence happens at all and
        uneventful stretches are compressed into a tight loop repeating the
        exact per-iteration float operations (bit-identical clock).  The
        decode token counts the per-iteration walk would read are
        materialized onto the sequence at its finish event.
        """
        clock = 0.0
        next_arrival = 0
        n_pending = len(pending)
        iterations = 0
        total_tokens = 0
        peak_batch = 0
        peak_used_blocks = 0
        peak_shared_blocks = 0
        num_devices = len(self.device_group)
        peak_used_per_device = [0] * num_devices
        straggler_max_s = 0.0
        straggler_mean_s = 0.0
        alltoall_tokens = 0
        hidden_comm_s = 0.0
        comm_total_s = 0.0
        migration_s = 0.0
        replacements = 0
        chunk = scheduler.config.prefill_chunk
        multi = num_devices > 1
        overlap_mode = self._overlap
        drift = self._drift if overlap_mode else None
        last_ckey = None
        block_manager = self.block_manager
        finished_state = RequestState.FINISHED
        running = scheduler.running
        #: Running sequences still prefilling (walked per iteration; small).
        prefilling: list[Sequence] = []
        #: Running sequences in pure decode, and their split by home device.
        decode_count = 0
        home_decode = [0] * num_devices
        #: (finish_iteration, enqueue_index, seq) of every decoding sequence.
        finish_heap: list[tuple[int, int, Sequence]] = []
        admit_dirty = False
        cost_cache = self._cost_cache
        heappush = heapq.heappush
        heappop = heapq.heappop
        waiting = scheduler.waiting
        inf = float("inf")
        #: Arrival time of ``pending[next_arrival]`` (``inf`` when drained),
        #: kept in a local so the steady-state loops compare plain floats.
        next_at = pending[0].arrival_time if pending else inf
        tracer = self.tracer
        metrics = self.metrics
        metrics_due = metrics.next_due if metrics is not None else inf
        iter_t0 = 0.0
        iter_stall = 0.0

        while next_arrival < n_pending or scheduler.has_work:
            while next_at <= clock:
                scheduler.add_request(pending[next_arrival])
                next_arrival += 1
                next_at = (
                    pending[next_arrival].arrival_time
                    if next_arrival < n_pending
                    else inf
                )
                admit_dirty = True
            if admit_dirty:
                admit_dirty = False
                if tracer is not None:
                    tracer.now = clock  # KV alloc/share events inside admit
                # `admit` with an empty queue is a no-op (the default policy
                # has no side effects there); most evictions at low load
                # find nothing waiting, so skip the call.
                admitted = scheduler.admit(clock) if waiting else None
                if admitted:
                    prefilling.extend(admitted)
                    # Blocks move only at admission/eviction under
                    # reservation allocation, so peaks move only here.
                    batch = len(running)
                    if batch > peak_batch:
                        peak_batch = batch
                    used = block_manager.used_blocks
                    if used > peak_used_blocks:
                        peak_used_blocks = used
                    shared = block_manager.shared_blocks
                    if shared > peak_shared_blocks:
                        peak_shared_blocks = shared
                    if multi:
                        for d in range(num_devices):
                            u = block_manager.used_blocks_on(d)
                            if u > peak_used_per_device[d]:
                                peak_used_per_device[d] = u
            if not running:
                if next_arrival < n_pending:
                    # Idle: jump the clock to the next arrival.
                    clock = max(clock, next_at)
                    continue
                break

            tokens = decode_count
            if prefilling:
                for seq in prefilling:
                    tokens += seq.tokens_this_iteration(chunk)
            if multi:
                if prefilling:
                    home_tokens = home_decode[:]
                    for seq in prefilling:
                        home_tokens[seq.home_device] += seq.tokens_this_iteration(chunk)
                else:
                    home_tokens = home_decode
                home_key = tuple(home_tokens)
                if overlap_mode:
                    key = (tokens, home_key, self._placement_epoch)
                    entry = cost_cache.get(key)
                    if entry is None:
                        entry = self._iteration_cost_overlap(tokens, home_key)
                    (step, max_compute, mean_compute, remote_tokens,
                     hidden, comm) = entry
                    hidden_comm_s += hidden
                    comm_total_s += comm
                else:
                    key = (tokens, home_key)
                    entry = cost_cache.get(key)
                    if entry is None:
                        entry = self._iteration_cost(*key)
                    step, max_compute, mean_compute, remote_tokens = entry
                alltoall_tokens += remote_tokens
                straggler_max_s += max_compute
                straggler_mean_s += mean_compute
            else:
                entry = cost_cache.get(tokens)
                if entry is None:
                    entry = self._iteration_cost(tokens, None)
                step = entry[0]
            if tracer is not None:
                iter_t0 = clock
            clock += step
            iterations += 1
            total_tokens += tokens
            if drift is not None:
                # Mirror of the general loop's per-composition observation.
                ckey = (tokens, home_key)
                if ckey != last_ckey:
                    last_ckey = ckey
                    stall = self._observe_routing(tokens, scheduler)
                    if stall:
                        clock += stall
                        migration_s += stall
                        replacements += 1
                        if tracer is not None:
                            iter_stall = stall
            if tracer is not None:
                ibatch = len(running)
                if multi:
                    if overlap_mode:
                        tracer.iteration(
                            iterations - 1, iter_t0, clock, tokens, ibatch,
                            compute=self._telemetry_per_device(tokens, home_key),
                            max_compute=max_compute, mean_compute=mean_compute,
                            remote_tokens=remote_tokens,
                            hidden=hidden, comm=comm, stall=iter_stall,
                        )
                    else:
                        tracer.iteration(
                            iterations - 1, iter_t0, clock, tokens, ibatch,
                            compute=self._telemetry_per_device(tokens, home_key),
                            max_compute=max_compute, mean_compute=mean_compute,
                            remote_tokens=remote_tokens, stall=iter_stall,
                        )
                else:
                    tracer.iteration(iterations - 1, iter_t0, clock, tokens, ibatch)
                iter_stall = 0.0
                tracer.now = clock  # finish/KV-free events below carry it
            if metrics is not None and clock >= metrics_due:
                metrics_due = self._sample_metrics(
                    metrics, scheduler, clock, iterations, len(running)
                )

            finished_any = False
            if prefilling:
                still_prefilling = []
                for seq in prefilling:
                    seq.advance(clock, chunk)
                    if seq.state is finished_state:
                        finished_any = True  # single-token request
                        if tracer is not None:
                            tracer.first_token(seq, clock)
                    elif seq.prefill_done:
                        if tracer is not None:
                            tracer.first_token(seq, clock)
                        # Entered decode: schedule its finish event.  The
                        # completing iteration emitted token 1, so the
                        # remaining max_new - 1 tokens land one per
                        # iteration from here.
                        decode_count += 1
                        home_decode[seq.home_device] += 1
                        seq.finish_iteration = (
                            iterations + seq.request.max_new_tokens - 1
                        )
                        heappush(
                            finish_heap,
                            (seq.finish_iteration, seq.enqueue_index, seq),
                        )
                    else:
                        still_prefilling.append(seq)
                prefilling = still_prefilling
            while finish_heap and finish_heap[0][0] == iterations:
                seq = heappop(finish_heap)[2]
                # Materialize the decode state the per-iteration walk would
                # have accumulated token by token.
                seq.generated_tokens = seq.request.max_new_tokens
                seq.state = finished_state
                seq.finish_time = clock
                seq.finish_iteration = None
                decode_count -= 1
                home_decode[seq.home_device] -= 1
                finished_any = True
            if finished_any:
                scheduler.evict_finished()
                admit_dirty = True  # freed blocks / batch slots
                continue

            # -- steady-state macro step ---------------------------------------
            # Pure decode, nothing admitted or finished this iteration: the
            # batch is frozen until the next finish event or arrival, and
            # every iteration until then repeats the same float operations.
            if prefilling or not finish_heap:
                continue
            span = finish_heap[0][0] - iterations - 1
            if span <= 0:
                continue
            tokens = decode_count
            if multi:
                home_key = tuple(home_decode)
                if drift is not None and (tokens, home_key) != last_ckey:
                    # The stretch starts on a batch composition the drift
                    # tracker has not observed (e.g. the last explicit
                    # iteration still carried prefill tokens).  Run one
                    # explicit iteration — it performs the observation —
                    # before compressing; the general loop observes at
                    # exactly that iteration too.
                    continue
                if overlap_mode:
                    key = (tokens, home_key, self._placement_epoch)
                    entry = cost_cache.get(key)
                    if entry is None:
                        entry = self._iteration_cost_overlap(tokens, home_key)
                    (step, max_compute, mean_compute, remote_tokens,
                     hidden, comm) = entry
                else:
                    key = (tokens, home_key)
                    entry = cost_cache.get(key)
                    if entry is None:
                        entry = self._iteration_cost(*key)
                    step, max_compute, mean_compute, remote_tokens = entry
            else:
                entry = cost_cache.get(tokens)
                if entry is None:
                    entry = self._iteration_cost(tokens, None)
                step = entry[0]
            done = 0
            if tracer is None and metrics is None:
                if multi:
                    if overlap_mode:
                        while done < span and next_at > clock:
                            alltoall_tokens += remote_tokens
                            straggler_max_s += max_compute
                            straggler_mean_s += mean_compute
                            hidden_comm_s += hidden
                            comm_total_s += comm
                            clock += step
                            done += 1
                    else:
                        while done < span and next_at > clock:
                            alltoall_tokens += remote_tokens
                            straggler_max_s += max_compute
                            straggler_mean_s += mean_compute
                            clock += step
                            done += 1
                else:
                    # Conservative unchecked prefix: after k additions the
                    # accumulated rounding error is far below one step, so
                    # ``(next_at - clock)/step - 2`` iterations provably keep
                    # ``clock < next_at`` throughout — run them without the
                    # per-iteration comparison, then finish checked.  The adds
                    # themselves stay the exact sequential ``clock += step`` the
                    # uncompressed loop performs (bit-identical clock).
                    bulk = span
                    if next_at is not inf and step > 0.0:
                        safe = int((next_at - clock) / step) - 2
                        if safe < bulk:
                            bulk = safe
                    if bulk > 0:
                        for _ in range(bulk):
                            clock += step
                        done = bulk
                    while done < span and next_at > clock:
                        clock += step
                        done += 1
            else:
                # Telemetry variant of the macro step: the identical float
                # accumulations in the identical order (bit-identical clock
                # and totals — the single-device checked loop performs the
                # same sequential ``clock += step`` adds the unchecked bulk
                # prefix does), plus one synthesized iter event and a due
                # check per compressed iteration, so the span stream matches
                # the general loop's byte for byte.
                ibatch = len(running)
                if multi:
                    pd = (
                        self._telemetry_per_device(tokens, home_key)
                        if tracer is not None
                        else None
                    )
                    if overlap_mode:
                        while done < span and next_at > clock:
                            alltoall_tokens += remote_tokens
                            straggler_max_s += max_compute
                            straggler_mean_s += mean_compute
                            hidden_comm_s += hidden
                            comm_total_s += comm
                            iter_t0 = clock
                            clock += step
                            done += 1
                            if tracer is not None:
                                tracer.iteration(
                                    iterations + done - 1, iter_t0, clock,
                                    tokens, ibatch, compute=pd,
                                    max_compute=max_compute,
                                    mean_compute=mean_compute,
                                    remote_tokens=remote_tokens,
                                    hidden=hidden, comm=comm,
                                )
                            if metrics is not None and clock >= metrics_due:
                                metrics_due = self._sample_metrics(
                                    metrics, scheduler, clock,
                                    iterations + done, ibatch,
                                )
                    else:
                        while done < span and next_at > clock:
                            alltoall_tokens += remote_tokens
                            straggler_max_s += max_compute
                            straggler_mean_s += mean_compute
                            iter_t0 = clock
                            clock += step
                            done += 1
                            if tracer is not None:
                                tracer.iteration(
                                    iterations + done - 1, iter_t0, clock,
                                    tokens, ibatch, compute=pd,
                                    max_compute=max_compute,
                                    mean_compute=mean_compute,
                                    remote_tokens=remote_tokens,
                                )
                            if metrics is not None and clock >= metrics_due:
                                metrics_due = self._sample_metrics(
                                    metrics, scheduler, clock,
                                    iterations + done, ibatch,
                                )
                else:
                    while done < span and next_at > clock:
                        iter_t0 = clock
                        clock += step
                        done += 1
                        if tracer is not None:
                            tracer.iteration(
                                iterations + done - 1, iter_t0, clock,
                                tokens, ibatch,
                            )
                        if metrics is not None and clock >= metrics_due:
                            metrics_due = self._sample_metrics(
                                metrics, scheduler, clock, iterations + done,
                                ibatch,
                            )
            iterations += done
            total_tokens += tokens * done

        # The fast path never moves KV: disagg is excluded by ``run`` and
        # reservation allocation never preempts, so nothing is ever swapped.
        return (
            clock, iterations, total_tokens, peak_batch, peak_used_blocks,
            peak_shared_blocks, peak_used_per_device,
            straggler_max_s, straggler_mean_s, alltoall_tokens,
            hidden_comm_s, comm_total_s, migration_s, replacements,
            (0, 0, 0.0, 0, 0, 0.0, 0.0, 0.0),
        )

    def _cluster_section(
        self,
        peak_used_per_device: list[int],
        straggler_max_s: float,
        straggler_mean_s: float,
        alltoall_tokens: int,
    ) -> dict[str, Any]:
        """The report's ``cluster`` section (multi-device runs only)."""
        num_devices = len(self.device_group)
        per_device = []
        for d, name in enumerate(self.device_group.names):
            blocks = self.block_manager.num_blocks_on(d)
            if self._disagg:
                # Each pool spans the whole model on its own devices, so the
                # expert count and load share come from the pool-local
                # placement, tagged with the device's role.
                pool_placement, local = self._pool_placement(d)
                entry = {
                    "device": name,
                    "role": (
                        "prefill" if d < self.config.prefill_devices else "decode"
                    ),
                    "experts": pool_placement.experts_on(local),
                    "expert_load_share": round(pool_placement.device_mass[local], 6),
                }
            else:
                entry = {
                    "device": name,
                    "experts": self.placement.experts_on(d),
                    "expert_load_share": round(self.placement.device_mass[d], 6),
                }
            entry.update(
                {
                    "kv_blocks": blocks,
                    "kv_peak_used_blocks": peak_used_per_device[d],
                    "kv_utilization_peak": (
                        peak_used_per_device[d] / blocks if blocks else 0.0
                    ),
                }
            )
            per_device.append(entry)
        # The skew baseline is the per-iteration mean over devices that
        # actually received token load: a device the placement left
        # expert-less is idle by construction, and `split_tokens` hands a
        # low-mass device zero tokens in a small batch — either way its 0.0
        # compute would deflate the mean and inflate the ratio with a
        # denominator artifact.  ``straggler_mean_s`` accumulates
        # Σ_iter (Σ_loaded compute / loaded), so max >= mean holds inside
        # every iteration and the ratio is always >= 1.0.
        return {
            "devices": num_devices,
            "placement": self.placement.name,
            # Time lost to routing skew: the slowest device's compute over
            # the loaded-device mean compute (1.0 = no skew).
            "straggler_ratio": (
                straggler_max_s / straggler_mean_s if straggler_mean_s else 1.0
            ),
            # Token counts are whole numbers; the per-iteration remote counts
            # are accumulated as exact integers end-to-end.
            "alltoall_tokens": alltoall_tokens,
            "per_device": per_device,
        }

    # -- reporting ---------------------------------------------------------------
    def _build_report(
        self,
        scheduler: ContinuousBatchingScheduler,
        clock: float,
        iterations: int,
        total_tokens: int,
        peak_batch: int,
        peak_used_blocks: int,
        peak_shared_blocks: int,
        cluster: dict | None = None,
        overlap: dict | None = None,
        migration: dict | None = None,
        *,
        first_submitted: float | None = None,
        num_submitted: int | None = None,
    ) -> ServingReport:
        finished = scheduler.finished
        records: list[dict] = []
        all_seqs: list[Sequence] = sorted(
            scheduler.finished + scheduler.rejected + scheduler.stranded,
            key=lambda s: s.request.request_id,
        )
        if num_submitted is not None:
            # Conservation: every submitted request must land in exactly one
            # terminal state — nothing may silently vanish from the report.
            assert (
                len(scheduler.finished) + len(scheduler.rejected) + len(scheduler.stranded)
                == num_submitted
            ), (
                f"request accounting leak: {len(scheduler.finished)} finished + "
                f"{len(scheduler.rejected)} rejected + {len(scheduler.stranded)} "
                f"stranded != {num_submitted} submitted"
            )
        multi_device = len(self.device_group) > 1
        for seq in all_seqs:
            record = {
                "request_id": seq.request.request_id,
                "state": seq.state.value,
                "arrival_s": seq.request.arrival_time,
                "prompt_tokens": seq.request.prompt_tokens,
                "new_tokens": seq.generated_tokens,
                "ttft_s": seq.ttft,
                "tpot_s": seq.tpot,
                "e2e_s": seq.e2e_latency,
            }
            if multi_device:
                # Home of the request's KV (its last admission); rejected
                # requests never held blocks on any device.
                record["device"] = (
                    self.device_group.names[seq.home_device] if seq.is_finished else None
                )
                if self._overlap:
                    # Which cluster layout (re-placement epoch) served the
                    # request's last admission.
                    record["placement_epoch"] = (
                        seq.placement_epoch if seq.is_finished else None
                    )
            records.append(record)
        # Summary lists keep *finish order* (their float reduction order is
        # pinned by the goldens); evaluate each latency property once per
        # sequence instead of twice (filter + collect).
        ttfts: list[float] = []
        tpots: list[float] = []
        e2es: list[float] = []
        for s in finished:
            ttft = s.ttft
            if ttft is not None:
                ttfts.append(ttft)
            tpot = s.tpot
            if tpot is not None:
                tpots.append(tpot)
            e2e = s.e2e_latency
            if e2e is not None:
                e2es.append(e2e)
        if finished:
            # The sustained-QPS window opens at the first *submitted* arrival
            # (not the first finished one): when early arrivals are rejected
            # or load-shed, the system was already accepting traffic, and
            # shrinking the window to the survivors overstates throughput.
            if first_submitted is None:
                first_submitted = min(s.request.arrival_time for s in finished)
            last_finish = max(s.finish_time for s in finished)
            makespan = max(last_finish - first_submitted, 1e-12)
            qps = len(finished) / makespan
        else:
            qps = 0.0
        return ServingReport(
            backend=self.backend.name,
            model=self.spec.name,
            device=self.backend.device.name,
            kv_policy=scheduler.allocation.name,
            scheduling_policy=scheduler.policy.name,
            num_requests=len(all_seqs),
            completed=len(finished),
            rejected=len(scheduler.rejected),
            stranded=len(scheduler.stranded),
            iterations=iterations,
            preemptions=scheduler.preemptions,
            recomputed_tokens=scheduler.recomputed_tokens,
            sim_time_s=clock,
            sustained_qps=qps,
            ttft=summarize_latencies(ttfts),
            tpot=summarize_latencies(tpots),
            e2e=summarize_latencies(e2es),
            peak_batch=peak_batch,
            mean_batch_tokens=(total_tokens / iterations) if iterations else 0.0,
            kv_num_blocks=self.block_manager.num_blocks,
            kv_block_size=self.block_manager.block_size,
            kv_peak_used_blocks=peak_used_blocks,
            kv_utilization_peak=(
                peak_used_blocks / self.block_manager.num_blocks
                if self.block_manager.num_blocks
                else 0.0
            ),
            prefix_hit_tokens=self.block_manager.prefix_hit_tokens,
            prefix_hit_blocks=self.block_manager.prefix_hit_blocks,
            prefix_shared_blocks_peak=peak_shared_blocks,
            prefix_cow_copies=self.block_manager.cow_copies,
            prefix_dedup_ratio=(
                (self.block_manager.physical_allocs + self.block_manager.prefix_hit_blocks)
                / self.block_manager.physical_allocs
                if self.block_manager.physical_allocs
                else 1.0
            ),
            completion_order=[s.request.request_id for s in finished],
            requests=records,
            cluster=cluster,
            overlap=overlap,
            migration=migration,
        )
