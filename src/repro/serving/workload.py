"""Workload generators for the serving engine.

Three sources of traffic:

* :func:`poisson_workload` — an open-loop synthetic workload with Poisson
  arrivals at a target QPS and log-normal-ish prompt/decode lengths, all
  drawn from one seeded :class:`numpy.random.Generator` so a (seed, qps,
  num_requests) triple always produces the identical request list;
* :func:`replay_workload` — an explicit trace of ``(arrival_time,
  prompt_tokens, max_new_tokens[, priority])`` tuples, for deterministic
  regression tests and for replaying recorded traces;
* :func:`load_trace` — a JSONL trace *file* (``milo serve --trace``): one
  JSON object per line with ``arrival`` / ``prompt`` / ``max_new_tokens``
  and an optional ``priority``, schema-validated with line-numbered
  :class:`TraceSchemaError` diagnostics.

All return plain :class:`~repro.serving.request.Request` lists sorted by
arrival time; the engine treats them identically.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Sequence as SequenceType, Union

import numpy as np

from .request import Request

__all__ = ["poisson_workload", "replay_workload", "load_trace", "TraceSchemaError"]


class TraceSchemaError(ValueError):
    """A trace file line failed schema validation (reported with its line number)."""


#: Required and optional fields of one JSONL trace record.
_TRACE_REQUIRED = {"arrival": (int, float), "prompt": int, "max_new_tokens": int}
_TRACE_OPTIONAL = {"priority": int}


def poisson_workload(
    num_requests: int,
    qps: float,
    seed: int = 0,
    mean_prompt_tokens: int = 128,
    mean_new_tokens: int = 64,
    length_jitter: float = 0.25,
    priority: int = 0,
) -> list[Request]:
    """Open-loop Poisson arrivals with jittered prompt/decode lengths.

    ``length_jitter`` is the coefficient of variation of the (log-normally
    distributed) lengths; 0 makes every request identical.  Lengths are
    clipped to at least 1 token.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if mean_prompt_tokens <= 0 or mean_new_tokens <= 0:
        raise ValueError("mean token lengths must be positive")
    if length_jitter < 0:
        raise ValueError("length_jitter must be non-negative")
    rng = np.random.default_rng(seed)
    interarrivals = rng.exponential(1.0 / qps, size=num_requests)
    arrivals = np.cumsum(interarrivals)
    arrivals[0] = 0.0  # the first request opens the experiment

    def lengths(mean: int) -> np.ndarray:
        if length_jitter == 0:
            return np.full(num_requests, mean, dtype=np.int64)
        sigma = float(np.sqrt(np.log1p(length_jitter**2)))
        mu = float(np.log(mean)) - sigma**2 / 2.0
        draw = rng.lognormal(mean=mu, sigma=sigma, size=num_requests)
        return np.maximum(1, np.round(draw)).astype(np.int64)

    prompts = lengths(mean_prompt_tokens)
    decodes = lengths(mean_new_tokens)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            max_new_tokens=int(decodes[i]),
            priority=priority,
        )
        for i in range(num_requests)
    ]


def replay_workload(
    trace: Iterable[SequenceType[float]],
    priority: int = 0,
) -> list[Request]:
    """Build requests from ``(arrival_time, prompt, max_new_tokens[, priority])`` rows.

    A row's optional fourth element overrides the ``priority`` default for
    that request, so recorded traces can mix priority classes.
    """
    requests = []
    for i, row in enumerate(trace):
        if len(row) not in (3, 4):
            raise ValueError(
                f"trace row {i} must have 3 or 4 elements "
                f"(arrival, prompt, max_new_tokens[, priority]), got {len(row)}"
            )
        arrival, prompt, decode = row[0], row[1], row[2]
        requests.append(
            Request(
                request_id=i,
                arrival_time=float(arrival),
                prompt_tokens=int(prompt),
                max_new_tokens=int(decode),
                priority=int(row[3]) if len(row) == 4 else priority,
            )
        )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests


def _validate_trace_record(lineno: int, record: object) -> dict:
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"trace line {lineno}: expected a JSON object, got {type(record).__name__}"
        )
    missing = sorted(set(_TRACE_REQUIRED) - set(record))
    if missing:
        raise TraceSchemaError(f"trace line {lineno}: missing fields {missing}")
    unknown = sorted(set(record) - set(_TRACE_REQUIRED) - set(_TRACE_OPTIONAL))
    if unknown:
        raise TraceSchemaError(f"trace line {lineno}: unknown fields {unknown}")
    for name, types in {**_TRACE_REQUIRED, **_TRACE_OPTIONAL}.items():
        if name not in record:
            continue
        value = record[name]
        # bool is an int subclass but never a valid token/priority count.
        if isinstance(value, bool) or not isinstance(value, types):
            expected = (
                " or ".join(t.__name__ for t in types)
                if isinstance(types, tuple)
                else types.__name__
            )
            raise TraceSchemaError(
                f"trace line {lineno}: field {name!r} must be {expected}, "
                f"got {value!r}"
            )
    if record["arrival"] < 0:
        raise TraceSchemaError(f"trace line {lineno}: 'arrival' must be non-negative")
    for name in ("prompt", "max_new_tokens"):
        if record[name] <= 0:
            raise TraceSchemaError(f"trace line {lineno}: {name!r} must be positive")
    return record


def load_trace(source: Union[str, os.PathLike, IO[str], Iterable[str]]) -> list[Request]:
    """Load a JSONL trace of per-request records into a replay workload.

    Each non-empty line is a JSON object ``{"arrival": s, "prompt": n,
    "max_new_tokens": n, "priority": p?}``.  Malformed JSON, wrong types,
    missing or unknown fields, and out-of-range values all raise
    :class:`TraceSchemaError` naming the offending line.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source) as fh:
            return load_trace(fh)
    rows: list[tuple] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"trace line {lineno}: invalid JSON ({exc})") from None
        record = _validate_trace_record(lineno, record)
        rows.append(
            (
                record["arrival"],
                record["prompt"],
                record["max_new_tokens"],
                record.get("priority", 0),
            )
        )
    if not rows:
        raise TraceSchemaError("trace contains no records")
    try:
        return replay_workload(rows)
    except ValueError as exc:  # out-of-range values caught by Request validation
        raise TraceSchemaError(f"invalid trace record: {exc}") from None
