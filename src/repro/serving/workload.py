"""Workload generators for the serving engine.

Two sources of traffic:

* :func:`poisson_workload` — an open-loop synthetic workload with Poisson
  arrivals at a target QPS and log-normal-ish prompt/decode lengths, all
  drawn from one seeded :class:`numpy.random.Generator` so a (seed, qps,
  num_requests) triple always produces the identical request list;
* :func:`replay_workload` — an explicit trace of ``(arrival_time,
  prompt_tokens, max_new_tokens)`` tuples, for deterministic regression tests
  and for replaying recorded traces.

Both return plain :class:`~repro.serving.request.Request` lists sorted by
arrival time; the engine treats them identically.
"""

from __future__ import annotations

from typing import Iterable, Sequence as SequenceType

import numpy as np

from .request import Request

__all__ = ["poisson_workload", "replay_workload"]


def poisson_workload(
    num_requests: int,
    qps: float,
    seed: int = 0,
    mean_prompt_tokens: int = 128,
    mean_new_tokens: int = 64,
    length_jitter: float = 0.25,
    priority: int = 0,
) -> list[Request]:
    """Open-loop Poisson arrivals with jittered prompt/decode lengths.

    ``length_jitter`` is the coefficient of variation of the (log-normally
    distributed) lengths; 0 makes every request identical.  Lengths are
    clipped to at least 1 token.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if mean_prompt_tokens <= 0 or mean_new_tokens <= 0:
        raise ValueError("mean token lengths must be positive")
    if length_jitter < 0:
        raise ValueError("length_jitter must be non-negative")
    rng = np.random.default_rng(seed)
    interarrivals = rng.exponential(1.0 / qps, size=num_requests)
    arrivals = np.cumsum(interarrivals)
    arrivals[0] = 0.0  # the first request opens the experiment

    def lengths(mean: int) -> np.ndarray:
        if length_jitter == 0:
            return np.full(num_requests, mean, dtype=np.int64)
        sigma = float(np.sqrt(np.log1p(length_jitter**2)))
        mu = float(np.log(mean)) - sigma**2 / 2.0
        draw = rng.lognormal(mean=mu, sigma=sigma, size=num_requests)
        return np.maximum(1, np.round(draw)).astype(np.int64)

    prompts = lengths(mean_prompt_tokens)
    decodes = lengths(mean_new_tokens)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            prompt_tokens=int(prompts[i]),
            max_new_tokens=int(decodes[i]),
            priority=priority,
        )
        for i in range(num_requests)
    ]


def replay_workload(
    trace: Iterable[SequenceType[float]],
    priority: int = 0,
) -> list[Request]:
    """Build a request list from ``(arrival_time, prompt, max_new_tokens)`` rows."""
    requests = []
    for i, row in enumerate(trace):
        arrival, prompt, decode = row
        requests.append(
            Request(
                request_id=i,
                arrival_time=float(arrival),
                prompt_tokens=int(prompt),
                max_new_tokens=int(decode),
                priority=priority,
            )
        )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests
