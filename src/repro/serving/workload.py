"""Workload generators for the serving engine.

Three sources of traffic:

* :func:`poisson_workload` — an open-loop synthetic workload with Poisson
  arrivals at a target QPS and log-normal-ish prompt/decode lengths, all
  drawn from one seeded :class:`numpy.random.Generator` so a (seed, qps,
  num_requests) triple always produces the identical request list;
* :func:`replay_workload` — an explicit trace of ``(arrival_time,
  prompt_tokens, max_new_tokens[, priority[, prefix_id[, prefix_tokens]]])``
  tuples, for deterministic regression tests and for replaying recorded
  traces;
* :func:`load_trace` — a JSONL trace *file* (``milo serve --trace``): one
  JSON object per line with ``arrival`` / ``prompt`` / ``max_new_tokens``
  and optional ``priority`` / ``prefix_id`` / ``prefix_tokens`` (shared
  prompt-prefix identity for the engine's prefix cache), schema-validated
  with line-numbered :class:`TraceSchemaError` diagnostics.

The Poisson generator can also model a shared-system-prompt population
(``shared_prefix_tokens`` / ``prefix_groups``): K prefix groups whose
members carry the same ``prefix_id``, so their common KV blocks are stored
once under prefix caching.

All return plain :class:`~repro.serving.request.Request` lists sorted by
arrival time; the engine treats them identically.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Sequence as SequenceType, Union

import numpy as np

from .request import Request

__all__ = ["poisson_workload", "replay_workload", "load_trace", "TraceSchemaError"]


class TraceSchemaError(ValueError):
    """A trace file line failed schema validation (reported with its line number)."""


#: Required and optional fields of one JSONL trace record.
_TRACE_REQUIRED = {"arrival": (int, float), "prompt": int, "max_new_tokens": int}
_TRACE_OPTIONAL = {"priority": int, "prefix_id": int, "prefix_tokens": int}


def poisson_workload(
    num_requests: int,
    qps: float,
    seed: int = 0,
    mean_prompt_tokens: int = 128,
    mean_new_tokens: int = 64,
    length_jitter: float = 0.25,
    priority: int = 0,
    shared_prefix_tokens: int = 0,
    prefix_groups: int = 1,
) -> list[Request]:
    """Open-loop Poisson arrivals with jittered prompt/decode lengths.

    ``length_jitter`` is the coefficient of variation of the (log-normally
    distributed) lengths; 0 makes every request identical.  Lengths are
    clipped to at least 1 token.

    ``shared_prefix_tokens > 0`` models a system-prompt population: each
    request is assigned to one of ``prefix_groups`` prefix groups (uniformly
    at random from the same seeded generator) and its prompt becomes
    ``shared_prefix_tokens`` shared tokens followed by the jittered private
    part, with ``prefix_id`` / ``prefix_tokens`` set so the engine's prefix
    cache can deduplicate the shared KV.  With ``shared_prefix_tokens=0``
    (default) the draws — and therefore the workload — are bit-identical to
    the pre-prefix generator.

    Arrivals are re-based so the first request opens the experiment at t=0
    without discarding its exponential draw: the whole cumulative-sum is
    shifted by the first arrival, keeping every inter-arrival gap an
    honest exponential sample (a previous version zeroed ``arrivals[0]``,
    which made the first gap the sum of two draws and biased achieved QPS
    below the target).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if mean_prompt_tokens <= 0 or mean_new_tokens <= 0:
        raise ValueError("mean token lengths must be positive")
    if length_jitter < 0:
        raise ValueError("length_jitter must be non-negative")
    if shared_prefix_tokens < 0:
        raise ValueError("shared_prefix_tokens must be non-negative")
    if prefix_groups <= 0:
        raise ValueError("prefix_groups must be positive")
    rng = np.random.default_rng(seed)
    interarrivals = rng.exponential(1.0 / qps, size=num_requests)
    arrivals = np.cumsum(interarrivals)
    arrivals -= arrivals[0]  # the first request opens the experiment

    def lengths(mean: int) -> np.ndarray:
        if length_jitter == 0:
            return np.full(num_requests, mean, dtype=np.int64)
        sigma = float(np.sqrt(np.log1p(length_jitter**2)))
        mu = float(np.log(mean)) - sigma**2 / 2.0
        draw = rng.lognormal(mean=mu, sigma=sigma, size=num_requests)
        return np.maximum(1, np.round(draw)).astype(np.int64)

    prompts = lengths(mean_prompt_tokens)
    decodes = lengths(mean_new_tokens)
    # Bulk-convert each stream once (`ndarray.tolist()` yields the same
    # Python floats/ints as per-element `float()`/`int()` calls, bit for
    # bit) instead of indexing the arrays num_requests times each — ~4x
    # faster record building on million-request traces.
    arrival_list = arrivals.tolist()
    prompt_list = (prompts + shared_prefix_tokens).tolist()
    decode_list = decodes.tolist()
    if shared_prefix_tokens:
        # Drawn after the legacy streams so arrivals/lengths stay identical
        # to the same-seed workload without sharing.
        group_list = rng.integers(0, prefix_groups, size=num_requests).tolist()
        return [
            Request(
                request_id=i,
                arrival_time=arrival,
                prompt_tokens=prompt,
                max_new_tokens=decode,
                priority=priority,
                prefix_id=group,
                prefix_tokens=shared_prefix_tokens,
            )
            for i, (arrival, prompt, decode, group) in enumerate(
                zip(arrival_list, prompt_list, decode_list, group_list)
            )
        ]
    return [
        Request(
            request_id=i,
            arrival_time=arrival,
            prompt_tokens=prompt,
            max_new_tokens=decode,
            priority=priority,
        )
        for i, (arrival, prompt, decode) in enumerate(
            zip(arrival_list, prompt_list, decode_list)
        )
    ]


def replay_workload(
    trace: Iterable[SequenceType[float]],
    priority: int = 0,
) -> list[Request]:
    """Build requests from ``(arrival_time, prompt, max_new_tokens[, priority
    [, prefix_id[, prefix_tokens]]])`` rows.

    A row's optional fourth element overrides the ``priority`` default for
    that request, so recorded traces can mix priority classes.  The optional
    fifth element names a shared prompt prefix (``None`` disables sharing
    for the row); the sixth gives the shared token count and defaults to the
    whole prompt when omitted.
    """
    requests = []
    for i, row in enumerate(trace):
        if not 3 <= len(row) <= 6:
            raise ValueError(
                f"trace row {i} must have 3 to 6 elements (arrival, prompt, "
                f"max_new_tokens[, priority[, prefix_id[, prefix_tokens]]]), "
                f"got {len(row)}"
            )
        arrival, prompt, decode = row[0], row[1], row[2]
        prefix_id = row[4] if len(row) >= 5 else None
        if prefix_id is not None:
            prefix_id = int(prefix_id)
            prefix_tokens = int(row[5]) if len(row) == 6 else int(prompt)
        else:
            prefix_tokens = 0
        requests.append(
            Request(
                request_id=i,
                arrival_time=float(arrival),
                prompt_tokens=int(prompt),
                max_new_tokens=int(decode),
                priority=int(row[3]) if len(row) >= 4 else priority,
                prefix_id=prefix_id,
                prefix_tokens=prefix_tokens,
            )
        )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests


def _validate_trace_record(lineno: int, record: object) -> dict[str, object]:
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"trace line {lineno}: expected a JSON object, got {type(record).__name__}"
        )
    missing = sorted(set(_TRACE_REQUIRED) - set(record))
    if missing:
        raise TraceSchemaError(f"trace line {lineno}: missing fields {missing}")
    unknown = sorted(set(record) - set(_TRACE_REQUIRED) - set(_TRACE_OPTIONAL))
    if unknown:
        raise TraceSchemaError(f"trace line {lineno}: unknown fields {unknown}")
    for name, types in {**_TRACE_REQUIRED, **_TRACE_OPTIONAL}.items():
        if name not in record:
            continue
        value = record[name]
        # bool is an int subclass but never a valid token/priority count.
        if isinstance(value, bool) or not isinstance(value, types):
            expected = (
                " or ".join(t.__name__ for t in types)
                if isinstance(types, tuple)
                else types.__name__
            )
            raise TraceSchemaError(
                f"trace line {lineno}: field {name!r} must be {expected}, "
                f"got {value!r}"
            )
    if record["arrival"] < 0:
        raise TraceSchemaError(f"trace line {lineno}: 'arrival' must be non-negative")
    for name in ("prompt", "max_new_tokens"):
        if record[name] <= 0:
            raise TraceSchemaError(f"trace line {lineno}: {name!r} must be positive")
    if "prefix_tokens" in record and "prefix_id" not in record:
        raise TraceSchemaError(
            f"trace line {lineno}: 'prefix_tokens' requires a 'prefix_id'"
        )
    if "prefix_id" in record:
        if record["prefix_id"] < 0:
            raise TraceSchemaError(
                f"trace line {lineno}: 'prefix_id' must be non-negative"
            )
        prefix_tokens = record.get("prefix_tokens", record["prompt"])
        if not 0 < prefix_tokens <= record["prompt"]:
            raise TraceSchemaError(
                f"trace line {lineno}: 'prefix_tokens' must lie in [1, prompt]"
            )
    return record


def load_trace(source: Union[str, os.PathLike, IO[str], Iterable[str]]) -> list[Request]:
    """Load a JSONL trace of per-request records into a replay workload.

    Each non-empty line is a JSON object ``{"arrival": s, "prompt": n,
    "max_new_tokens": n, "priority": p?, "prefix_id": k?,
    "prefix_tokens": n?}``.  ``prefix_id`` names a shared prompt prefix
    (requests carrying the same id dedupe their common KV blocks through the
    engine's prefix cache) and ``prefix_tokens`` gives the shared token
    count, defaulting to the whole prompt when omitted.  Malformed JSON,
    wrong types, missing or unknown fields, and out-of-range values all
    raise :class:`TraceSchemaError` naming the offending line.

    The trace is consumed *streamingly* — one line parsed, validated, and
    turned into its :class:`~repro.serving.request.Request` at a time, with
    no intermediate row list — so a million-request file costs one pass and
    one output list.  Request ids number the records in file order; the
    returned list is sorted by ``(arrival_time, request_id)`` like every
    other workload.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source) as fh:
            return load_trace(fh)
    requests: list[Request] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"trace line {lineno}: invalid JSON ({exc})") from None
        record = _validate_trace_record(lineno, record)
        prefix_id = record.get("prefix_id")
        try:
            requests.append(
                Request(
                    request_id=len(requests),
                    arrival_time=float(record["arrival"]),
                    prompt_tokens=int(record["prompt"]),
                    max_new_tokens=int(record["max_new_tokens"]),
                    priority=int(record.get("priority", 0)),
                    prefix_id=prefix_id,
                    prefix_tokens=(
                        int(record.get("prefix_tokens", record["prompt"]))
                        if prefix_id is not None
                        else 0
                    ),
                )
            )
        except ValueError as exc:  # out-of-range values caught by Request validation
            raise TraceSchemaError(f"invalid trace record: {exc}") from None
    if not requests:
        raise TraceSchemaError("trace contains no records")
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests
