"""MiLo reproduction: efficient quantized MoE inference with mixtures of low-rank compensators.

Subpackages
-----------
``repro.models``
    Numpy MoE transformer substrate (Mixtral-style and DeepSeek-style minis).
``repro.quant``
    Group-wise quantization: RTN, HQQ, GPTQ, symmetric compensator quantization.
``repro.core``
    The MiLo algorithm: iterative joint optimization, adaptive rank policies,
    named strategies, and the model-level compression driver.
``repro.kernels``
    Zero-bit-waste INT3 packing, I2F dequantization, packed GEMM, and the A100
    performance model behind the kernel benchmarks.
``repro.runtime``
    Inference backends (PyTorch-FP16, GPTQ3bit, MARLIN, MiLo) and end-to-end
    latency / memory accounting.
``repro.serving``
    Continuous-batching serving engine over the runtime backends: request
    scheduling, paged KV-cache admission control, and a deterministic
    discrete-event clock reporting TTFT / TPOT / QPS under load.
``repro.analysis``
    Kurtosis, residual rank, expert-frequency and distribution tooling.
``repro.data``
    Synthetic corpora and task suites standing in for the public benchmarks.
``repro.eval``
    Perplexity / task-accuracy harness producing paper-style result rows.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
