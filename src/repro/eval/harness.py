"""Evaluation harness: the reproduction's ``lm-evaluation-harness``.

Given an evaluation environment (a teacher-consistent corpus and a task
suite, both generated once from the FP16 model) and any number of compressed
model variants, the harness produces Table-3-style rows: memory, WikiText-2
perplexity, the three zero-shot tasks plus their average, and the two
few-shot tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.corpus import TokenCorpus, teacher_corpus
from ..data.tasks import FEW_SHOT_TASKS, ZERO_SHOT_TASKS, TaskSuite, build_default_suite
from ..models.transformer import MoETransformer
from .accuracy import evaluate_task
from .perplexity import perplexity

__all__ = ["EvaluationEnvironment", "EvaluationResult", "EvaluationHarness"]


@dataclass
class EvaluationEnvironment:
    """The frozen evaluation data generated from the FP16 teacher."""

    corpus: TokenCorpus
    suite: TaskSuite

    @classmethod
    def from_teacher(
        cls,
        teacher: MoETransformer,
        num_sequences: int = 16,
        seq_len: int = 32,
        num_task_items: int = 128,
        seed: int = 0,
    ) -> "EvaluationEnvironment":
        corpus = teacher_corpus(
            teacher, num_sequences=num_sequences, seq_len=seq_len, seed=seed
        )
        suite = build_default_suite(teacher, num_items=num_task_items, seed=seed)
        return cls(corpus=corpus, suite=suite)


@dataclass
class EvaluationResult:
    """One row of a Table-3-style comparison."""

    label: str
    memory_mb: float
    wikitext2_ppl: float
    task_scores: dict[str, float] = field(default_factory=dict)

    @property
    def zero_shot_average(self) -> float:
        scores = [self.task_scores[t] for t in ZERO_SHOT_TASKS if t in self.task_scores]
        return float(np.mean(scores)) if scores else float("nan")

    def as_row(self) -> dict[str, float | str]:
        row: dict[str, float | str] = {
            "method": self.label,
            "memory_mb": round(self.memory_mb, 2),
            "wikitext2_ppl": round(self.wikitext2_ppl, 4),
        }
        for task in (*ZERO_SHOT_TASKS, *FEW_SHOT_TASKS):
            if task in self.task_scores:
                row[task] = round(self.task_scores[task], 2)
        row["zero_shot_avg"] = round(self.zero_shot_average, 2)
        return row


class EvaluationHarness:
    """Evaluate compressed model variants against a frozen environment."""

    def __init__(self, environment: EvaluationEnvironment) -> None:
        self.environment = environment

    def evaluate(
        self,
        model: MoETransformer,
        label: str,
        tasks: list[str] | None = None,
        include_few_shot: bool = True,
    ) -> EvaluationResult:
        """Run perplexity plus the requested tasks on ``model``."""
        env = self.environment
        ppl = perplexity(model, env.corpus)
        if tasks is None:
            tasks = list(ZERO_SHOT_TASKS) + (list(FEW_SHOT_TASKS) if include_few_shot else [])
        scores = {name: evaluate_task(model, env.suite[name]) for name in tasks}
        return EvaluationResult(
            label=label,
            memory_mb=model.memory_bytes() / 2**20,
            wikitext2_ppl=ppl,
            task_scores=scores,
        )

    def compare(self, models: dict[str, MoETransformer], **kwargs) -> list[EvaluationResult]:
        """Evaluate several variants and return their rows in insertion order."""
        return [self.evaluate(model, label, **kwargs) for label, model in models.items()]
