"""Evaluation harness: perplexity, task accuracy, and paper-style result rows."""

from .accuracy import evaluate_cloze, evaluate_multiple_choice, evaluate_task
from .harness import EvaluationEnvironment, EvaluationHarness, EvaluationResult
from .perplexity import perplexity, token_nll
from .reporting import format_rows, format_table, percentile, summarize_latencies

__all__ = [
    "perplexity",
    "token_nll",
    "evaluate_task",
    "evaluate_multiple_choice",
    "evaluate_cloze",
    "EvaluationEnvironment",
    "EvaluationHarness",
    "EvaluationResult",
    "format_table",
    "format_rows",
    "percentile",
    "summarize_latencies",
]
