"""Task-accuracy evaluation (the zero-shot / few-shot columns of Table 3)."""

from __future__ import annotations

import numpy as np

from ..data.tasks import Task
from ..models.functional import log_softmax
from ..models.transformer import MoETransformer

__all__ = ["evaluate_task", "evaluate_multiple_choice", "evaluate_cloze"]


def evaluate_multiple_choice(model: MoETransformer, task: Task, batch_size: int = 64) -> float:
    """Accuracy (%) on a multiple-choice task.

    Each item is scored with one forward pass over its context; the candidate
    with the highest next-token log-probability is the model's answer.
    """
    if task.kind != "multiple_choice":
        raise ValueError(f"task {task.name} is not multiple choice")
    prefixes = task.prefixes()
    correct = 0
    for start in range(0, len(task.items), batch_size):
        batch_items = task.items[start : start + batch_size]
        logits = model.forward(prefixes[start : start + batch_size])[:, -1, :]
        logp = log_softmax(logits, axis=-1)
        for row, item in zip(logp, batch_items):
            assert item.candidates is not None
            scores = [row[c] for c in item.candidates]
            if int(np.argmax(scores)) == item.gold:
                correct += 1
    return 100.0 * correct / len(task.items)


def evaluate_cloze(model: MoETransformer, task: Task, batch_size: int = 64) -> float:
    """Top-1 agreement (%) with the gold token on a cloze / open-ended task."""
    if task.kind != "cloze":
        raise ValueError(f"task {task.name} is not a cloze task")
    prefixes = task.prefixes()
    correct = 0
    for start in range(0, len(task.items), batch_size):
        batch_items = task.items[start : start + batch_size]
        logits = model.forward(prefixes[start : start + batch_size])[:, -1, :]
        predictions = np.argmax(logits, axis=-1)
        for pred, item in zip(predictions, batch_items):
            if int(pred) == item.gold:
                correct += 1
    return 100.0 * correct / len(task.items)


def evaluate_task(model: MoETransformer, task: Task, batch_size: int = 64) -> float:
    """Dispatch on the task kind and return accuracy in percent."""
    if task.kind == "multiple_choice":
        return evaluate_multiple_choice(model, task, batch_size=batch_size)
    if task.kind == "cloze":
        return evaluate_cloze(model, task, batch_size=batch_size)
    raise ValueError(f"unknown task kind {task.kind!r}")
