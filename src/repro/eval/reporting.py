"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/columns the paper's tables report;
this module keeps the formatting in one place so every bench looks alike.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_rows"]


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rendered = [[_format_value(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_rows(rows: Sequence[dict[str, Any]], precision: int = 4, title: str | None = None) -> str:
    """Render a list of dict rows (all sharing the same keys) as a table."""
    if not rows:
        return title or ""
    headers = list(rows[0].keys())
    data = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, data, precision=precision, title=title)
