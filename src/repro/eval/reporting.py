"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/columns the paper's tables report;
this module keeps the formatting in one place so every bench looks alike.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_rows", "percentile", "summarize_latencies"]


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rendered = [[_format_value(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_rows(rows: Sequence[dict[str, Any]], precision: int = 4, title: str | None = None) -> str:
    """Render a list of dict rows as a table.

    Headers are the union of all rows' keys in first-seen order, so a key
    that only appears in later rows still gets a column (earlier rows show
    an empty cell) instead of being silently dropped.
    """
    if not rows:
        return title or ""
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    data = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, data, precision=precision, title=title)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``.

    Pure-python so serving reports are bit-reproducible across numpy
    versions; matches ``numpy.percentile``'s default "linear" method.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def summarize_latencies(values: Sequence[float]) -> dict[str, float | None]:
    """p50 / p95 / mean / max summary used by the serving latency reports.

    An empty sample reports ``None`` for every statistic (JSON ``null``) —
    NaN would make the serialized report invalid JSON.
    """
    if not values:
        return {"p50": None, "p95": None, "mean": None, "max": None}
    return {
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "mean": float(sum(values) / len(values)),
        "max": float(max(values)),
    }
