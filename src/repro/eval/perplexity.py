"""Perplexity evaluation on a token corpus."""

from __future__ import annotations

import numpy as np

from ..data.corpus import TokenCorpus
from ..models.functional import log_softmax
from ..models.transformer import MoETransformer

__all__ = ["perplexity", "token_nll"]


def token_nll(model: MoETransformer, tokens: np.ndarray) -> np.ndarray:
    """Per-token negative log-likelihood of next-token prediction.

    Parameters
    ----------
    tokens:
        ``(batch, seq_len)`` integer array; positions 1..T-1 are predicted
        from their prefixes.

    Returns
    -------
    Flat array of NLL values, one per predicted token.
    """
    tokens = np.asarray(tokens)
    if tokens.ndim != 2 or tokens.shape[1] < 2:
        raise ValueError("tokens must be (batch, seq_len >= 2)")
    logits = model.forward(tokens[:, :-1])
    logp = log_softmax(logits, axis=-1)
    targets = tokens[:, 1:]
    batch_idx, pos_idx = np.meshgrid(
        np.arange(tokens.shape[0]), np.arange(tokens.shape[1] - 1), indexing="ij"
    )
    return -logp[batch_idx, pos_idx, targets].ravel()


def perplexity(
    model: MoETransformer,
    corpus: TokenCorpus | np.ndarray,
    batch_size: int = 16,
) -> float:
    """Corpus perplexity ``exp(mean NLL)`` (the WikiText-2 metric of the tables)."""
    if isinstance(corpus, TokenCorpus):
        batches = corpus.batches(batch_size)
    else:
        tokens = np.asarray(corpus)
        batches = [tokens[i : i + batch_size] for i in range(0, tokens.shape[0], batch_size)]
    nlls = [token_nll(model, batch) for batch in batches if batch.shape[0] > 0]
    if not nlls:
        raise ValueError("empty corpus")
    return float(np.exp(np.mean(np.concatenate(nlls))))
