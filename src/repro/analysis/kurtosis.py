"""Kurtosis analysis of MoE weights (paper Observation 1, Table 2).

Dense layers (attention, shared experts) are heavy-tailed — positive excess
kurtosis, channel-structured outliers — while routed experts are platykurtic.
This module computes per-matrix kurtosis and aggregates it by layer kind so
the Table 2 rows can be regenerated, and provides the per-matrix records the
Kurtosis-{r} rank policy and the Fig. 5 correlation analysis consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.init import excess_kurtosis
from ..models.transformer import MoETransformer

__all__ = ["MatrixKurtosis", "model_kurtosis_records", "kurtosis_by_kind"]


@dataclass(frozen=True)
class MatrixKurtosis:
    """Kurtosis record for one quantizable weight matrix."""

    name: str
    kind: str
    shape: tuple[int, int]
    kurtosis: float


def model_kurtosis_records(model: MoETransformer) -> list[MatrixKurtosis]:
    """Excess kurtosis of every quantizable weight matrix in the model."""
    records = []
    for param_path, kind, linear in model.iter_quantizable():
        records.append(
            MatrixKurtosis(
                name=param_path,
                kind=kind,
                shape=linear.weight.shape,
                kurtosis=excess_kurtosis(linear.weight.data),
            )
        )
    return records


def kurtosis_by_kind(model: MoETransformer) -> dict[str, float]:
    """Average excess kurtosis per layer kind (the Table 2 "Kurtosis" row)."""
    buckets: dict[str, list[float]] = {}
    for record in model_kurtosis_records(model):
        buckets.setdefault(record.kind, []).append(record.kurtosis)
    return {kind: float(np.mean(values)) for kind, values in buckets.items()}
