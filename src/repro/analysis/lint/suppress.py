"""Inline suppression comments: ``# milo: disable=CODE[,CODE...]``.

A suppression applies to the physical line it sits on (trailing comment) —
the same granularity as the diagnostics themselves.  ``disable=all``
silences every rule on that line.  Unknown codes in a suppression are not
an error: rules come and go, and a stale suppression should rot harmlessly
rather than break the build.
"""

from __future__ import annotations

import re

from .diagnostics import Diagnostic

__all__ = ["suppressed_codes", "is_suppressed", "filter_suppressed"]

#: ``# milo: disable=DET001`` or ``# milo: disable=DET001,RPT001`` or
#: ``# milo: disable=all`` — anywhere in a line, tolerant of spacing.
_SUPPRESS_RE = re.compile(
    r"#\s*milo:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def suppressed_codes(line: str) -> frozenset[str]:
    """Rule codes suppressed by a ``# milo: disable=`` comment on ``line``.

    Returns the empty set when no suppression comment is present; the
    sentinel code ``"all"`` (lowercased) suppresses every rule.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def is_suppressed(diagnostic: Diagnostic, source_lines: list[str]) -> bool:
    """Whether ``diagnostic`` is silenced by a comment on its own line."""
    lineno = diagnostic.line
    if not (1 <= lineno <= len(source_lines)):
        return False
    codes = suppressed_codes(source_lines[lineno - 1])
    return diagnostic.code in codes or "all" in {c.lower() for c in codes}


def filter_suppressed(
    diagnostics: list[Diagnostic], source_lines: list[str]
) -> list[Diagnostic]:
    """Drop diagnostics silenced by inline suppression comments."""
    return [d for d in diagnostics if not is_suppressed(d, source_lines)]
