"""Core data model of the ``milo lint`` rule engine.

Three pieces live here:

* :class:`Diagnostic` — one finding: a (path, line, col, code, message)
  tuple plus the stripped source line it anchors to (the *fingerprint text*
  the baseline matches on, so baselines survive unrelated line-number
  churn).
* :class:`FileContext` — everything a rule may inspect about one file: the
  parsed AST, the raw source lines, and the repo-relative posix path rules
  scope on.
* :class:`Rule` — the abstract rule: a unique ``code``, a one-line
  ``description``, ``scope``/``exclude`` path patterns, and a
  :meth:`Rule.check` generator over diagnostics.  Concrete rules register
  themselves in :data:`RULE_REGISTRY` via :func:`register_rule` so the
  engine, the CLI's ``--list-rules``/``--select``, and the tests all see
  one authoritative rule set.

Path patterns use :func:`fnmatch.fnmatchcase` semantics where ``*`` crosses
directory separators (``src/repro/serving/*`` matches every file below the
serving package, at any depth).
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "default_rules",
    "match_path",
]


def match_path(path: str, patterns: tuple[str, ...]) -> bool:
    """Whether a posix relative ``path`` matches any of ``patterns``.

    ``fnmatch`` translation: ``*`` matches any run of characters including
    ``/``, so ``src/repro/serving/*`` covers arbitrarily deep files.
    """
    return any(fnmatchcase(path, pattern) for pattern in patterns)


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding, anchored to a source location."""

    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-based source line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Rule code (``DET001`` …); ``SYN001`` for files that fail to parse.
    code: str
    #: Human-readable explanation with the concrete offending expression.
    message: str
    #: The stripped text of the offending source line — the baseline
    #: fingerprint (robust to unrelated line-number churn).
    line_text: str = ""

    def render(self) -> str:
        """The classic one-line compiler format: ``path:line:col: CODE msg``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(slots=True)
class FileContext:
    """Everything the rules may inspect about one linted file."""

    #: Repo-relative posix path (what ``scope`` patterns match against).
    path: str
    #: Parsed module AST.
    tree: ast.Module
    #: Raw source split into lines (1-based access via :meth:`line_text`).
    lines: list[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        """Stripped text of a 1-based source line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` in this file."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Diagnostic(
            path=self.path,
            line=lineno,
            col=col,
            code=code,
            message=message,
            line_text=self.line_text(lineno),
        )


class Rule(abc.ABC):
    """One lint rule: a code, a path scope, and an AST check.

    Subclasses set the class attributes and implement :meth:`check`; the
    engine instantiates each registered rule once per run and calls
    ``check`` for every file whose relative path falls inside the rule's
    scope (and outside its excludes).
    """

    #: Unique rule code surfaced in diagnostics and suppressions.
    code: str = "ABS000"
    #: One-line summary shown by ``milo lint --list-rules``.
    description: str = "abstract rule"
    #: Path patterns the rule applies to (``*`` crosses directories).
    scope: tuple[str, ...] = ("*",)
    #: Path patterns exempted even when inside ``scope`` (whitelist).
    exclude: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (repo-relative posix) is in this rule's scope."""
        return match_path(path, self.scope) and not match_path(path, self.exclude)

    @abc.abstractmethod
    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield every violation of this rule found in ``context``."""


#: All registered rule classes, keyed by rule code.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY` (unique code)."""
    code = rule_cls.code
    existing = RULE_REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule code {code!r} already registered by {existing.__name__}"
        )
    RULE_REGISTRY[code] = rule_cls
    return rule_cls


def default_rules(select: tuple[str, ...] | None = None) -> list[Rule]:
    """Instantiate the registered rules, in rule-code order.

    ``select`` restricts to the named codes (unknown codes raise, so CI
    invocations fail loudly on typos rather than silently checking nothing).
    """
    codes = sorted(RULE_REGISTRY) if select is None else list(select)
    unknown = sorted(set(codes) - set(RULE_REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown rule codes {unknown}; known: {sorted(RULE_REGISTRY)}"
        )
    return [RULE_REGISTRY[code]() for code in codes]
