"""Baseline file I/O: grandfather existing findings, gate only new ones.

The baseline is a committed JSON file (default ``lint-baseline.json`` at the
repo root) recording accepted findings as ``(path, code, line_text)``
fingerprints.  Line *text* rather than line *number* is the identity: a
finding survives unrelated edits that shift it up or down, but reappears
the moment its offending line changes — exactly the "no new violations"
contract a ratchet gate needs.

Matching is multiset-wise per fingerprint: if the baseline records two
identical findings and the code now has three, one is new and gets
reported.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["load_baseline", "write_baseline", "filter_baselined"]

#: Schema version of the baseline file; bump on incompatible change.
BASELINE_VERSION = 1


def _fingerprint(diagnostic: Diagnostic) -> tuple[str, str, str]:
    return (diagnostic.path, diagnostic.code, diagnostic.line_text)


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Load a baseline file into a fingerprint multiset.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (a corrupt baseline silently ignoring findings would be
    worse than a loud failure).
    """
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"baseline {path} missing 'findings' key")
    fingerprints: Counter[tuple[str, str, str]] = Counter()
    for entry in payload["findings"]:
        fingerprints[(entry["path"], entry["code"], entry["text"])] += 1
    return fingerprints


def write_baseline(path: Path, diagnostics: list[Diagnostic]) -> None:
    """Write ``diagnostics`` as the new baseline, sorted for stable diffs."""
    findings = sorted(
        (
            {
                "path": d.path,
                "code": d.code,
                "line": d.line,
                "text": d.line_text,
            }
            for d in diagnostics
        ),
        key=lambda e: (e["path"], e["code"], e["line"], e["text"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": findings}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def filter_baselined(
    diagnostics: list[Diagnostic],
    baseline: Counter[tuple[str, str, str]],
) -> list[Diagnostic]:
    """Drop findings covered by the baseline (multiset semantics)."""
    remaining = Counter(baseline)
    fresh: list[Diagnostic] = []
    for diagnostic in diagnostics:
        key = _fingerprint(diagnostic)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(diagnostic)
    return fresh
