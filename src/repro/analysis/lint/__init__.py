"""``repro.analysis.lint`` — AST-based determinism & invariant linter.

Importing this package registers the default rule set (DET001–DET003,
REG001, SLOT001, RPT001, OBS001) in :data:`~.diagnostics.RULE_REGISTRY`; the
engine, the ``milo lint`` CLI, and the tests all consume that single
registry.  See ``README.md`` in this directory for the rule catalogue,
suppression syntax, and baseline workflow.
"""

from __future__ import annotations

from .baseline import filter_baselined, load_baseline, write_baseline
from .diagnostics import (
    RULE_REGISTRY,
    Diagnostic,
    FileContext,
    Rule,
    default_rules,
    register_rule,
)
from .engine import SYNTAX_ERROR_CODE, LintEngine, LintResult
from .suppress import filter_suppressed, is_suppressed, suppressed_codes

# Importing the rule modules is what populates RULE_REGISTRY.
from . import rules_determinism as _rules_determinism  # noqa: F401
from . import rules_observability as _rules_observability  # noqa: F401
from . import rules_registry as _rules_registry  # noqa: F401
from . import rules_structure as _rules_structure  # noqa: F401

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "default_rules",
    "LintEngine",
    "LintResult",
    "SYNTAX_ERROR_CODE",
    "load_baseline",
    "write_baseline",
    "filter_baselined",
    "suppressed_codes",
    "is_suppressed",
    "filter_suppressed",
]
