"""Command-line front end for the lint engine (``milo lint``).

Exit codes: 0 clean, 1 new findings (or findings while writing a
baseline would be recorded — writing always exits 0), 2 usage error.
The main ``repro.cli`` registers :func:`add_lint_parser` /
:func:`run_lint` as the ``lint`` subcommand; this module also works
standalone via ``python -m repro.analysis.lint.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import write_baseline
from .diagnostics import RULE_REGISTRY, default_rules
from .engine import LintEngine, LintResult

__all__ = ["add_lint_parser", "run_lint", "main", "DEFAULT_BASELINE_NAME"]

#: Default baseline filename, resolved relative to ``--root``.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def add_lint_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Populate ``parser`` with the ``milo lint`` arguments."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that rule scope patterns are relative to (default: .)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> int:
    for code in sorted(RULE_REGISTRY):
        rule_cls = RULE_REGISTRY[code]
        print(f"{code}  {rule_cls.description}")
        print(f"        scope: {', '.join(rule_cls.scope)}")
        if rule_cls.exclude:
            print(f"        exempt: {', '.join(rule_cls.exclude)}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"milo lint: root {args.root!r} is not a directory", file=sys.stderr)
        return 2

    try:
        select = (
            tuple(code.strip() for code in args.select.split(",") if code.strip())
            if args.select
            else None
        )
        rules = default_rules(select)
    except ValueError as exc:
        print(f"milo lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    try:
        engine = LintEngine(
            root=root,
            rules=rules,
            baseline_path=None if args.no_baseline else baseline_path,
        )
    except ValueError as exc:
        print(f"milo lint: {exc}", file=sys.stderr)
        return 2

    paths = [root / p if not Path(p).is_absolute() else Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"milo lint: no such path(s): {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    result = engine.run(paths)

    if args.write_baseline:
        write_baseline(baseline_path, result.all_findings)
        print(
            f"milo lint: wrote {len(result.all_findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    return _report(result)


def _report(result: LintResult) -> int:
    for diagnostic in result.fresh:
        print(diagnostic.render())
    baselined = len(result.all_findings) - len(result.fresh)
    summary = (
        f"milo lint: {result.files_checked} file(s) checked, "
        f"{len(result.fresh)} new finding(s)"
    )
    if baselined:
        summary += f", {baselined} baselined"
    print(summary)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point: ``python -m repro.analysis.lint.cli``."""
    parser = argparse.ArgumentParser(
        prog="milo lint",
        description="AST-based determinism & invariant linter",
    )
    add_lint_parser(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":
    raise SystemExit(main())
