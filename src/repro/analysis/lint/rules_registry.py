"""Registry rule: argparse choices must derive from a registry/constant.

**REG001** exists because of a real bug: PR 3 grew the KV allocation-policy
registry but the CLI's hardcoded ``choices=["on_demand", ...]`` list
lagged, so registered policies were unreachable from the command line until
``SERVE_KV_POLICIES = tuple(sorted(ALLOCATION_POLICIES))`` tied the two
together.  The rule bans the drift-prone form outright: any
``add_argument(..., choices=<literal list/tuple/set of strings>)`` in a CLI
module is a violation — ``choices=`` must reference a named constant or a
registry-derived expression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .diagnostics import Diagnostic, FileContext, Rule, register_rule

__all__ = ["HardcodedChoicesRule"]


@register_rule
class HardcodedChoicesRule(Rule):
    """REG001: no hardcoded string-literal ``choices=`` in argparse calls."""

    code = "REG001"
    description = (
        "argparse choices= must derive from a registry/constant, never a "
        "hardcoded string list (the PR 3 --kv-policy drift bug)"
    )
    scope = ("src/repro/cli.py", "src/repro/*/cli.py")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg != "choices":
                    continue
                if _is_literal_string_collection(keyword.value):
                    yield context.diagnostic(
                        keyword.value,
                        self.code,
                        "hardcoded choices= list; derive it from the "
                        "registry or a shared named constant so the CLI "
                        "cannot drift from the implementation",
                    )


def _is_literal_string_collection(node: ast.expr) -> bool:
    """A list/tuple/set literal whose elements are all string constants."""
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return False
    if not node.elts:
        return False
    return all(
        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        for elt in node.elts
    )
