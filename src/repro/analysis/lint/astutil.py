"""Shared AST helpers for the lint rules.

The determinism rules all need the same two primitives:

* :func:`import_aliases` — what local names are bound to which modules /
  module attributes (``import numpy as np`` binds ``np`` → ``numpy``;
  ``from time import perf_counter as pc`` binds ``pc`` →
  ``time.perf_counter``), collected over the whole module so late imports
  inside functions are honored too;
* :func:`qualified_name` — the dotted path of a ``Name`` / ``Attribute``
  chain (``np.random.default_rng`` → ``"np.random.default_rng"``), which
  :func:`resolve_call` then rewrites through the alias map to the canonical
  module path (``numpy.random.default_rng``).

This is deliberately *lexical* resolution: no type inference, no following
assignments of modules to other names.  That is exactly the right fidelity
for a determinism linter — the banned idioms (``time.time()``,
``np.random.rand()``) are written in their canonical spelling in practice,
and anything exotic enough to dodge lexical resolution is also exotic
enough to deserve a human in review.
"""

from __future__ import annotations

import ast

__all__ = ["import_aliases", "qualified_name", "resolve_call", "walk_scopes"]


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import time`` → ``{"time": "time"}``; ``import numpy as np`` →
    ``{"np": "numpy"}``; ``from time import perf_counter`` →
    ``{"perf_counter": "time.perf_counter"}``.  Star imports are ignored
    (nothing deterministic can be said about them lexically).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib/numpy
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.expr) -> str | None:
    """Dotted path of a ``Name``/``Attribute`` chain, or ``None``.

    ``ast.Name('np')`` → ``"np"``; ``np.random.default_rng`` →
    ``"np.random.default_rng"``.  Chains interrupted by calls, subscripts
    or literals resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of a called expression, through import aliases.

    ``pc()`` with ``from time import perf_counter as pc`` resolves to
    ``"time.perf_counter"``; ``np.random.rand`` to ``"numpy.random.rand"``.
    Returns ``None`` for expressions that are not a plain name chain.
    """
    dotted = qualified_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def walk_scopes(tree: ast.Module) -> list[tuple[ast.AST, list[ast.stmt]]]:
    """Every (scope node, body) pair: the module plus each function/class.

    Rules that do per-scope name inference (DET003's set-valued locals)
    iterate these so a name bound in one function never leaks into another.
    """
    scopes: list[tuple[ast.AST, list[ast.stmt]]] = [(tree, tree.body)]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scopes.append((node, node.body))
    return scopes
