"""The lint engine: walk files, run rules, apply suppressions + baseline.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the CI
static-analysis job can run it before any heavyweight install, and so the
linter itself passes the gates it enforces.

Paths are normalized to repo-relative posix form before rule dispatch —
rule ``scope`` patterns like ``src/repro/serving/*`` match identically on
every platform and regardless of whether the user invoked
``milo lint src`` or ``milo lint src/repro/serving/engine.py``.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import filter_baselined, load_baseline
from .diagnostics import Diagnostic, FileContext, Rule, default_rules
from .suppress import filter_suppressed

__all__ = ["LintEngine", "LintResult", "SYNTAX_ERROR_CODE"]

#: Pseudo-rule code for files that fail to parse.
SYNTAX_ERROR_CODE = "SYN001"


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    #: Findings that survive suppressions and the baseline — these gate CI.
    fresh: list[Diagnostic] = field(default_factory=list)
    #: All unsuppressed findings, including baselined ones (what
    #: ``--write-baseline`` records).
    all_findings: list[Diagnostic] = field(default_factory=list)
    #: Number of files parsed and checked.
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.fresh


class LintEngine:
    """Runs the registered rules over a file tree rooted at ``root``."""

    def __init__(
        self,
        root: Path,
        rules: list[Rule] | None = None,
        baseline_path: Path | None = None,
    ) -> None:
        self.root = root.resolve()
        self.rules = default_rules() if rules is None else rules
        self.baseline = (
            load_baseline(baseline_path)
            if baseline_path is not None
            else Counter()
        )

    def run(self, paths: list[Path]) -> LintResult:
        """Lint every ``.py`` file under ``paths`` (files or directories)."""
        result = LintResult()
        for file_path in self._discover(paths):
            rel = self._relative(file_path)
            diagnostics = self._check_file(file_path, rel)
            result.files_checked += 1
            result.all_findings.extend(diagnostics)
        result.all_findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))
        result.fresh = filter_baselined(result.all_findings, self.baseline)
        return result

    def _discover(self, paths: list[Path]) -> list[Path]:
        files: set[Path] = set()
        for path in paths:
            path = path.resolve()
            if path.is_dir():
                files.update(
                    p
                    for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    def _relative(self, file_path: Path) -> str:
        try:
            return file_path.relative_to(self.root).as_posix()
        except ValueError:
            return file_path.as_posix()

    def _check_file(self, file_path: Path, rel: str) -> list[Diagnostic]:
        applicable = [rule for rule in self.rules if rule.applies_to(rel)]
        source = file_path.read_text(encoding="utf-8")
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            # A file rules can't see is a finding, not a skip: an unparsable
            # module would dodge every determinism gate otherwise.
            return [
                Diagnostic(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code=SYNTAX_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                    line_text=(exc.text or "").strip(),
                )
            ]
        if not applicable:
            return []
        context = FileContext(path=rel, tree=tree, lines=lines)
        diagnostics: list[Diagnostic] = []
        for rule in applicable:
            diagnostics.extend(rule.check(context))
        return filter_suppressed(diagnostics, lines)
