"""Structural rules: hot-path ``__slots__`` and report-schema closure.

* **SLOT001** — classes on the engine's per-iteration hot path are
  instantiated tens of thousands of times per replayed trace; a stray
  ``__dict__`` per instance is pure memory/cache waste.  Modules listed in
  :data:`HOT_PATH_MODULES` must slot every class they define; any class
  elsewhere can opt in with a ``# milo: hot-path`` marker comment on (or
  directly above) its ``class`` line.  ``Enum``/exception subclasses and
  typing constructs are exempt — they cannot or should not be slotted.
* **RPT001** — the ``report_sha256`` regression gate hashes the report
  dict, so *any* key added to the report changes the hash.  To make that an
  explicit decision rather than an accident, every string key written in
  the report-building functions must appear in the module's
  ``REPORT_SCHEMA_KEYS`` constant.  Adding a report field is then a
  two-line diff — the write and the schema entry — and the schema diff is
  what review (and the gate's changelog) keys on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .diagnostics import Diagnostic, FileContext, Rule, register_rule

__all__ = ["SlotsRule", "ReportSchemaRule", "HOT_PATH_MODULES"]

#: Modules whose every class is on the engine hot path and must be slotted.
HOT_PATH_MODULES: tuple[str, ...] = ("src/repro/serving/request.py",)

#: Marker comment opting an individual class into the slots requirement.
HOT_PATH_MARKER = "# milo: hot-path"

#: Base-class names that exempt a class from SLOT001 (slots are impossible,
#: pointless, or actively harmful on these).
_EXEMPT_BASES: frozenset[str] = frozenset(
    {"Protocol", "ABC", "NamedTuple", "TypedDict"}
)
_EXEMPT_BASE_SUFFIXES: tuple[str, ...] = ("Enum", "Exception", "Error", "Warning")


@register_rule
class SlotsRule(Rule):
    """SLOT001: hot-path classes must declare ``__slots__``."""

    code = "SLOT001"
    description = (
        "hot-path classes (hot-path modules or '# milo: hot-path' marked) "
        "must declare __slots__ or use @dataclass(slots=True)"
    )
    scope = ("src/*",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        module_is_hot = context.path in HOT_PATH_MODULES
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            required = module_is_hot or _has_hot_path_marker(node, context)
            if not required or _is_exempt(node) or _is_slotted(node):
                continue
            yield context.diagnostic(
                node,
                self.code,
                f"hot-path class {node.name} lacks __slots__; declare "
                f"__slots__ or use @dataclass(slots=True)",
            )


def _has_hot_path_marker(node: ast.ClassDef, context: FileContext) -> bool:
    """Marker on the ``class`` line itself or the line directly above it."""
    for lineno in (node.lineno, node.lineno - 1):
        if HOT_PATH_MARKER in context.line_text(lineno):
            return True
    return False


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in _EXEMPT_BASES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    return False


def _is_slotted(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


#: Name of the declared report-schema constant RPT001 checks against.
REPORT_SCHEMA_CONSTANT = "REPORT_SCHEMA_KEYS"

#: Functions/methods that build pieces of the serving report (``run``
#: assembles the overlap section inline).
_REPORT_FUNCS: frozenset[str] = frozenset(
    {"to_dict", "_build_report", "_cluster_section", "run"}
)


@register_rule
class ReportSchemaRule(Rule):
    """RPT001: report keys must be declared in ``REPORT_SCHEMA_KEYS``."""

    code = "RPT001"
    description = (
        "report-dict keys written in report builders (to_dict/_build_report/"
        "_cluster_section/run) must appear in REPORT_SCHEMA_KEYS"
    )
    scope = ("src/repro/serving/engine.py",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        schema = _schema_keys(context.tree)
        report_funcs = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in _REPORT_FUNCS
        ]
        if not report_funcs:
            return
        if schema is None:
            yield context.diagnostic(
                context.tree.body[0] if context.tree.body else context.tree,
                self.code,
                f"module defines report builders but no "
                f"{REPORT_SCHEMA_CONSTANT} constant declaring the report "
                f"schema",
            )
            return
        for func in report_funcs:
            for node in ast.walk(func):
                if isinstance(node, ast.Dict):
                    for key in node.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in schema
                        ):
                            yield context.diagnostic(
                                key,
                                self.code,
                                f"report key {key.value!r} not declared in "
                                f"{REPORT_SCHEMA_CONSTANT}; the "
                                f"report_sha256 gate would drift silently",
                            )
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                            and target.slice.value not in schema
                        ):
                            yield context.diagnostic(
                                target,
                                self.code,
                                f"report key {target.slice.value!r} not "
                                f"declared in {REPORT_SCHEMA_CONSTANT}; the "
                                f"report_sha256 gate would drift silently",
                            )


def _schema_keys(tree: ast.Module) -> frozenset[str] | None:
    """String keys of the module-level ``REPORT_SCHEMA_KEYS`` constant."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == REPORT_SCHEMA_CONSTANT:
                keys = frozenset(
                    node.value
                    for node in ast.walk(value)
                    if isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                )
                return keys
    return None
