"""Determinism rules: wall-clock, global randomness, unordered iteration.

Every reported number in this repo — goldens, fast/general byte-equivalence,
the ``report_sha256`` regression gate — rests on the engine being
deterministic *by construction*.  These rules turn the three ways that
property has historically broken (or structurally could) into static
violations:

* **DET001** — wall-clock reads inside the serving package.  The
  discrete-event clock is the only legitimate time source there; a single
  ``time.time()`` makes a report irreproducible.  ``quant/timing.py`` (the
  quantization wall-time meter) and ``benchmarks/`` (which *measure* wall
  time on purpose) are whitelisted scopes.
* **DET002** — global-state randomness anywhere in ``src/``.  ``random.*``
  and the legacy ``np.random.<fn>`` conveniences draw from hidden global
  state that any import can perturb; the only sanctioned idiom is an
  explicitly seeded, explicitly passed ``np.random.Generator``
  (``np.random.default_rng(seed)`` constructs one and is allowed).
* **DET003** — iterating a bare ``set``/``frozenset`` in the serving
  package.  Set iteration order depends on insertion history and hash
  randomization; feeding it into accumulation (``sum``/``list``/``join``/
  a ``for`` loop carrying state) or tie-breaking silently breaks replay.
  The in-tree fix is always ``sorted(...)`` — which this rule recognizes
  and accepts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .astutil import import_aliases, resolve_call
from .diagnostics import Diagnostic, FileContext, Rule, register_rule

__all__ = ["WallClockRule", "GlobalRandomnessRule", "UnorderedIterationRule"]


#: Wall-clock reading (or wall-clock-coupled) callables, by canonical path.
_WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module attributes that construct *explicit* generators (fine)
#: rather than touching the hidden module-global one (banned).
_RANDOM_ALLOWED: frozenset[str] = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct explicit generators / bit
#: generators; everything else is the legacy global-state convenience API.
_NP_RANDOM_ALLOWED: frozenset[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "MT19937", "Philox", "SFC64"}
)


@register_rule
class WallClockRule(Rule):
    """DET001: no wall-clock reads where the discrete-event clock rules."""

    code = "DET001"
    description = (
        "no wall-clock (time.time/perf_counter/datetime.now) in repro.serving; "
        "the discrete-event clock is the only time source"
    )
    scope = ("src/repro/serving/*",)
    #: Legitimate wall-time scopes (documented whitelist; benchmarks/ and the
    #: quantization timer measure real elapsed time on purpose).
    exclude = ("src/repro/quant/timing.py", "benchmarks/*")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, aliases)
            if resolved in _WALL_CLOCK_CALLS:
                yield context.diagnostic(
                    node,
                    self.code,
                    f"wall-clock call {resolved}() in the serving package; "
                    f"use the engine's simulated clock",
                )


@register_rule
class GlobalRandomnessRule(Rule):
    """DET002: no hidden-global randomness; pass a seeded Generator instead."""

    code = "DET002"
    description = (
        "no global-state randomness (random.*, np.random.<fn>); use an "
        "explicitly seeded np.random.Generator (np.random.default_rng)"
    )
    scope = ("src/*",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, aliases)
            if resolved is None:
                continue
            if resolved.startswith("random."):
                attr = resolved.split(".", 1)[1]
                if "." not in attr and attr not in _RANDOM_ALLOWED:
                    yield context.diagnostic(
                        node,
                        self.code,
                        f"{resolved}() draws from the random module's hidden "
                        f"global state; pass an explicit seeded generator",
                    )
            elif resolved.startswith("numpy.random."):
                attr = resolved.split("numpy.random.", 1)[1]
                if "." not in attr and attr not in _NP_RANDOM_ALLOWED:
                    yield context.diagnostic(
                        node,
                        self.code,
                        f"np.random.{attr}() uses numpy's legacy global RNG; "
                        f"use np.random.default_rng(seed) and pass the "
                        f"Generator explicitly",
                    )


#: Set-producing call targets (after alias resolution).
_SET_CONSTRUCTORS: frozenset[str] = frozenset({"set", "frozenset"})
#: Set methods that yield another set (order still unordered).
_SET_METHODS: frozenset[str] = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
#: Order-sensitive consumers: materialization / reduction of an iterable
#: where element order reaches the result.
_ORDER_SENSITIVE_CALLS: frozenset[str] = frozenset({"sum", "list", "tuple"})


@register_rule
class UnorderedIterationRule(Rule):
    """DET003: no bare-set iteration feeding accumulation or tie-breaking."""

    code = "DET003"
    description = (
        "no iteration over bare set/frozenset in repro.serving (ordering "
        "hazard); wrap the iterable in sorted(...)"
    )
    scope = ("src/repro/serving/*",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(context.tree)
        for scope_node, body in _scopes(context.tree):
            set_names = _set_valued_names(body, aliases)

            def is_set(expr: ast.expr) -> bool:
                return _set_valued(expr, set_names, aliases)

            for node in _walk_scope(body):
                if isinstance(node, ast.For) and is_set(node.iter):
                    yield context.diagnostic(
                        node.iter,
                        self.code,
                        "for-loop over an unordered set; iterate "
                        "sorted(...) instead",
                    )
                elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                    # SetComp is exempt: a set built from a set is
                    # order-insensitive by construction.
                    for gen in node.generators:
                        if is_set(gen.iter):
                            yield context.diagnostic(
                                gen.iter,
                                self.code,
                                "comprehension over an unordered set; iterate "
                                "sorted(...) instead",
                            )
                elif isinstance(node, ast.Call):
                    resolved = resolve_call(node.func, aliases)
                    if (
                        resolved in _ORDER_SENSITIVE_CALLS
                        and node.args
                        and is_set(node.args[0])
                    ):
                        yield context.diagnostic(
                            node,
                            self.code,
                            f"{resolved}() over an unordered set accumulates "
                            f"in hash order; wrap the set in sorted(...)",
                        )
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                        and is_set(node.args[0])
                    ):
                        yield context.diagnostic(
                            node,
                            self.code,
                            "str.join() over an unordered set concatenates in "
                            "hash order; wrap the set in sorted(...)",
                        )


def _scopes(tree: ast.Module) -> list[tuple[ast.AST, list[ast.stmt]]]:
    """The module body plus every function body (class bodies fold into
    their enclosing scope's walk, but functions get their own name table)."""
    out: list[tuple[ast.AST, list[ast.stmt]]] = [(tree, tree.body)]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, node.body))
    return out


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements/expressions without descending into nested functions
    (they are separate scopes with their own set-name inference)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # its body is a separate scope, visited by _scopes
        stack.extend(ast.iter_child_nodes(node))


def _set_valued_names(
    body: list[ast.stmt], aliases: dict[str, str]
) -> frozenset[str]:
    """Local names bound *only* to set-valued expressions in this scope.

    Single-pass, conservative: a name ever assigned a non-set value is
    dropped, so re-used temporaries never false-positive.
    """
    candidates: dict[str, bool] = {}
    for node in _walk_scope(body):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                valued = _set_valued(node.value, frozenset(candidates), aliases)
                if target.id in candidates:
                    candidates[target.id] = candidates[target.id] and valued
                else:
                    candidates[target.id] = valued
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                candidates[node.target.id] = _set_valued(
                    node.value, frozenset(candidates), aliases
                )
    return frozenset(name for name, valued in candidates.items() if valued)


def _set_valued(
    expr: ast.expr, set_names: frozenset[str], aliases: dict[str, str]
) -> bool:
    """Whether ``expr`` lexically evaluates to a set/frozenset."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _set_valued(expr.left, set_names, aliases) or _set_valued(
            expr.right, set_names, aliases
        )
    if isinstance(expr, ast.Call):
        resolved = resolve_call(expr.func, aliases)
        if resolved in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _SET_METHODS
            and _set_valued(expr.func.value, set_names, aliases)
        ):
            return True
    return False
