"""Observability rule: telemetry hooks in serving hot loops must be guarded.

* **OBS001** — the serving engine promises that telemetry is *opt-in*: with
  no tracer/registry attached, the hot loops must run the exact same code
  they ran before observability existed (byte-identical reports, <5%
  overhead).  That only holds if every telemetry call sitting inside a
  ``for``/``while`` loop is dominated by a truthiness test on the tracer or
  metrics object — ``if tracer is not None:``, the inverted
  ``if tracer is None and metrics is None: ... else: <hooks>`` fast-path
  split, or a conditional expression (``x if tracer is not None else None``).
  An unguarded hook call would run (and allocate) every iteration of every
  simulated run, tracing or not.

The check is branch-insensitive on purpose: it asks "is there *any*
enclosing ``if``/conditional whose test mentions a telemetry name?", not
"is the call in the truthy branch?".  Getting the polarity right is the
equivalence tests' job; the lint gate only enforces that the disabled path
never reaches the hook unconditionally.  The telemetry package itself is
exempt — once inside ``Tracer``/``MetricsRegistry`` code, telemetry is by
definition enabled.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .diagnostics import Diagnostic, FileContext, Rule, register_rule

__all__ = ["GuardedTelemetryRule", "TELEMETRY_NAME_MARKERS"]

#: Lowercase substrings that mark an identifier as telemetry-related.
TELEMETRY_NAME_MARKERS: tuple[str, ...] = ("tracer", "metric", "telemetry")

#: Guard constructs whose test can dominate a hook call.
_GUARDS = (ast.If, ast.IfExp)

#: Loop constructs that put a call on the per-iteration path.
_LOOPS = (ast.For, ast.AsyncFor, ast.While)

#: Scope boundaries: loop/guard containment is per-function.
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_telemetry_name(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in TELEMETRY_NAME_MARKERS)


def _dotted_parts(node: ast.expr) -> list[str]:
    """Identifier parts of a dotted expression (``self.tracer.kv`` →
    ``["self", "tracer", "kv"]``); empty for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _is_telemetry_call(call: ast.Call) -> bool:
    return any(_is_telemetry_name(part) for part in _dotted_parts(call.func))


def _test_mentions_telemetry(test: ast.expr) -> bool:
    """Whether a guard's test expression references any telemetry name."""
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and _is_telemetry_name(node.id):
            return True
        if isinstance(node, ast.Attribute) and _is_telemetry_name(node.attr):
            return True
    return False


@register_rule
class GuardedTelemetryRule(Rule):
    """OBS001: telemetry hook calls in hot loops must be guarded."""

    code = "OBS001"
    description = (
        "telemetry calls (tracer/metrics/telemetry names) inside serving "
        "loops must sit under an if/conditional testing a telemetry object"
    )
    scope = ("src/repro/serving/*",)
    exclude = ("src/repro/serving/telemetry/*",)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(context.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not _is_telemetry_call(node):
                continue
            in_loop = False
            guarded = False
            ancestor = parents.get(node)
            while ancestor is not None:
                if isinstance(ancestor, _SCOPES):
                    break
                if isinstance(ancestor, _GUARDS) and _test_mentions_telemetry(
                    ancestor.test
                ):
                    guarded = True
                if isinstance(ancestor, _LOOPS):
                    in_loop = True
                ancestor = parents.get(ancestor)
            if in_loop and not guarded:
                parts = ".".join(_dotted_parts(node.func)) or "<call>"
                yield context.diagnostic(
                    node,
                    self.code,
                    f"telemetry call {parts}() inside a hot loop is not "
                    f"guarded by a tracer/metrics truthiness check; the "
                    f"disabled path would pay for it every iteration",
                )
