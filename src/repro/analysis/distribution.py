"""Weight-distribution analysis: information loss under extreme quantization.

Reproduces the data behind three of the paper's figures:

* **Fig. 2** — samples of FP16 / de-quantized INT4 / de-quantized INT3
  weights for an attention projection and an expert projection.
* **Fig. 4** — histograms of weight magnitudes before and after quantization;
  the overlapping area measures how much of the original distribution the
  quantized representation still covers.  INT3 keeps the outliers but loses
  the moderate values; INT3 + a low-rank compensator closes most of the gap.
* **Fig. 5** — the positive correlation between a weight's kurtosis and its
  relative quantization error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.init import excess_kurtosis
from ..models.transformer import MoETransformer
from ..quant.hqq import HQQConfig, HQQQuantizer
from ..quant.rtn import RTNQuantizer

__all__ = [
    "WeightSample",
    "sample_layer_weights",
    "histogram_overlap",
    "information_loss_report",
    "kurtosis_error_correlation",
]


@dataclass
class WeightSample:
    """FP16 weights and their de-quantized reconstructions for one layer (Fig. 2)."""

    name: str
    kind: str
    fp16: np.ndarray
    int4: np.ndarray
    int3: np.ndarray


def sample_layer_weights(
    model: MoETransformer,
    layer_name: str,
    group_size: int = 64,
    max_rows: int = 64,
    max_cols: int = 64,
) -> WeightSample:
    """Quantize one layer at INT4 and INT3 and return a cropped sample of each."""
    from ..models.transformer import classify_parameter

    linear = model.get_submodule(layer_name)
    weight = linear.weight.data
    int4 = RTNQuantizer(4, group_size).quantize(weight).dequantize()
    int3 = RTNQuantizer(3, group_size).quantize(weight).dequantize()
    crop = (slice(0, max_rows), slice(0, max_cols))
    return WeightSample(
        name=layer_name,
        kind=classify_parameter(f"{layer_name}.weight"),
        fp16=weight[crop].copy(),
        int4=int4[crop],
        int3=int3[crop],
    )


def histogram_overlap(
    original: np.ndarray,
    reconstructed: np.ndarray,
    bins: int = 64,
    magnitude: bool = True,
) -> float:
    """Overlap coefficient of the value histograms (the green area of Fig. 4).

    1.0 means the reconstructed weights cover the original distribution
    perfectly; low values mean the quantizer collapsed many distinct values
    onto few grid points.
    """
    a = np.abs(original).ravel() if magnitude else np.asarray(original).ravel()
    b = np.abs(reconstructed).ravel() if magnitude else np.asarray(reconstructed).ravel()
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        return 1.0
    edges = np.linspace(lo, hi, bins + 1)
    hist_a, _ = np.histogram(a, bins=edges, density=False)
    hist_b, _ = np.histogram(b, bins=edges, density=False)
    hist_a = hist_a / hist_a.sum()
    hist_b = hist_b / hist_b.sum()
    return float(np.minimum(hist_a, hist_b).sum())


def information_loss_report(
    weight: np.ndarray,
    rank: int,
    group_size: int = 64,
    bins: int = 64,
) -> dict[str, float]:
    """Histogram overlap of INT3, INT4, and INT3 + low-rank compensation (Fig. 4).

    Higher is better; the expected ordering is INT3 < INT4 < INT3+LoRC for
    heavy-tailed weights.
    """
    from ..core.milo import MiLoConfig, MiLoMatrixOptimizer

    weight = np.asarray(weight, dtype=np.float64)
    int3 = RTNQuantizer(3, group_size).quantize(weight).dequantize()
    int4 = RTNQuantizer(4, group_size).quantize(weight).dequantize()
    milo = MiLoMatrixOptimizer(MiLoConfig(bits=3, group_size=group_size, max_iterations=3))
    compensated = milo.optimize(weight, rank).reconstructed()
    return {
        "int3": histogram_overlap(weight, int3, bins=bins),
        "int4": histogram_overlap(weight, int4, bins=bins),
        "int3+lorc": histogram_overlap(weight, compensated, bins=bins),
    }


def kurtosis_error_correlation(
    model: MoETransformer,
    bits: int = 3,
    group_size: int = 64,
    layer_index: int | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Kurtosis vs. relative quantization error across weights (Fig. 5).

    Returns ``(kurtosis values, relative errors, Pearson correlation)``.
    """
    quantizer = HQQQuantizer(HQQConfig(bits=bits, group_size=group_size))
    kurts, errors = [], []
    for param_path, _kind, linear in model.iter_quantizable():
        if layer_index is not None and f"layer_{layer_index}." not in param_path:
            continue
        weight = linear.weight.data
        dq = quantizer.quantize(weight).dequantize()
        denom = float(np.linalg.norm(weight))
        errors.append(float(np.linalg.norm(weight - dq)) / denom if denom else 0.0)
        kurts.append(excess_kurtosis(weight))
    kurts_arr = np.asarray(kurts)
    errors_arr = np.asarray(errors)
    if len(kurts_arr) > 1 and kurts_arr.std() > 0 and errors_arr.std() > 0:
        corr = float(np.corrcoef(kurts_arr, errors_arr)[0, 1])
    else:
        corr = 0.0
    return kurts_arr, errors_arr, corr
