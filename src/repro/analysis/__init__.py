"""Analysis tooling: kurtosis, residual rank, expert frequency, distributions."""

from .distribution import (
    WeightSample,
    histogram_overlap,
    information_loss_report,
    kurtosis_error_correlation,
    sample_layer_weights,
)
from .expert_frequency import (
    ExpertFrequencyProfile,
    fig3_reference_frequencies,
    profile_expert_frequency,
)
from .kurtosis import MatrixKurtosis, kurtosis_by_kind, model_kurtosis_records
from .residual_rank import (
    ResidualRankRecord,
    model_residual_ranks,
    residual_rank,
    residual_rank_by_kind,
)

__all__ = [
    "MatrixKurtosis",
    "model_kurtosis_records",
    "kurtosis_by_kind",
    "ResidualRankRecord",
    "residual_rank",
    "model_residual_ranks",
    "residual_rank_by_kind",
    "ExpertFrequencyProfile",
    "profile_expert_frequency",
    "fig3_reference_frequencies",
    "WeightSample",
    "sample_layer_weights",
    "histogram_overlap",
    "information_loss_report",
    "kurtosis_error_correlation",
]
