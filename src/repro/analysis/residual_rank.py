"""Residual-matrix rank analysis (paper Table 2, "Res. Rank" row).

After quantizing a weight ``W`` to ``W_dq``, the residual ``E = W - W_dq``
carries the information the quantizer lost.  The paper characterizes it by
counting the singular values smaller than ``tau * sigma_max`` (tau = 0.5 in
Table 2): heavy-tailed dense layers concentrate their residual energy in a
few directions (few small singular values relative to the matrix size), which
is exactly why a low-rank compensator recovers them so effectively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.transformer import MoETransformer
from ..quant.hqq import HQQConfig, HQQQuantizer
from ..quant.rtn import RTNQuantizer

__all__ = ["ResidualRankRecord", "residual_rank", "model_residual_ranks", "residual_rank_by_kind"]


@dataclass(frozen=True)
class ResidualRankRecord:
    """Residual-rank record for one quantizable weight matrix."""

    name: str
    kind: str
    shape: tuple[int, int]
    rank: int
    relative_error: float


def residual_rank(residual: np.ndarray, tau: float = 0.5) -> int:
    """Number of singular values of ``residual`` smaller than ``tau * sigma_max``."""
    if not 0.0 < tau <= 1.0:
        raise ValueError("tau must lie in (0, 1]")
    residual = np.asarray(residual, dtype=np.float64)
    if residual.ndim != 2:
        raise ValueError(f"expected a 2-D residual, got shape {residual.shape}")
    singular_values = np.linalg.svd(residual, compute_uv=False)
    if singular_values.size == 0 or singular_values[0] == 0:
        return 0
    return int(np.sum(singular_values < tau * singular_values[0]))


def model_residual_ranks(
    model: MoETransformer,
    bits: int = 3,
    group_size: int = 64,
    tau: float = 0.5,
    method: str = "rtn",
) -> list[ResidualRankRecord]:
    """Residual rank of every quantizable weight under INT-k quantization."""
    if method == "rtn":
        quantizer = RTNQuantizer(bits=bits, group_size=group_size)
    elif method == "hqq":
        quantizer = HQQQuantizer(HQQConfig(bits=bits, group_size=group_size))
    else:
        raise ValueError(f"unsupported method {method!r} for residual analysis")

    records = []
    for param_path, kind, linear in model.iter_quantizable():
        weight = linear.weight.data
        residual = weight - quantizer.quantize(weight).dequantize()
        denom = float(np.linalg.norm(weight))
        rel = float(np.linalg.norm(residual)) / denom if denom else 0.0
        records.append(
            ResidualRankRecord(
                name=param_path,
                kind=kind,
                shape=weight.shape,
                rank=residual_rank(residual, tau=tau),
                relative_error=rel,
            )
        )
    return records


def residual_rank_by_kind(
    model: MoETransformer, bits: int = 3, group_size: int = 64, tau: float = 0.5
) -> dict[str, float]:
    """Average residual rank per layer kind (the Table 2 "Res. Rank" row)."""
    buckets: dict[str, list[int]] = {}
    for record in model_residual_ranks(model, bits=bits, group_size=group_size, tau=tau):
        buckets.setdefault(record.kind, []).append(record.rank)
    return {kind: float(np.mean(values)) for kind, values in buckets.items()}
