"""Expert activation-frequency analysis (paper Observation 1.2, Fig. 3).

Experts within one MoE layer are not activated equally often; the imbalance
is mild for Mixtral's 8 coarse experts and severe for DeepSeek's fine-grained
experts (the paper reports an 11.7x max/min ratio).  This module profiles a
model over a token stream and summarizes the per-layer frequency
distribution — the heatmap of Fig. 3 and the signal behind the Frequency-{r}
rank policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.transformer import MoETransformer

__all__ = [
    "ExpertFrequencyProfile",
    "profile_expert_frequency",
    "fig3_reference_frequencies",
    "fig3_layer_frequencies",
]


def fig3_reference_frequencies(
    num_experts: int, imbalance_ratio: float = 4.0
) -> np.ndarray:
    """A deterministic Fig. 3-style skewed expert-frequency distribution.

    Geometric decay in expert id with an exact ``max/min == imbalance_ratio``
    (``f_i \\propto ratio^{-i/(E-1)}``), normalized to sum to 1.  The paper's
    Fig. 3 reports mild skew for Mixtral's 8 coarse experts (a few x) and an
    11.7x max/min ratio for DeepSeek's fine-grained experts; the default of
    4.0 sits in Mixtral's regime, and callers studying DeepSeek-like routing
    pass ``imbalance_ratio=11.7``.

    This is the routing-skew model the multi-GPU serving engine uses when no
    measured :class:`ExpertFrequencyProfile` is supplied: the per-iteration
    expert token load is apportioned by these frequencies, so a frequency-
    blind expert placement concentrates hot experts onto straggler devices
    exactly the way the measured skew would.
    """
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if imbalance_ratio < 1.0:
        raise ValueError("imbalance_ratio must be >= 1")
    if num_experts == 1:
        return np.ones(1)
    exponents = np.arange(num_experts) / (num_experts - 1)
    freqs = imbalance_ratio ** (-exponents)
    return freqs / freqs.sum()


def fig3_layer_frequencies(
    num_layers: int,
    num_experts: int,
    max_imbalance_ratio: float = 11.7,
    min_imbalance_ratio: float = 1.5,
) -> np.ndarray:
    """A deterministic *per-layer* Fig. 3-style frequency heatmap.

    Returns a ``(num_layers, num_experts)`` matrix of normalized expert
    frequencies modeling the two depth effects visible in the paper's Fig. 3
    heatmaps (and in published MoE routing studies):

    * **skew grows with depth** — shallow layers route nearly uniformly while
      deep layers concentrate on a few experts.  Layer ``l`` gets a geometric
      profile whose max/min ratio interpolates log-linearly from
      ``min_imbalance_ratio`` (layer 0) to ``max_imbalance_ratio`` (last
      layer);
    * **the hot expert differs by layer** — each layer's profile is rotated
      by its layer index, so expert 0 is not globally hot and a placement
      tuned for one layer's skew is wrong for another's.

    This is the default per-layer routing model of the serving engine's
    overlap-aware layered cost path (``--overlap``); callers with a measured
    :class:`ExpertFrequencyProfile` pass its heatmap instead.  The flat
    :func:`fig3_reference_frequencies` remains the whole-model profile an
    offline single-distribution profiling pass would report.
    """
    if num_layers <= 0:
        raise ValueError("num_layers must be positive")
    if min_imbalance_ratio < 1.0 or max_imbalance_ratio < min_imbalance_ratio:
        raise ValueError(
            "imbalance ratios must satisfy 1 <= min_imbalance_ratio <= max_imbalance_ratio"
        )
    depth = (
        np.arange(num_layers) / (num_layers - 1) if num_layers > 1 else np.zeros(1)
    )
    ratios = min_imbalance_ratio * (max_imbalance_ratio / min_imbalance_ratio) ** depth
    rows = []
    for layer, ratio in enumerate(ratios):
        profile = fig3_reference_frequencies(num_experts, float(ratio))
        rows.append(np.roll(profile, layer % num_experts))
    return np.stack(rows)


@dataclass
class ExpertFrequencyProfile:
    """Per-layer expert activation statistics."""

    model_name: str
    counts: dict[int, np.ndarray]        # layer index -> raw activation counts
    frequencies: dict[int, np.ndarray]   # layer index -> normalized frequencies

    def heatmap(self) -> np.ndarray:
        """(num_moe_layers, num_experts) matrix of normalized frequencies (Fig. 3)."""
        if not self.frequencies:
            return np.zeros((0, 0))
        layers = sorted(self.frequencies)
        return np.stack([self.frequencies[i] for i in layers])

    def imbalance_ratio(self, layer: int | None = None) -> float:
        """Max/min activation ratio within one layer (or the worst layer)."""
        if not self.frequencies:
            return 1.0
        ratios = []
        layers = [layer] if layer is not None else sorted(self.frequencies)
        for i in layers:
            freq = self.frequencies[i]
            least = freq[freq > 0].min() if np.any(freq > 0) else 1.0
            most = freq.max()
            ratios.append(most / least if least > 0 else np.inf)
        return float(max(ratios))

    def coefficient_of_variation(self) -> float:
        """Mean CV of expert frequencies across layers (imbalance summary)."""
        if not self.frequencies:
            return 0.0
        cvs = []
        for freq in self.frequencies.values():
            mean = freq.mean()
            cvs.append(freq.std() / mean if mean > 0 else 0.0)
        return float(np.mean(cvs))


def profile_expert_frequency(
    model: MoETransformer,
    tokens: np.ndarray | None = None,
    num_tokens: int = 2048,
    seed: int = 0,
) -> ExpertFrequencyProfile:
    """Run a token stream through the model and collect router statistics.

    If ``tokens`` is not given, a synthetic stream of ``num_tokens`` tokens is
    drawn uniformly from the vocabulary — the routing skew then reflects the
    router's own (learned-like plus popularity-bias) preferences, as in the
    paper's WikiText-2 profiling.
    """
    if tokens is None:
        rng = np.random.default_rng(seed)
        seq = 32
        batch = max(1, num_tokens // seq)
        tokens = rng.integers(0, model.config.vocab_size, size=(batch, seq))
    model.reset_expert_counts()
    model.forward(np.asarray(tokens))
    counts = model.expert_activation_counts()
    model.reset_expert_counts()

    frequencies = {}
    for layer, layer_counts in counts.items():
        total = layer_counts.sum()
        frequencies[layer] = layer_counts / total if total else np.zeros_like(layer_counts, dtype=float)
    return ExpertFrequencyProfile(model_name=model.config.name, counts=counts, frequencies=frequencies)
