"""Command-line interface mirroring the MiLo artifact's workflow scripts.

Four subcommands; the first three correspond to the stages of the paper's
artifact appendix, the fourth goes beyond it:

* ``milo quantize``   — quantize a mini model with RTN / HQQ / GPTQ / MiLo and
  report memory and quantization time (the role of ``MiLo_quant_main.py``).
* ``milo evaluate``   — quantize and then evaluate perplexity plus the task
  suite, printing a Table-3-style row per method.
* ``milo kernel``     — run the kernel performance model for the Appendix C
  GEMM shapes (the role of ``kernel_GeMM_performance.sh``).
* ``milo serve``      — run the continuous-batching serving simulation
  (:mod:`repro.serving`) for a full-size model on one of the Table 7
  backends, under a synthetic Poisson workload or a replayed trace, and
  print a JSON report with p50/p95 TTFT, TPOT and sustained QPS.  With
  ``--trace-events`` / ``--metrics-out`` it also records the deterministic
  sim-clock observability streams (:mod:`repro.serving.telemetry`).
* ``milo analyze``    — summarize a recorded serving trace: queueing-delay
  breakdown, per-device busy/straggler attribution, KV-pressure timeline.
* ``milo lint``       — run the AST-based determinism & invariant linter
  (:mod:`repro.analysis.lint`) over the source tree; exits nonzero on any
  finding not covered by the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .analysis.lint.cli import add_lint_parser, run_lint
from .core import COMPRESSION_METHODS, ModelCompressor, UniformRank, build_strategy
from .core.rank_policy import DenseRank, KurtosisRank, SparseRank
from .data import zipfian_corpus
from .eval import EvaluationEnvironment, EvaluationHarness, format_rows
from .kernels import UnsupportedBatchError, default_backends
from .kernels.device import A100_40GB, A100_80GB
from .models import REFERENCE_FFN_SHAPES, available_models, build_model
from .models.registry import FULL_MODEL_SPECS
from .serving.cluster import PLACEMENT_POLICIES
from .serving.kv_cache import ALLOCATION_POLICIES
from .serving.scheduler import ADMISSION_MODES, PREEMPT_MODES

__all__ = ["main", "build_parser"]

#: Serving backends selectable from the command line, keyed by CLI name.
SERVE_BACKENDS = ("milo", "fp16", "gptq3bit", "marlin")
SERVE_DEVICES = {"a100-40gb": A100_40GB, "a100-80gb": A100_80GB}
#: Derived from the allocation-policy registry so policies registered there
#: appear on ``--kv-policy`` automatically (no hardcoded duplicate to drift).
SERVE_KV_POLICIES = tuple(sorted(ALLOCATION_POLICIES))
#: Likewise derived from the expert-placement registry (``--placement``).
SERVE_PLACEMENTS = tuple(sorted(PLACEMENT_POLICIES))


def _make_policy(args: argparse.Namespace, config) -> object | None:
    if args.strategy:
        return build_strategy(args.strategy, config)
    policies = []
    if args.dense_rank:
        policies.append(DenseRank(args.dense_rank))
    if args.sparse_rank:
        policies.append(SparseRank(args.sparse_rank))
    if args.kurtosis_rank:
        policies.append(KurtosisRank(args.kurtosis_rank))
    if args.uniform_rank:
        policies.append(UniformRank(args.uniform_rank))
    if not policies:
        return None
    if len(policies) == 1:
        return policies[0]
    from .core.rank_policy import CompositeRankPolicy

    return CompositeRankPolicy(policies)


def _compress(args: argparse.Namespace):
    model = build_model(args.model)
    policy = _make_policy(args, model.config)
    calibration = None
    if args.method == "gptq":
        calibration = zipfian_corpus(
            model.config.vocab_size, num_sequences=32, seq_len=32, seed=args.seed
        ).tokens
    compressor = ModelCompressor(
        method=args.method,
        bits=args.bits,
        group_size=args.group_size,
        rank_policy=policy,
        calibration_tokens=calibration,
        compensator_bits=args.compensator_bits,
    )
    return compressor.compress(model)


def cmd_quantize(args: argparse.Namespace) -> int:
    model, report = _compress(args)
    summary = {
        "model": args.model,
        "method": report.method,
        "bits": report.bits,
        "group_size": report.group_size,
        "memory_mb": round(report.memory_bytes / 2**20, 3),
        "fp16_memory_mb": round(report.fp16_memory_bytes / 2**20, 3),
        "compression_ratio": round(report.compression_ratio, 4),
        "quant_time_s": round(report.quant_time_s, 3),
        "average_rank": round(report.average_rank, 2),
    }
    print(json.dumps(summary, indent=2))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    teacher = build_model(args.model)
    environment = EvaluationEnvironment.from_teacher(
        teacher,
        num_sequences=args.eval_sequences,
        seq_len=args.eval_seq_len,
        num_task_items=args.task_items,
        seed=args.seed,
    )
    harness = EvaluationHarness(environment)
    rows = [harness.evaluate(teacher, "fp16").as_row()]
    model, report = _compress(args)
    row = harness.evaluate(model, f"{args.method}-int{args.bits}").as_row()
    row["quant_time_s"] = round(report.quant_time_s, 3)
    rows.append(row)
    print(format_rows(rows, title=f"Evaluation on {args.model}"))
    return 0


def cmd_kernel(args: argparse.Namespace) -> int:
    if args.gemm_model not in REFERENCE_FFN_SHAPES:
        print(f"unknown GEMM model {args.gemm_model!r}; known: {sorted(REFERENCE_FFN_SHAPES)}")
        return 2
    shapes = REFERENCE_FFN_SHAPES[args.gemm_model]
    rows = []
    for batch in args.batch_sizes:
        for name, sim in default_backends(asymmetric_model=args.asymmetric).items():
            try:
                tflops = sim.mlp_tflops(shapes, batch)
                latency = sim.mlp_latency(shapes, batch)
            except UnsupportedBatchError:
                tflops, latency = float("nan"), float("nan")
            rows.append(
                {
                    "batch": batch,
                    "backend": name,
                    "tflops": round(tflops, 2),
                    "latency_us": round(latency * 1e6, 2),
                }
            )
    print(format_rows(rows, title=f"GEMM throughput model for {args.gemm_model} MLP"))
    return 0


def _make_serve_backend(name: str, device_name: str):
    from .runtime.backends import (
        GPTQ3bitBackend,
        MarlinBackend,
        MiLoBackend,
        PyTorchFP16Backend,
    )

    device = SERVE_DEVICES[device_name]
    factories = {
        "milo": lambda: MiLoBackend(device=device),
        "fp16": lambda: PyTorchFP16Backend(device=device),
        "gptq3bit": lambda: GPTQ3bitBackend(device=device),
        "marlin": lambda: MarlinBackend(serve_asymmetric_model=True, device=device),
    }
    return factories[name]()


def cmd_serve(args: argparse.Namespace) -> int:
    from .runtime.backends import OutOfMemoryError
    from .serving import (
        EngineConfig,
        ServingEngine,
        TraceSchemaError,
        load_trace,
        poisson_workload,
        replay_workload,
    )

    backend = _make_serve_backend(args.backend, args.device)
    try:
        prefill_devices = decode_devices = 0
        if args.disagg is not None:
            head, sep, tail = args.disagg.partition(":")
            if not sep or not head or not tail:
                raise ValueError(
                    f"--disagg takes P:D (prefill:decode device counts), got {args.disagg!r}"
                )
            prefill_devices = int(head)
            decode_devices = int(tail)
        config = EngineConfig(
            block_size=args.block_size,
            max_batch_size=args.max_batch,
            admission=args.admission,
            reserve_gb=args.reserve_gb,
            kv_policy=args.kv_policy,
            prefill_chunk=args.prefill_chunk,
            devices=args.devices,
            placement=args.placement,
            prefill_devices=prefill_devices,
            decode_devices=decode_devices,
            preempt_mode=args.preempt_mode,
            overlap=args.overlap,
            replacement_threshold=args.replacement_threshold,
            debug_checks=not args.no_debug_checks,
            fast_path=not args.no_fast_path,
        )
    except ValueError as exc:
        print(f"invalid serving config: {exc}", file=sys.stderr)
        return 2
    try:
        engine = ServingEngine(backend, args.model, config)
    except OutOfMemoryError as exc:
        print(
            json.dumps(
                {
                    "backend": backend.name,
                    "model": args.model,
                    "error": "out-of-memory",
                    "detail": str(exc),
                    "required_gb": exc.required_gb,
                    "available_gb": exc.available_gb,
                    "device": exc.device,
                },
                indent=2,
            )
        )
        return 1
    try:
        if args.trace:
            try:
                workload = load_trace(args.trace)
            except (OSError, TraceSchemaError) as exc:
                print(f"invalid trace: {exc}", file=sys.stderr)
                return 2
        elif args.replay:
            with open(args.replay) as fh:
                workload = replay_workload(json.load(fh))
        else:
            workload = poisson_workload(
                num_requests=args.requests,
                qps=args.qps,
                seed=args.seed,
                mean_prompt_tokens=args.prompt_tokens,
                mean_new_tokens=args.max_new_tokens,
                length_jitter=args.length_jitter,
                shared_prefix_tokens=args.shared_prefix_tokens,
                prefix_groups=args.prefix_groups,
            )
    except (ValueError, TypeError, OSError, json.JSONDecodeError) as exc:
        print(f"invalid workload: {exc}", file=sys.stderr)
        return 2
    tracer = None
    metrics = None
    if args.trace_events or args.metrics_out:
        from .serving.telemetry import MetricsRegistry, Tracer

        if args.trace_events:
            tracer = Tracer()
        if args.metrics_out:
            try:
                metrics = MetricsRegistry(interval=args.metrics_interval)
            except ValueError as exc:
                print(f"invalid serving config: {exc}", file=sys.stderr)
                return 2
        engine.enable_telemetry(tracer=tracer, metrics=metrics)
    report = engine.run(workload).to_dict()
    if tracer is not None:
        if args.trace_events.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_events)
        else:
            from .serving.telemetry import chrome_trace

            with open(args.trace_events, "w") as fh:
                json.dump(chrome_trace(tracer, metrics), fh)
                fh.write("\n")
    if metrics is not None:
        metrics.write_jsonl(args.metrics_out)
    if not args.per_request:
        report.pop("requests")
        report.pop("completion_order")
    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .serving.telemetry import analyze_trace, load_metrics_file, load_trace_file

    try:
        events, samples, meta = load_trace_file(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 2
    if args.metrics:
        try:
            samples = load_metrics_file(args.metrics)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"invalid metrics file: {exc}", file=sys.stderr)
            return 2
    print(json.dumps(analyze_trace(events, samples, meta), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="milo", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="mixtral-mini", choices=available_models())
        p.add_argument("--method", default="milo", choices=COMPRESSION_METHODS)
        p.add_argument("--bits", type=int, default=3)
        p.add_argument("--group-size", type=int, default=64)
        p.add_argument("--compensator-bits", type=int, default=3)
        p.add_argument("--strategy", default=None, help="named paper strategy, e.g. mixtral-s1")
        p.add_argument("--dense-rank", type=int, default=0)
        p.add_argument("--sparse-rank", type=int, default=0)
        p.add_argument("--kurtosis-rank", type=int, default=0)
        p.add_argument("--uniform-rank", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    q = sub.add_parser("quantize", help="quantize a mini model and report memory / time")
    add_common(q)
    q.set_defaults(func=cmd_quantize)

    e = sub.add_parser("evaluate", help="quantize and evaluate perplexity + tasks")
    add_common(e)
    e.add_argument("--eval-sequences", type=int, default=16)
    e.add_argument("--eval-seq-len", type=int, default=32)
    e.add_argument("--task-items", type=int, default=96)
    e.set_defaults(func=cmd_evaluate)

    k = sub.add_parser("kernel", help="kernel GEMM performance model")
    k.add_argument("--gemm-model", default="mixtral-8x7b")
    k.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 16, 32])
    k.add_argument("--asymmetric", action="store_true")
    k.set_defaults(func=cmd_kernel)

    s = sub.add_parser(
        "serve", help="continuous-batching serving simulation (JSON report)"
    )
    s.add_argument("--backend", default="milo", choices=SERVE_BACKENDS)
    s.add_argument("--model", default="mixtral-8x7b", choices=sorted(FULL_MODEL_SPECS))
    s.add_argument("--device", default="a100-40gb", choices=sorted(SERVE_DEVICES))
    s.add_argument("--qps", type=float, default=8.0, help="Poisson arrival rate")
    s.add_argument("--requests", type=int, default=200)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--prompt-tokens", type=int, default=128, help="mean prompt length")
    s.add_argument("--max-new-tokens", type=int, default=64, help="mean decode budget")
    s.add_argument("--length-jitter", type=float, default=0.25)
    s.add_argument(
        "--shared-prefix-tokens",
        type=int,
        default=0,
        help="prepend a shared prompt prefix of N tokens to every Poisson request "
        "(modeling common system prompts; enables prefix caching)",
    )
    s.add_argument(
        "--prefix-groups",
        type=int,
        default=1,
        help="number of distinct shared prefixes requests are drawn from",
    )
    s.add_argument("--block-size", type=int, default=16, help="KV block size in tokens")
    s.add_argument("--max-batch", type=int, default=64)
    s.add_argument("--admission", default="queue", choices=ADMISSION_MODES)
    s.add_argument("--reserve-gb", type=float, default=1.0)
    s.add_argument(
        "--kv-policy",
        default="reserve",
        choices=sorted(SERVE_KV_POLICIES),
        help="KV allocation: full-extent reservation or on-demand growth with preemption",
    )
    s.add_argument(
        "--prefill-chunk",
        type=int,
        default=None,
        help="feed at most N prompt tokens per iteration (Sarathi-style chunked prefill)",
    )
    s.add_argument(
        "--devices",
        type=int,
        default=1,
        help="serve expert-parallel on N copies of the device: KV block pool "
        "sharded per device, experts placed by --placement, iteration cost = "
        "max over per-device costs (1 = the single-device engine, bit-for-bit)",
    )
    s.add_argument(
        "--placement",
        default="balanced",
        choices=SERVE_PLACEMENTS,
        help="expert placement across devices: round-robin by id ('balanced') "
        "or Fig. 3 skew-aware greedy packing ('frequency')",
    )
    s.add_argument(
        "--disagg",
        default=None,
        metavar="P:D",
        help="DistServe-style disaggregation: the first P devices prefill, "
        "the last D decode (P + D must equal --devices); completed prefills "
        "hand their KV blocks to the least-loaded decode device over the "
        "interconnect, and the report gains a 'migration' section",
    )
    s.add_argument(
        "--preempt-mode",
        default="recompute",
        choices=PREEMPT_MODES,
        help="what preemption does to the victim's KV: discard and re-prefill "
        "on resume ('recompute') or park it in host memory and restore it "
        "over the PCIe link on re-admission ('swap'); the migration section "
        "prices both so the modes are directly comparable",
    )
    s.add_argument(
        "--overlap",
        action="store_true",
        help="overlap-aware layered cost model (requires --devices > 1): each "
        "MoE layer gets its own expert placement and max-over-devices compute "
        "term, and layer l's all-to-all overlaps with layer l+1's compute "
        "(step = sum_l of max-ish(compute_l, comm_{l-1}), scaled by the "
        "device's overlap_efficiency); the report gains an 'overlap' section "
        "with hidden_comm_s / overlap_ratio / replacements / migration_s",
    )
    s.add_argument(
        "--replacement-threshold",
        type=float,
        default=None,
        metavar="TV",
        help="with --overlap: re-pack a layer's experts (LPT) when its "
        "measured routing frequencies drift more than this total-variation "
        "distance from the profile its placement was packed for; moved "
        "expert weights are priced over the interconnect as a migration "
        "stall (default: dynamic re-placement off)",
    )
    workload_source = s.add_mutually_exclusive_group()
    workload_source.add_argument(
        "--replay", default=None, help="JSON trace of [arrival, prompt, decode[, priority]] rows"
    )
    workload_source.add_argument(
        "--trace",
        default=None,
        help="JSONL trace file of {arrival, prompt, max_new_tokens, priority?, "
        "prefix_id?, prefix_tokens?} records (streamed one line at a time)",
    )
    s.add_argument(
        "--no-debug-checks",
        action="store_true",
        help="skip per-run engine invariant checks (KV-leak audit); the "
        "report is bit-identical either way — benchmarks turn this on",
    )
    s.add_argument(
        "--no-fast-path",
        action="store_true",
        help="force the general per-iteration engine loop instead of the "
        "event-driven steady-state fast path (debugging aid; reports are "
        "bit-identical either way)",
    )
    s.add_argument("--per-request", action="store_true", help="include per-request records")
    s.add_argument(
        "--report-out",
        "--output",
        dest="output",
        default=None,
        metavar="PATH",
        help="write the JSON report to a file (also printed to stdout)",
    )
    s.add_argument(
        "--trace-events",
        default=None,
        metavar="PATH",
        help="record a deterministic sim-clock lifecycle trace and write it "
        "as Chrome trace-event JSON (open in Perfetto or chrome://tracing); "
        "a PATH ending in .jsonl writes the raw event stream instead",
    )
    s.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="stream scheduler/KV gauges (batch size, queue depth, free "
        "blocks, KV utilization) as JSONL, sampled on a sim-time interval",
    )
    s.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="sim-seconds between --metrics-out samples (default 1.0)",
    )
    s.set_defaults(func=cmd_serve)

    a = sub.add_parser(
        "analyze",
        help="summarize a serving trace recorded by serve --trace-events",
    )
    a.add_argument(
        "trace", help="trace file: .trace.json (Chrome) or .jsonl (raw stream)"
    )
    a.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="metrics JSONL from --metrics-out (adds the KV-pressure timeline)",
    )
    a.set_defaults(func=cmd_analyze)

    lint = sub.add_parser(
        "lint", help="AST-based determinism & invariant linter"
    )
    add_lint_parser(lint)
    lint.set_defaults(func=run_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    np.seterr(all="ignore")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
