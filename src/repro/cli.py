"""Command-line interface mirroring the MiLo artifact's workflow scripts.

Three subcommands correspond to the stages of the paper's artifact appendix:

* ``milo quantize``   — quantize a mini model with RTN / HQQ / GPTQ / MiLo and
  report memory and quantization time (the role of ``MiLo_quant_main.py``).
* ``milo evaluate``   — quantize and then evaluate perplexity plus the task
  suite, printing a Table-3-style row per method.
* ``milo kernel``     — run the kernel performance model for the Appendix C
  GEMM shapes (the role of ``kernel_GeMM_performance.sh``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .core import ModelCompressor, UniformRank, build_strategy
from .core.rank_policy import DenseRank, KurtosisRank, SparseRank
from .data import zipfian_corpus
from .eval import EvaluationEnvironment, EvaluationHarness, format_rows
from .kernels import UnsupportedBatchError, default_backends
from .models import REFERENCE_FFN_SHAPES, available_models, build_model

__all__ = ["main", "build_parser"]


def _make_policy(args: argparse.Namespace, config) -> object | None:
    if args.strategy:
        return build_strategy(args.strategy, config)
    policies = []
    if args.dense_rank:
        policies.append(DenseRank(args.dense_rank))
    if args.sparse_rank:
        policies.append(SparseRank(args.sparse_rank))
    if args.kurtosis_rank:
        policies.append(KurtosisRank(args.kurtosis_rank))
    if args.uniform_rank:
        policies.append(UniformRank(args.uniform_rank))
    if not policies:
        return None
    if len(policies) == 1:
        return policies[0]
    from .core.rank_policy import CompositeRankPolicy

    return CompositeRankPolicy(policies)


def _compress(args: argparse.Namespace):
    model = build_model(args.model)
    policy = _make_policy(args, model.config)
    calibration = None
    if args.method == "gptq":
        calibration = zipfian_corpus(
            model.config.vocab_size, num_sequences=32, seq_len=32, seed=args.seed
        ).tokens
    compressor = ModelCompressor(
        method=args.method,
        bits=args.bits,
        group_size=args.group_size,
        rank_policy=policy,
        calibration_tokens=calibration,
        compensator_bits=args.compensator_bits,
    )
    return compressor.compress(model)


def cmd_quantize(args: argparse.Namespace) -> int:
    model, report = _compress(args)
    summary = {
        "model": args.model,
        "method": report.method,
        "bits": report.bits,
        "group_size": report.group_size,
        "memory_mb": round(report.memory_bytes / 2**20, 3),
        "fp16_memory_mb": round(report.fp16_memory_bytes / 2**20, 3),
        "compression_ratio": round(report.compression_ratio, 4),
        "quant_time_s": round(report.quant_time_s, 3),
        "average_rank": round(report.average_rank, 2),
    }
    print(json.dumps(summary, indent=2))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    teacher = build_model(args.model)
    environment = EvaluationEnvironment.from_teacher(
        teacher,
        num_sequences=args.eval_sequences,
        seq_len=args.eval_seq_len,
        num_task_items=args.task_items,
        seed=args.seed,
    )
    harness = EvaluationHarness(environment)
    rows = [harness.evaluate(teacher, "fp16").as_row()]
    model, report = _compress(args)
    row = harness.evaluate(model, f"{args.method}-int{args.bits}").as_row()
    row["quant_time_s"] = round(report.quant_time_s, 3)
    rows.append(row)
    print(format_rows(rows, title=f"Evaluation on {args.model}"))
    return 0


def cmd_kernel(args: argparse.Namespace) -> int:
    if args.gemm_model not in REFERENCE_FFN_SHAPES:
        print(f"unknown GEMM model {args.gemm_model!r}; known: {sorted(REFERENCE_FFN_SHAPES)}")
        return 2
    shapes = REFERENCE_FFN_SHAPES[args.gemm_model]
    rows = []
    for batch in args.batch_sizes:
        for name, sim in default_backends(asymmetric_model=args.asymmetric).items():
            try:
                tflops = sim.mlp_tflops(shapes, batch)
                latency = sim.mlp_latency(shapes, batch)
            except UnsupportedBatchError:
                tflops, latency = float("nan"), float("nan")
            rows.append(
                {
                    "batch": batch,
                    "backend": name,
                    "tflops": round(tflops, 2),
                    "latency_us": round(latency * 1e6, 2),
                }
            )
    print(format_rows(rows, title=f"GEMM throughput model for {args.gemm_model} MLP"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="milo", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="mixtral-mini", choices=available_models())
        p.add_argument("--method", default="milo", choices=["rtn", "hqq", "gptq", "milo"])
        p.add_argument("--bits", type=int, default=3)
        p.add_argument("--group-size", type=int, default=64)
        p.add_argument("--compensator-bits", type=int, default=3)
        p.add_argument("--strategy", default=None, help="named paper strategy, e.g. mixtral-s1")
        p.add_argument("--dense-rank", type=int, default=0)
        p.add_argument("--sparse-rank", type=int, default=0)
        p.add_argument("--kurtosis-rank", type=int, default=0)
        p.add_argument("--uniform-rank", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    q = sub.add_parser("quantize", help="quantize a mini model and report memory / time")
    add_common(q)
    q.set_defaults(func=cmd_quantize)

    e = sub.add_parser("evaluate", help="quantize and evaluate perplexity + tasks")
    add_common(e)
    e.add_argument("--eval-sequences", type=int, default=16)
    e.add_argument("--eval-seq-len", type=int, default=32)
    e.add_argument("--task-items", type=int, default=96)
    e.set_defaults(func=cmd_evaluate)

    k = sub.add_parser("kernel", help="kernel GEMM performance model")
    k.add_argument("--gemm-model", default="mixtral-8x7b")
    k.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 16, 32])
    k.add_argument("--asymmetric", action="store_true")
    k.set_defaults(func=cmd_kernel)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    np.seterr(all="ignore")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
