"""Shared fixtures for the test suite.

Model construction is deterministic (seeded), so session-scoped fixtures are
safe as long as tests do not mutate the shared instances; tests that compress
or otherwise modify a model build their own instance via ``build_model``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model


@pytest.fixture(scope="session")
def tiny_moe():
    """Small Mixtral-style model shared by read-only tests."""
    return build_model("tiny-moe")


@pytest.fixture(scope="session")
def tiny_finegrained():
    """Small DeepSeek-style model (fine-grained experts + shared experts)."""
    return build_model("tiny-finegrained")


@pytest.fixture(scope="session")
def mixtral_mini():
    """Mixtral-style mini model used by heavier integration tests."""
    return build_model("mixtral-mini")


@pytest.fixture(scope="session")
def deepseek_mini():
    """DeepSeek-style mini model used by heavier integration tests."""
    return build_model("deepseek-moe-mini")


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
