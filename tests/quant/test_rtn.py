"""Tests for the RTN baseline quantizer."""

import numpy as np
import pytest

from repro.quant import RTNQuantizer


@pytest.fixture()
def weight():
    return np.random.default_rng(0).normal(0, 0.05, size=(32, 128))


class TestRTN:
    def test_reconstruction_shape_and_closeness(self, weight):
        qm = RTNQuantizer(bits=4, group_size=32).quantize(weight)
        dq = qm.dequantize()
        assert dq.shape == weight.shape
        assert np.linalg.norm(weight - dq) / np.linalg.norm(weight) < 0.1

    def test_codes_within_range(self, weight):
        qm = RTNQuantizer(bits=3, group_size=64).quantize(weight)
        assert qm.codes.min() >= 0
        assert qm.codes.max() <= 7

    def test_int4_better_than_int3(self, weight):
        e3 = np.linalg.norm(weight - RTNQuantizer(3, 64).quantize(weight).dequantize())
        e4 = np.linalg.norm(weight - RTNQuantizer(4, 64).quantize(weight).dequantize())
        assert e4 < e3

    def test_smaller_groups_never_hurt(self, weight):
        e_small = np.linalg.norm(weight - RTNQuantizer(3, 16).quantize(weight).dequantize())
        e_large = np.linalg.norm(weight - RTNQuantizer(3, 128).quantize(weight).dequantize())
        assert e_small <= e_large + 1e-9

    def test_target_override_fits_grid_to_target(self, weight):
        target = weight * 0.5
        qm = RTNQuantizer(3, 64).quantize(weight, target=target)
        dq = qm.dequantize()
        # The reconstruction approximates the target, not the original weight.
        assert np.linalg.norm(target - dq) < np.linalg.norm(weight - dq)

    def test_storage_bytes(self, weight):
        qm = RTNQuantizer(3, 64).quantize(weight)
        expected_codes = weight.size * 3 / 8
        expected_meta = (weight.size / 64) * 2 * 2
        assert qm.storage_bytes() == pytest.approx(expected_codes + expected_meta)

    def test_non_multiple_group_size_handled(self):
        weight = np.random.default_rng(1).normal(size=(8, 70))
        qm = RTNQuantizer(3, 64).quantize(weight)
        assert qm.dequantize().shape == (8, 70)

    def test_invalid_group_size_raises(self):
        with pytest.raises(ValueError):
            RTNQuantizer(3, 0)
