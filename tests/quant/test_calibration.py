"""Tests for calibration-activation capture."""

import numpy as np
import pytest

from repro.quant.calibration import ActivationCatcher, capture_layer_inputs


class TestActivationCatcher:
    def test_records_flattened_rows(self):
        catcher = ActivationCatcher()
        catcher.record("layer", np.ones((2, 3, 4)))
        assert catcher.inputs_for("layer").shape == (6, 4)

    def test_respects_row_budget(self):
        catcher = ActivationCatcher(max_rows_per_layer=5)
        catcher.record("layer", np.ones((4, 4)))
        catcher.record("layer", np.ones((4, 4)))
        assert catcher.inputs_for("layer").shape[0] == 5

    def test_unknown_layer_returns_none(self):
        assert ActivationCatcher().inputs_for("missing") is None

    def test_total_rows(self):
        catcher = ActivationCatcher()
        catcher.record("a", np.ones((3, 2)))
        catcher.record("b", np.ones((2, 2)))
        assert catcher.total_rows() == 5


class TestCaptureContext:
    def test_captures_inputs_of_activated_layers(self, tiny_moe):
        tokens = np.random.default_rng(0).integers(0, 64, size=(2, 8))
        with capture_layer_inputs(tiny_moe) as catcher:
            tiny_moe.forward(tokens)
        captured = catcher.captured_layers()
        assert any("attn.q_proj" in name for name in captured)
        q_inputs = catcher.inputs_for("layer_0.attn.q_proj")
        assert q_inputs is not None and q_inputs.shape == (16, tiny_moe.config.hidden_size)

    def test_restores_forward_after_exit(self, tiny_moe):
        tokens = np.random.default_rng(1).integers(0, 64, size=(1, 6))
        before = tiny_moe.forward(tokens)
        with capture_layer_inputs(tiny_moe):
            tiny_moe.forward(tokens)
        after = tiny_moe.forward(tokens)
        assert np.array_equal(before, after)
        # No lingering wrapper: a second pass must not grow any buffers.
        with capture_layer_inputs(tiny_moe, layer_names=["layer_0.attn.q_proj"]) as catcher:
            pass
        assert catcher.total_rows() == 0

    def test_layer_name_filter(self, tiny_moe):
        tokens = np.random.default_rng(2).integers(0, 64, size=(1, 4))
        with capture_layer_inputs(tiny_moe, layer_names=["layer_0.attn.q_proj"]) as catcher:
            tiny_moe.forward(tokens)
        assert catcher.captured_layers() == ["layer_0.attn.q_proj"]

    def test_rare_experts_may_capture_nothing(self, tiny_moe):
        """Sparsely routed experts can see zero calibration tokens (calibration bias)."""
        tokens = np.random.default_rng(3).integers(0, 64, size=(1, 2))
        expert_layers = [
            name for name, _, _ in
            ((n, k, m) for n, k, m in tiny_moe.iter_quantizable() if k == "expert")
        ]
        with capture_layer_inputs(tiny_moe) as catcher:
            tiny_moe.forward(tokens)
        captured = set(catcher.captured_layers())
        expert_modules = {n.rsplit(".weight", 1)[0] for n in expert_layers}
        # With only 2 routed tokens and 4 experts x 2 layers, some expert must be idle.
        assert expert_modules - captured
