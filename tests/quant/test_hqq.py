"""Tests for the half-quadratic (HQQ) quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.init import heavy_tailed_weight
from repro.quant import HQQConfig, HQQQuantizer, RTNQuantizer, shrink_lp


class TestShrinkLp:
    def test_zero_input_maps_to_zero(self):
        assert np.all(shrink_lp(np.zeros(5), beta=10.0, p=0.7) == 0)

    def test_small_values_are_shrunk_to_zero(self):
        out = shrink_lp(np.array([1e-4, -1e-4]), beta=10.0, p=0.7)
        assert np.all(out == 0)

    def test_large_values_keep_sign_and_shrink(self):
        x = np.array([5.0, -5.0])
        out = shrink_lp(x, beta=10.0, p=0.7)
        assert np.all(np.sign(out) == np.sign(x))
        assert np.all(np.abs(out) < np.abs(x))

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            shrink_lp(np.ones(3), beta=1.0, p=1.5)
        with pytest.raises(ValueError):
            shrink_lp(np.ones(3), beta=-1.0, p=0.5)

    @given(st.floats(0.1, 0.9), st.floats(0.5, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_magnitude_never_increases(self, p, beta):
        x = np.linspace(-3, 3, 31)
        out = shrink_lp(x, beta=beta, p=p)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-12)


class TestHQQ:
    @pytest.fixture()
    def heavy_weight(self):
        return heavy_tailed_weight((64, 128), rng=np.random.default_rng(0))

    def test_reduces_error_relative_to_rtn(self, heavy_weight):
        rtn = RTNQuantizer(3, 64).quantize(heavy_weight).dequantize()
        hqq = HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(heavy_weight).dequantize()
        assert np.linalg.norm(heavy_weight - hqq) < np.linalg.norm(heavy_weight - rtn)

    def test_codes_in_range(self, heavy_weight):
        qm = HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(heavy_weight)
        assert qm.codes.min() >= 0 and qm.codes.max() <= 7

    def test_stats_record_iterations(self, heavy_weight):
        qm = HQQQuantizer(HQQConfig(bits=3, group_size=64, iters=5)).quantize(heavy_weight)
        assert 1 <= qm.stats["hqq_iters"] <= 5

    def test_target_shifting_changes_reconstruction(self, heavy_weight):
        quantizer = HQQQuantizer(HQQConfig(bits=3, group_size=64))
        plain = quantizer.quantize(heavy_weight).dequantize()
        shifted = quantizer.quantize(heavy_weight, target=heavy_weight * 0.3).dequantize()
        assert not np.allclose(plain, shifted)

    def test_int4_better_than_int3(self, heavy_weight):
        e3 = np.linalg.norm(
            heavy_weight - HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(heavy_weight).dequantize()
        )
        e4 = np.linalg.norm(
            heavy_weight - HQQQuantizer(HQQConfig(bits=4, group_size=64)).quantize(heavy_weight).dequantize()
        )
        assert e4 < e3

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError):
            HQQQuantizer(HQQConfig(), bits=4)

    def test_keyword_overrides(self):
        q = HQQQuantizer(bits=4, group_size=32)
        assert q.bits == 4 and q.group_size == 32

    def test_calibration_free_flag(self):
        assert HQQQuantizer().calibration_free is True
