"""Tests for group-wise quantization grids (incl. property-based round trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.grid import (
    dequantize_with_grid,
    fit_minmax_grid,
    from_groups,
    quantization_error,
    quantize_with_grid,
    to_groups,
)

weight_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 40)),
    elements=st.floats(-2, 2, allow_nan=False, allow_infinity=False),
)


class TestGrouping:
    def test_roundtrip_exact_multiple(self):
        w = np.arange(24, dtype=float).reshape(4, 6)
        grouped = to_groups(w, 3)
        assert grouped.groups.shape == (8, 3)
        assert np.array_equal(from_groups(grouped), w)

    def test_roundtrip_with_padding(self):
        w = np.arange(20, dtype=float).reshape(4, 5)
        grouped = to_groups(w, 3)
        assert grouped.pad == 1
        assert np.array_equal(from_groups(grouped), w)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            to_groups(np.zeros(10), 4)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            to_groups(np.zeros((2, 4)), 0)

    @given(weight_matrices, st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, w, group_size):
        grouped = to_groups(w, group_size)
        assert np.allclose(from_groups(grouped), w)


class TestMinMaxGrid:
    def test_asymmetric_covers_extremes(self):
        groups = np.array([[-1.0, 0.0, 3.0, 2.0]])
        grid = fit_minmax_grid(groups, bits=3)
        codes = quantize_with_grid(groups, grid)
        dq = dequantize_with_grid(codes, grid)
        assert dq.min() == pytest.approx(-1.0, abs=1e-9)
        assert dq.max() == pytest.approx(3.0, abs=1e-9)

    def test_symmetric_grid_is_centred(self):
        groups = np.array([[-2.0, 2.0, 1.0, -1.0]])
        grid = fit_minmax_grid(groups, bits=3, symmetric=True)
        assert grid.symmetric
        codes = quantize_with_grid(groups, grid)
        dq = dequantize_with_grid(codes, grid)
        # The mid-code-centred grid can overshoot the group maximum by at most
        # half a quantization step on the negative side.
        assert np.all(np.abs(dq) <= 2.0 + grid.scale / 2 + 1e-9)
        assert np.all(np.abs(dq - groups) <= grid.scale / 2 + 1e-9)

    def test_constant_group_has_zero_error(self):
        groups = np.full((3, 8), 0.7)
        grid = fit_minmax_grid(groups, bits=3)
        dq = dequantize_with_grid(quantize_with_grid(groups, grid), grid)
        assert np.allclose(dq, 0.7)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            fit_minmax_grid(np.zeros((1, 4)), bits=1)
        with pytest.raises(ValueError):
            fit_minmax_grid(np.zeros((1, 4)), bits=9)

    def test_metadata_bytes(self):
        grid = fit_minmax_grid(np.zeros((10, 4)), bits=3)
        assert grid.metadata_bytes() == 10 * 2 * 2  # scale + zero in fp16
        grid_sym = fit_minmax_grid(np.zeros((10, 4)), bits=3, symmetric=True)
        assert grid_sym.metadata_bytes() == 10 * 2

    @given(weight_matrices, st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_bounded_by_step(self, w, bits):
        grouped = to_groups(w, 8)
        grid = fit_minmax_grid(grouped.groups, bits=bits)
        codes = quantize_with_grid(grouped.groups, grid)
        dq = dequantize_with_grid(codes, grid)
        # Round-to-nearest error is at most half a quantization step per element.
        assert np.all(np.abs(dq - grouped.groups) <= grid.scale / 2 + 1e-9)

    def test_more_bits_never_hurt(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(16, 64))
        errors = []
        for bits in (2, 3, 4, 8):
            grouped = to_groups(w, 16)
            grid = fit_minmax_grid(grouped.groups, bits=bits)
            dq = dequantize_with_grid(quantize_with_grid(grouped.groups, grid), grid)
            errors.append(np.linalg.norm(dq - grouped.groups))
        assert errors == sorted(errors, reverse=True)


class TestQuantizationError:
    def test_relative_error(self):
        w = np.ones((2, 2))
        assert quantization_error(w, np.zeros((2, 2))) == pytest.approx(1.0)

    def test_absolute_error(self):
        w = np.ones((2, 2))
        assert quantization_error(w, np.zeros((2, 2)), relative=False) == pytest.approx(2.0)

    def test_zero_weight_defined(self):
        assert quantization_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
