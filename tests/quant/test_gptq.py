"""Tests for the GPTQ baseline quantizer."""

import numpy as np
import pytest

from repro.quant import GPTQQuantizer, RTNQuantizer


@pytest.fixture()
def weight():
    return np.random.default_rng(0).normal(0, 0.05, size=(24, 96))


@pytest.fixture()
def calibration(weight):
    rng = np.random.default_rng(1)
    # Correlated inputs: some channels are much more active than others.
    scales = np.exp(rng.normal(0, 1, size=weight.shape[1]))
    return rng.normal(0, 1, size=(256, weight.shape[1])) * scales


class TestHessian:
    def test_identity_without_calibration(self, weight):
        H = GPTQQuantizer(3, 32).build_hessian(None, weight.shape[1])
        assert np.array_equal(H, np.eye(weight.shape[1]))

    def test_damped_and_symmetric(self, weight, calibration):
        H = GPTQQuantizer(3, 32).build_hessian(calibration, weight.shape[1])
        assert np.allclose(H, H.T)
        assert np.all(np.linalg.eigvalsh(H) > 0)

    def test_wrong_width_rejected(self, weight):
        with pytest.raises(ValueError):
            GPTQQuantizer(3, 32).build_hessian(np.zeros((10, 5)), weight.shape[1])


class TestGPTQ:
    def test_reconstruction_shape(self, weight, calibration):
        qm = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calibration)
        assert qm.dequantize().shape == weight.shape

    def test_codes_in_range(self, weight, calibration):
        qm = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calibration)
        assert qm.codes.min() >= 0 and qm.codes.max() <= 7

    def test_reduces_layer_output_error_vs_rtn(self, weight, calibration):
        """GPTQ minimizes error in the layer *output* under the calibration distribution."""
        rtn_dq = RTNQuantizer(3, 32).quantize(weight).dequantize()
        gptq_dq = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calibration).dequantize()
        rtn_out_err = np.linalg.norm(calibration @ (weight - rtn_dq).T)
        gptq_out_err = np.linalg.norm(calibration @ (weight - gptq_dq).T)
        assert gptq_out_err < rtn_out_err

    def test_without_calibration_close_to_rtn(self, weight):
        gptq_dq = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=None).dequantize()
        rtn_dq = RTNQuantizer(3, 32).quantize(weight).dequantize()
        # With an identity Hessian the column updates vanish and GPTQ falls
        # back to straight rounding of (possibly re-fit) groups.
        assert np.linalg.norm(gptq_dq - rtn_dq) / np.linalg.norm(rtn_dq) < 0.2

    def test_int4_better_than_int3(self, weight, calibration):
        q3 = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calibration).dequantize()
        q4 = GPTQQuantizer(4, 32).quantize(weight, calibration_inputs=calibration).dequantize()
        err3 = np.linalg.norm(calibration @ (weight - q3).T)
        err4 = np.linalg.norm(calibration @ (weight - q4).T)
        assert err4 < err3

    def test_records_calibration_rows(self, weight, calibration):
        qm = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calibration)
        assert qm.stats["calibration_rows"] == calibration.shape[0]

    def test_non_multiple_columns_handled(self):
        weight = np.random.default_rng(2).normal(size=(8, 40))
        calib = np.random.default_rng(3).normal(size=(64, 40))
        qm = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calib)
        assert qm.dequantize().shape == (8, 40)

    def test_calibration_free_flag(self):
        assert GPTQQuantizer().calibration_free is False
