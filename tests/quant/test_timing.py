"""Tests for quantization-time accounting and full-scale projection."""

import time

import pytest

from repro.quant import PER_BILLION_SECONDS, QuantTimer, project_full_model_time


class TestProjection:
    def test_ordering_matches_paper(self):
        """RTN < HQQ < MiLo < GPTQ in projected quantization time (Table 1 / Fig. 8)."""
        times = {m: project_full_model_time(m, 46.7) for m in ("rtn", "hqq", "milo", "gptq")}
        assert times["rtn"] < times["hqq"] < times["milo"] < times["gptq"]

    def test_milo_at_least_3x_faster_than_gptq(self):
        assert project_full_model_time("gptq", 46.7) / project_full_model_time("milo", 46.7) >= 3.0

    def test_rtn_projection_near_paper_value(self):
        # Paper Table 1: RTN takes 321 s for Mixtral-8x7B (46.7B params).
        assert project_full_model_time("rtn", 46.7) == pytest.approx(321, rel=0.2)

    def test_gptq_projection_near_paper_value(self):
        # Paper Table 1: GPTQ takes 5315 s for Mixtral-8x7B.
        assert project_full_model_time("gptq", 46.7) == pytest.approx(5315, rel=0.4)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            project_full_model_time("awq", 10)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            project_full_model_time("rtn", 0)

    def test_all_methods_have_rates(self):
        assert set(PER_BILLION_SECONDS) == {"rtn", "hqq", "milo", "gptq"}


class TestQuantTimer:
    def test_stage_accumulation(self):
        timer = QuantTimer()
        with timer.stage("a"):
            time.sleep(0.01)
        with timer.stage("a"):
            time.sleep(0.01)
        with timer.stage("b"):
            pass
        assert timer.stages["a"] >= 0.02
        assert timer.total == pytest.approx(sum(timer.stages.values()))
        assert timer.as_dict()["total"] == timer.total
