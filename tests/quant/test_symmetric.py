"""Tests for symmetric compensator quantization (paper Eq. 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import dequantize_symmetric, quantize_symmetric

tensors = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False),
)


class TestSymmetricQuantization:
    def test_roundtrip_shape_preserved(self):
        x = np.random.default_rng(0).normal(size=(7, 13))
        q = quantize_symmetric(x, bits=3, group_size=16)
        assert q.dequantize().shape == x.shape

    def test_codes_in_range(self):
        x = np.random.default_rng(1).normal(size=(8, 8))
        q = quantize_symmetric(x, bits=3, group_size=8)
        assert q.codes.min() >= 0 and q.codes.max() <= 7

    def test_zero_tensor_roundtrip_exact(self):
        x = np.zeros((4, 4))
        assert np.allclose(dequantize_symmetric(quantize_symmetric(x, 3, 8)), 0.0)

    def test_int8_more_accurate_than_int3(self):
        x = np.random.default_rng(2).normal(size=(32, 32))
        e3 = np.linalg.norm(x - quantize_symmetric(x, 3, 64).dequantize())
        e8 = np.linalg.norm(x - quantize_symmetric(x, 8, 64).dequantize())
        assert e8 < e3

    def test_int3_memory_is_three_eighths_of_int8(self):
        x = np.random.default_rng(3).normal(size=(64, 64))
        m3 = quantize_symmetric(x, 3, 64).storage_bytes()
        m8 = quantize_symmetric(x, 8, 64).storage_bytes()
        code_ratio = (64 * 64 * 3 / 8) / (64 * 64 * 8 / 8)
        # Metadata is identical, so the total ratio approaches 3/8 from above.
        assert code_ratio < m3 / m8 < 0.45

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones((2, 2)), bits=1)

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones((2, 2)), group_size=0)

    @given(tensors, st.sampled_from([3, 4, 8]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_bounded(self, x, bits):
        q = quantize_symmetric(x, bits=bits, group_size=8)
        dq = q.dequantize()
        # Error is bounded by one quantization step of the group's range.
        groups = np.abs(x).max() if x.size else 0.0
        step = 2 * groups / (2**bits - 1) if groups else 0.0
        assert np.all(np.abs(dq - x) <= step + 1e-9)

    @given(tensors)
    @settings(max_examples=30, deadline=None)
    def test_dequantized_magnitude_bounded_by_group_max_plus_half_step(self, x):
        q = quantize_symmetric(x, bits=3, group_size=8)
        dq = q.dequantize()
        # The Eq. 15 grid is centred on the mid-code, so the negative side can
        # overshoot the group maximum by up to half a quantization step (1/7
        # of the range for INT3).
        bound = np.abs(x).max() * (1 + 1.0 / (2**3 - 1)) + 1e-12
        assert np.all(np.abs(dq) <= bound + 1e-9)
