"""Tests for the named paper strategies (Table 5) and rank scaling."""

import pytest

from repro.core.rank_policy import CompositeRankPolicy, DenseRank, FrequencyRank, KurtosisRank
from repro.core.strategies import (
    PAPER_STRATEGIES,
    available_strategies,
    build_strategy,
    scale_rank,
)
from repro.models import get_config


class TestPaperStrategyTable:
    def test_table5_definitions(self):
        """The strategy definitions must match the paper's Table 5 exactly."""
        assert PAPER_STRATEGIES["mixtral-s1"].dense_rank == 512
        assert PAPER_STRATEGIES["mixtral-s1"].kurtosis_rank == 16
        assert PAPER_STRATEGIES["mixtral-s2"].dense_rank == 1024
        assert PAPER_STRATEGIES["mixtral-s2"].kurtosis_rank == 32
        assert PAPER_STRATEGIES["deepseek-s1"].dense_rank == 800
        assert PAPER_STRATEGIES["deepseek-s1"].kurtosis_rank == 0
        assert PAPER_STRATEGIES["deepseek-s2"].dense_rank == 1024
        assert PAPER_STRATEGIES["deepseek-s2"].frequency_rank == 32

    def test_describe(self):
        assert PAPER_STRATEGIES["mixtral-s1"].describe() == "Dense-512 + Kurtosis-16"
        assert PAPER_STRATEGIES["deepseek-s1"].describe() == "Dense-800"

    def test_available(self):
        assert set(available_strategies()) == {
            "mixtral-s1", "mixtral-s2", "deepseek-s1", "deepseek-s2",
        }


class TestScaling:
    def test_scale_preserves_hidden_fraction(self):
        cfg = get_config("mixtral-mini")  # hidden 64 vs reference 4096
        assert scale_rank(512, cfg, "mixtral") == 8
        assert scale_rank(1024, cfg, "mixtral") == 16

    def test_small_ranks_never_drop_to_zero(self):
        cfg = get_config("mixtral-mini")
        assert scale_rank(16, cfg, "mixtral") == 1

    def test_zero_rank_stays_zero(self):
        cfg = get_config("mixtral-mini")
        assert scale_rank(0, cfg, "mixtral") == 0

    def test_s2_scales_larger_than_s1(self):
        cfg = get_config("deepseek-moe-mini")
        assert scale_rank(1024, cfg, "deepseek") > scale_rank(800, cfg, "deepseek")


class TestBuildStrategy:
    def test_mixtral_s1_components(self):
        cfg = get_config("mixtral-mini")
        policy = build_strategy("mixtral-s1", cfg)
        assert isinstance(policy, CompositeRankPolicy)
        kinds = [type(p) for p in policy.policies]
        assert DenseRank in kinds and KurtosisRank in kinds

    def test_deepseek_s2_uses_frequency(self):
        cfg = get_config("deepseek-moe-mini")
        policy = build_strategy("deepseek-s2", cfg)
        assert any(isinstance(p, FrequencyRank) for p in policy.policies)

    def test_deepseek_s1_is_dense_only(self):
        cfg = get_config("deepseek-moe-mini")
        policy = build_strategy("deepseek-s1", cfg)
        assert len(policy.policies) == 1
        assert isinstance(policy.policies[0], DenseRank)

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            build_strategy("mixtral-s9", get_config("mixtral-mini"))
