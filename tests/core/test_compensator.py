"""Tests for low-rank compensators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compensator import (
    LowRankCompensator,
    compensator_memory_bytes,
    truncated_svd_factors,
)


class TestTruncatedSVD:
    def test_exact_recovery_of_low_rank_matrix(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(20, 3)) @ rng.normal(size=(3, 15))
        U, V = truncated_svd_factors(A, 3)
        assert np.allclose(U @ V, A, atol=1e-8)

    def test_factor_shapes(self):
        U, V = truncated_svd_factors(np.random.default_rng(1).normal(size=(10, 6)), 2)
        assert U.shape == (10, 2)
        assert V.shape == (2, 6)

    def test_rank_zero_returns_empty_factors(self):
        U, V = truncated_svd_factors(np.ones((4, 5)), 0)
        assert U.shape == (4, 0) and V.shape == (0, 5)

    def test_rank_clipped_to_max(self):
        U, V = truncated_svd_factors(np.ones((4, 5)), 100)
        assert U.shape[1] == 4

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            truncated_svd_factors(np.ones(5), 1)

    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_higher_rank_never_worse(self, rank):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(16, 12))
        err_r = np.linalg.norm(A - np.prod(truncated_svd_factors(A, rank)[0].shape) * 0)
        U1, V1 = truncated_svd_factors(A, rank)
        U2, V2 = truncated_svd_factors(A, rank + 1)
        assert np.linalg.norm(A - U2 @ V2) <= np.linalg.norm(A - U1 @ V1) + 1e-9

    def test_eckart_young_optimality_vs_random_factors(self):
        rng = np.random.default_rng(4)
        A = rng.normal(size=(20, 20))
        U, V = truncated_svd_factors(A, 4)
        svd_err = np.linalg.norm(A - U @ V)
        for _ in range(5):
            Ur = rng.normal(size=(20, 4))
            Vr = rng.normal(size=(4, 20))
            assert svd_err <= np.linalg.norm(A - Ur @ Vr) + 1e-9

    def test_sparse_path_matches_dense_path(self):
        rng = np.random.default_rng(5)
        A = rng.normal(size=(300, 280))
        U_s, V_s = truncated_svd_factors(A, 4)      # triggers ARPACK path
        U_d, V_d = np.linalg.svd(A, full_matrices=False)[0][:, :4], None
        # Compare the reconstruction errors, not the factors (sign ambiguity).
        s = np.linalg.svd(A, compute_uv=False)
        expected = np.sqrt(np.sum(s[4:] ** 2))
        assert np.linalg.norm(A - U_s @ V_s) == pytest.approx(expected, rel=1e-6)


class TestCompensatorMemory:
    def test_zero_rank_is_free(self):
        assert compensator_memory_bytes((100, 100), 0) == 0.0

    def test_memory_linear_in_rank(self):
        one = compensator_memory_bytes((128, 256), 1, bits=3, group_size=64)
        four = compensator_memory_bytes((128, 256), 4, bits=3, group_size=64)
        assert four == pytest.approx(4 * one, rel=0.05)

    def test_int3_cheaper_than_int8(self):
        m3 = compensator_memory_bytes((256, 256), 16, bits=3)
        m8 = compensator_memory_bytes((256, 256), 16, bits=8)
        assert 0.3 < m3 / m8 < 0.45


class TestLowRankCompensator:
    @pytest.fixture()
    def residual(self):
        rng = np.random.default_rng(6)
        return rng.normal(size=(24, 3)) @ rng.normal(size=(3, 18)) + 0.01 * rng.normal(size=(24, 18))

    def test_from_residual_correction_close(self, residual):
        comp = LowRankCompensator.from_residual(residual, rank=3)
        rel = np.linalg.norm(residual - comp.correction()) / np.linalg.norm(residual)
        assert rel < 0.1

    def test_quantized_correction_close_to_float(self, residual):
        comp = LowRankCompensator.from_residual(residual, rank=3)
        float_corr = comp.correction()
        comp.quantize(bits=3, group_size=16)
        quant_corr = comp.correction()
        assert np.linalg.norm(float_corr - quant_corr) / np.linalg.norm(float_corr) < 0.35

    def test_int8_quantization_closer_than_int3(self, residual):
        float_corr = LowRankCompensator.from_residual(residual, rank=3).correction()
        c3 = LowRankCompensator.from_residual(residual, rank=3).quantize(3, 16).correction()
        c8 = LowRankCompensator.from_residual(residual, rank=3).quantize(8, 16).correction()
        assert np.linalg.norm(c8 - float_corr) < np.linalg.norm(c3 - float_corr)

    def test_memory_of_unquantized_is_fp16(self, residual):
        comp = LowRankCompensator.from_residual(residual, rank=2)
        assert comp.memory_bytes() == (comp.U.size + comp.V.size) * 2

    def test_zero_rank_memory_and_correction(self):
        comp = LowRankCompensator(U=np.zeros((5, 0)), V=np.zeros((0, 7)))
        assert comp.memory_bytes() == 0.0
        assert np.allclose(comp.correction(), 0.0)
        assert comp.rank == 0

    def test_deployment_factors_are_quantized_when_available(self, residual):
        comp = LowRankCompensator.from_residual(residual, rank=2).quantize(3, 16)
        U_dep, V_dep = comp.deployment_factors()
        assert not np.allclose(U_dep, comp.U)
        assert np.allclose(U_dep @ V_dep, comp.correction())
