"""Tests for the adaptive rank-selection policies."""

import numpy as np
import pytest

from repro.core.rank_policy import (
    CompositeRankPolicy,
    DenseRank,
    FrequencyRank,
    KurtosisRank,
    SparseRank,
    UniformRank,
    WeightEntry,
    total_compensator_memory,
    uniform_rank_for_budget,
)
from repro.models.init import heavy_tailed_weight, light_tailed_weight
from repro.models.transformer import LayerKind


def make_entries():
    """A small synthetic inventory: 2 attention, 1 shared expert, 4 experts."""
    rng = np.random.default_rng(0)
    entries = []
    for i in range(2):
        entries.append(
            WeightEntry(
                name=f"layer_{i}.attn.q_proj.weight",
                kind=LayerKind.ATTENTION,
                shape=(32, 32),
                weight=heavy_tailed_weight((32, 32), rng=rng),
                layer_index=i,
            )
        )
    entries.append(
        WeightEntry(
            name="layer_0.ffn.shared_expert_0.w1.weight",
            kind=LayerKind.SHARED_EXPERT,
            shape=(24, 32),
            weight=heavy_tailed_weight((24, 32), outlier_fraction=0.004, rng=rng),
            layer_index=0,
        )
    )
    freqs = [0.5, 0.3, 0.15, 0.05]
    for e in range(4):
        entries.append(
            WeightEntry(
                name=f"layer_0.ffn.expert_{e}.w1.weight",
                kind=LayerKind.EXPERT,
                shape=(24, 32),
                weight=light_tailed_weight((24, 32), rng=rng),
                layer_index=0,
                expert_index=e,
                expert_frequency=freqs[e],
            )
        )
    return entries


class TestUniformDenseSparse:
    def test_uniform_assigns_same_rank_everywhere(self):
        entries = make_entries()
        ranks = UniformRank(4).assign(entries)
        assert set(ranks.values()) == {4}

    def test_dense_assigns_only_to_dense_layers(self):
        entries = make_entries()
        ranks = DenseRank(8).assign(entries)
        for entry in entries:
            expected = 8 if entry.kind in LayerKind.DENSE_KINDS else 0
            assert ranks[entry.name] == expected

    def test_sparse_assigns_only_to_experts(self):
        entries = make_entries()
        ranks = SparseRank(6).assign(entries)
        for entry in entries:
            expected = 6 if entry.kind == LayerKind.EXPERT else 0
            assert ranks[entry.name] == expected

    def test_ranks_clipped_to_matrix_dimension(self):
        entries = make_entries()
        ranks = UniformRank(1000).assign(entries)
        for entry in entries:
            assert ranks[entry.name] == min(entry.shape)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            UniformRank(-1)

    def test_describe(self):
        assert DenseRank(512).describe() == "Dense-512"
        assert SparseRank(32).describe() == "Sparse-32"
        assert UniformRank(28).describe() == "Uniform-28"


class TestProportionalPolicies:
    def test_frequency_gives_more_rank_to_hot_experts(self):
        entries = make_entries()
        ranks = FrequencyRank(4).assign(entries)
        expert_ranks = [ranks[e.name] for e in entries if e.is_expert]
        freqs = [e.expert_frequency for e in entries if e.is_expert]
        assert expert_ranks[int(np.argmax(freqs))] >= max(expert_ranks)
        assert expert_ranks[int(np.argmin(freqs))] <= min(expert_ranks)

    def test_frequency_preserves_average_budget(self):
        entries = make_entries()
        ranks = FrequencyRank(4).assign(entries)
        expert_ranks = [ranks[e.name] for e in entries if e.is_expert]
        assert sum(expert_ranks) == 4 * len(expert_ranks)

    def test_frequency_ignores_dense_layers(self):
        entries = make_entries()
        ranks = FrequencyRank(4).assign(entries)
        assert all(ranks[e.name] == 0 for e in entries if not e.is_expert)

    def test_kurtosis_gives_more_rank_to_heavy_tails(self):
        entries = make_entries()
        ranks = KurtosisRank(4, scope="all").assign(entries)
        attention_rank = np.mean([ranks[e.name] for e in entries if e.kind == LayerKind.ATTENTION])
        expert_rank = np.mean([ranks[e.name] for e in entries if e.is_expert])
        assert attention_rank > expert_rank

    def test_kurtosis_scope_defaults_to_sparse(self):
        entries = make_entries()
        ranks = KurtosisRank(2).assign(entries)
        assert all(ranks[e.name] == 0 for e in entries if not e.is_expert)

    def test_zero_average_rank_assigns_nothing(self):
        entries = make_entries()
        assert set(FrequencyRank(0).assign(entries).values()) == {0}

    def test_identical_scores_fall_back_to_uniform(self):
        entries = make_entries()
        for e in entries:
            e.expert_frequency = 0.25
        ranks = FrequencyRank(3).assign(entries)
        expert_ranks = [ranks[e.name] for e in entries if e.is_expert]
        assert max(expert_ranks) - min(expert_ranks) <= 1


class TestComposite:
    def test_sums_component_policies(self):
        entries = make_entries()
        composite = CompositeRankPolicy([DenseRank(8), SparseRank(2)])
        ranks = composite.assign(entries)
        for entry in entries:
            expected = 8 if entry.is_dense else 2
            assert ranks[entry.name] == expected

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeRankPolicy([])

    def test_describe_joins_components(self):
        composite = CompositeRankPolicy([DenseRank(512), KurtosisRank(16)])
        assert composite.describe() == "Dense-512 + Kurtosis-16"


class TestMemoryHelpers:
    def test_total_memory_counts_only_assigned_ranks(self):
        entries = make_entries()
        ranks = DenseRank(4).assign(entries)
        total = total_compensator_memory(entries, ranks, bits=3, group_size=64)
        dense_entries = [e for e in entries if e.is_dense]
        assert total > 0
        sparse_only = total_compensator_memory(
            entries, {e.name: 0 for e in entries}, bits=3, group_size=64
        )
        assert sparse_only == 0

    def test_uniform_rank_for_budget_monotone(self):
        entries = make_entries()
        small = uniform_rank_for_budget(entries, 2_000, bits=3)
        large = uniform_rank_for_budget(entries, 50_000, bits=3)
        assert large >= small

    def test_uniform_rank_for_budget_respects_budget(self):
        entries = make_entries()
        budget = 2_500
        rank = uniform_rank_for_budget(entries, budget, bits=3)
        used = total_compensator_memory(entries, UniformRank(rank).assign(entries), bits=3)
        assert used <= budget
        over = total_compensator_memory(entries, UniformRank(rank + 1).assign(entries), bits=3)
        max_possible = max(e.max_rank for e in entries)
        assert over > budget or rank >= max_possible

    def test_zero_budget_gives_zero_rank(self):
        assert uniform_rank_for_budget(make_entries(), 0) == 0


class TestWeightEntry:
    def test_kurtosis_requires_weight(self):
        entry = WeightEntry(name="x", kind=LayerKind.EXPERT, shape=(4, 4), weight=None)
        with pytest.raises(ValueError):
            entry.kurtosis()

    def test_kurtosis_cached(self):
        entry = WeightEntry(
            name="x", kind=LayerKind.EXPERT, shape=(32, 32),
            weight=np.random.default_rng(0).normal(size=(32, 32)),
        )
        first = entry.kurtosis()
        entry.weight = None
        assert entry.kurtosis() == first
