"""Tests for the model-level compression driver."""

import numpy as np
import pytest

from repro.core import (
    DenseRank,
    FrequencyRank,
    ModelCompressor,
    UniformRank,
    build_weight_entries,
    profile_expert_frequencies,
    replace_linear,
)
from repro.models import CompensatedLinear, Linear, QuantizedLinear, build_model


class TestHelpers:
    def test_replace_linear_swaps_module(self):
        model = build_model("tiny-moe")
        new = Linear(
            model.config.hidden_size, model.config.hidden_size,
            weight=np.zeros((model.config.hidden_size, model.config.hidden_size)),
        )
        replace_linear(model, "layer_0.attn.q_proj", new)
        assert model.get_submodule("layer_0.attn.q_proj") is new

    def test_replace_linear_bad_path_raises(self):
        model = build_model("tiny-moe")
        with pytest.raises(KeyError):
            replace_linear(model, "layer_0.attn.missing", Linear(4, 4))

    def test_profile_expert_frequencies_normalized(self):
        model = build_model("tiny-moe")
        tokens = np.random.default_rng(0).integers(0, 64, size=(4, 16))
        freqs = profile_expert_frequencies(model, tokens)
        assert set(freqs) == {0, 1}
        for f in freqs.values():
            assert f.sum() == pytest.approx(1.0)
        # Profiling must not leave router counts behind.
        assert all(c.sum() == 0 for c in model.expert_activation_counts().values())

    def test_build_weight_entries_metadata(self):
        model = build_model("tiny-moe")
        tokens = np.random.default_rng(1).integers(0, 64, size=(4, 16))
        freqs = profile_expert_frequencies(model, tokens)
        entries = build_weight_entries(model, freqs)
        assert len(entries) == len(list(model.iter_quantizable()))
        expert_entries = [e for e in entries if e.is_expert]
        assert all(e.expert_index >= 0 for e in expert_entries)
        assert all(e.layer_index >= 0 for e in entries)
        assert any(e.expert_frequency > 0 for e in expert_entries)


class TestBaselineCompression:
    @pytest.mark.parametrize("method,expected_cls", [
        ("rtn", QuantizedLinear),
        ("hqq", QuantizedLinear),
        ("gptq", QuantizedLinear),
    ])
    def test_baselines_replace_with_quantized_linear(self, method, expected_cls):
        model = build_model("tiny-moe")
        model, report = ModelCompressor(method=method, bits=3).compress(model)
        layer = model.get_submodule("layer_0.attn.q_proj")
        assert isinstance(layer, expected_cls)
        assert not isinstance(layer, CompensatedLinear)
        assert report.method == method

    def test_memory_reduced_by_roughly_bit_ratio(self):
        model = build_model("tiny-moe")
        model, report = ModelCompressor(method="rtn", bits=3).compress(model)
        assert report.memory_bytes < report.fp16_memory_bytes
        # Quantizable weights dominate, so the ratio should be well below 0.5.
        assert report.compression_ratio < 0.45

    def test_forward_still_works_after_compression(self):
        model = build_model("tiny-moe")
        model, _ = ModelCompressor(method="rtn", bits=3).compress(model)
        logits = model.forward(np.random.default_rng(0).integers(0, 64, size=(2, 6)))
        assert logits.shape == (2, 6, 64)
        assert np.isfinite(logits).all()

    def test_int4_output_closer_to_fp16_than_int3(self):
        teacher = build_model("tiny-moe")
        tokens = np.random.default_rng(1).integers(0, 64, size=(2, 8))
        reference = teacher.forward(tokens)
        out = {}
        for bits in (3, 4):
            model = build_model("tiny-moe")
            model, _ = ModelCompressor(method="rtn", bits=bits).compress(model)
            out[bits] = np.linalg.norm(model.forward(tokens) - reference)
        assert out[4] < out[3]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ModelCompressor(method="awq")

    def test_quant_time_recorded(self):
        model = build_model("tiny-moe")
        _, report = ModelCompressor(method="hqq", bits=3).compress(model)
        assert report.quant_time_s > 0
        assert "quantization" in report.stage_times


class TestMiLoCompression:
    def test_compensated_linear_used_where_rank_positive(self):
        model = build_model("tiny-moe")
        model, report = ModelCompressor(
            method="milo", bits=3, rank_policy=DenseRank(4)
        ).compress(model)
        attn = model.get_submodule("layer_0.attn.q_proj")
        expert = model.get_submodule("layer_0.ffn.expert_0.w1")
        assert isinstance(attn, CompensatedLinear) and attn.rank == 4
        assert isinstance(expert, CompensatedLinear) and expert.rank == 0
        assert report.compensator_bytes > 0

    def test_rank_report_matches_policy(self):
        model = build_model("tiny-moe")
        model, report = ModelCompressor(
            method="milo", bits=3, rank_policy=UniformRank(2)
        ).compress(model)
        assert set(report.ranks.values()) == {2}
        assert report.average_rank == pytest.approx(2.0)

    def test_frequency_policy_triggers_profiling(self):
        model = build_model("tiny-moe")
        model, report = ModelCompressor(
            method="milo", bits=3, rank_policy=FrequencyRank(1)
        ).compress(model)
        assert "frequency-profiling" in report.stage_times

    def test_layer_stats_include_error_history(self):
        model = build_model("tiny-moe")
        _, report = ModelCompressor(method="milo", bits=3, rank_policy=DenseRank(2)).compress(model)
        stats = report.layer_stats["layer_0.attn.q_proj.weight"]
        assert stats["rank"] == 2
        assert len(stats["error_history"]) == stats["iterations"]

    def test_milo_memory_slightly_above_plain_quantization(self):
        plain = build_model("tiny-moe")
        _, plain_report = ModelCompressor(method="hqq", bits=3).compress(plain)
        milo = build_model("tiny-moe")
        _, milo_report = ModelCompressor(method="milo", bits=3, rank_policy=DenseRank(4)).compress(milo)
        assert milo_report.memory_bytes > plain_report.memory_bytes
        # ... but only slightly (compensators are tiny relative to the model).
        assert milo_report.memory_bytes < 1.25 * plain_report.memory_bytes

    def test_milo_closer_to_fp16_outputs_than_hqq(self):
        teacher = build_model("tiny-moe")
        tokens = np.random.default_rng(2).integers(0, 64, size=(2, 10))
        reference = teacher.forward(tokens)

        hqq_model = build_model("tiny-moe")
        hqq_model, _ = ModelCompressor(method="hqq", bits=3).compress(hqq_model)
        milo_model = build_model("tiny-moe")
        milo_model, _ = ModelCompressor(
            method="milo", bits=3, rank_policy=DenseRank(8)
        ).compress(milo_model)

        err_hqq = np.linalg.norm(hqq_model.forward(tokens) - reference)
        err_milo = np.linalg.norm(milo_model.forward(tokens) - reference)
        assert err_milo < err_hqq
