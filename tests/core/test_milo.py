"""Tests for the MiLo matrix-level iterative optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import MiLoConfig, MiLoMatrixOptimizer
from repro.models.init import heavy_tailed_weight, light_tailed_weight
from repro.quant import HQQConfig, HQQQuantizer


@pytest.fixture()
def heavy_weight():
    return heavy_tailed_weight((64, 128), rng=np.random.default_rng(0))


@pytest.fixture()
def light_weight():
    return light_tailed_weight((64, 128), rng=np.random.default_rng(1))


class TestAlgorithm:
    def test_reconstruction_better_than_plain_hqq(self, heavy_weight):
        milo = MiLoMatrixOptimizer(MiLoConfig(bits=3, group_size=64, compensator_bits=None))
        result = milo.optimize(heavy_weight, rank=8)
        hqq = HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(heavy_weight).dequantize()
        err_milo = np.linalg.norm(heavy_weight - result.reconstructed())
        err_hqq = np.linalg.norm(heavy_weight - hqq)
        assert err_milo < err_hqq

    def test_error_history_decreases_overall(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3)).optimize(heavy_weight, rank=8)
        history = result.error_history
        assert len(history) >= 2
        assert history[-1] <= history[0]
        # The first iteration (plain HQQ + first SVD) to the converged value
        # should show a monotone-ish trend: no value above the starting error.
        assert max(history) == pytest.approx(history[0], rel=1e-9)

    def test_higher_rank_lower_final_error(self, heavy_weight):
        optimizer = MiLoMatrixOptimizer(MiLoConfig(bits=3, compensator_bits=None))
        e_small = optimizer.optimize(heavy_weight, rank=2).final_error()
        e_large = optimizer.optimize(heavy_weight, rank=16).final_error()
        assert e_large < e_small

    def test_iterative_beats_single_iteration(self, heavy_weight):
        single = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=1, compensator_bits=None))
        many = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=20, compensator_bits=None))
        err_single = np.linalg.norm(heavy_weight - single.optimize(heavy_weight, rank=8).reconstructed())
        err_many = np.linalg.norm(heavy_weight - many.optimize(heavy_weight, rank=8).reconstructed())
        assert err_many <= err_single + 1e-12

    def test_respects_iteration_cap(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=5)).optimize(heavy_weight, 4)
        assert result.iterations <= 5

    def test_rank_zero_is_plain_quantization(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3)).optimize(heavy_weight, rank=0)
        assert result.rank == 0
        assert result.compensator.rank == 0
        assert result.iterations == 1
        assert np.allclose(result.reconstructed(), result.dequantized_base())

    def test_stop_reason_recorded(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3)).optimize(heavy_weight, rank=8)
        assert result.stop_reason in ("converged", "max-iterations", "diverged")

    def test_negative_rank_treated_as_zero(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3)).optimize(heavy_weight, rank=-3)
        assert result.rank == 0

    def test_rejects_non_2d_weight(self):
        with pytest.raises(ValueError):
            MiLoMatrixOptimizer().optimize(np.ones(10), rank=1)

    def test_compensator_quantized_by_default(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, compensator_bits=3)).optimize(heavy_weight, 4)
        assert result.compensator.U_quantized is not None

    def test_compensator_kept_fp16_when_requested(self, heavy_weight):
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, compensator_bits=None)).optimize(heavy_weight, 4)
        assert result.compensator.U_quantized is None

    def test_heavy_tailed_benefits_more_than_light_tailed(self, heavy_weight, light_weight):
        """Compensation closes a larger share of the gap on heavy-tailed weights (paper Fig. 4)."""
        optimizer = MiLoMatrixOptimizer(MiLoConfig(bits=3, compensator_bits=None))

        def relative_gain(w):
            base = np.linalg.norm(
                w - HQQQuantizer(HQQConfig(bits=3, group_size=64)).quantize(w).dequantize()
            )
            milo = np.linalg.norm(w - optimizer.optimize(w, rank=8).reconstructed())
            return (base - milo) / base

        assert relative_gain(heavy_weight) > relative_gain(light_weight)


class TestConfigValidation:
    def test_invalid_max_iterations(self):
        with pytest.raises(ValueError):
            MiLoConfig(max_iterations=0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MiLoConfig(window=0)

    def test_inner_hqq_inherits_bits(self):
        cfg = MiLoConfig(bits=4, group_size=32)
        assert cfg.hqq.bits == 4
        assert cfg.hqq.group_size == 32
