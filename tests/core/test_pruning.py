"""Tests for expert pruning (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core import ModelCompressor, UniformRank, prune_experts_by_frequency
from repro.eval import perplexity
from repro.data import teacher_corpus
from repro.models import build_model
from repro.models.moe import MoEFeedForward


class TestPruning:
    def test_prunes_least_frequent_experts(self):
        model = build_model("tiny-moe")
        model, report = prune_experts_by_frequency(model, keep_ratio=0.5)
        assert report.num_pruned > 0
        for layer_idx, kept in report.keep_per_layer.items():
            pruned = report.pruned_per_layer[layer_idx]
            assert len(kept) + len(pruned) == model.config.num_experts
            assert set(kept).isdisjoint(pruned)

    def test_memory_shrinks(self):
        model = build_model("tiny-moe")
        model, report = prune_experts_by_frequency(model, keep_ratio=0.5)
        assert report.memory_after_bytes < report.memory_before_bytes
        assert 0.0 < report.memory_reduction < 1.0

    def test_forward_still_works_and_routes_to_survivors(self):
        model = build_model("tiny-moe")
        model, report = prune_experts_by_frequency(model, keep_ratio=0.5)
        tokens = np.random.default_rng(0).integers(0, 64, size=(2, 12))
        logits = model.forward(tokens)
        assert np.isfinite(logits).all()
        for layer in model.layers:
            if isinstance(layer.ffn, MoEFeedForward):
                assert layer.ffn.router.num_experts == len(layer.ffn.experts)
                assert layer.ffn.router.k <= layer.ffn.router.num_experts

    def test_keep_ratio_one_is_a_noop(self):
        model = build_model("tiny-moe")
        before = model.memory_bytes()
        model, report = prune_experts_by_frequency(model, keep_ratio=1.0)
        assert report.num_pruned == 0
        assert model.memory_bytes() == before

    def test_min_keep_respects_topk(self):
        model = build_model("tiny-finegrained")
        model, report = prune_experts_by_frequency(model, keep_ratio=0.05)
        for kept in report.keep_per_layer.values():
            assert len(kept) >= model.config.experts_per_token

    def test_invalid_keep_ratio(self):
        with pytest.raises(ValueError):
            prune_experts_by_frequency(build_model("tiny-moe"), keep_ratio=0.0)

    def test_quality_degrades_gracefully(self):
        """Pruning hurts less than it saves memory for a moderately pruned model."""
        teacher = build_model("tiny-finegrained")
        corpus = teacher_corpus(teacher, num_sequences=8, seq_len=16, seed=0)
        base_ppl = perplexity(teacher, corpus)
        pruned = build_model("tiny-finegrained")
        pruned, report = prune_experts_by_frequency(pruned, keep_ratio=0.75)
        pruned_ppl = perplexity(pruned, corpus)
        assert pruned_ppl >= base_ppl
        assert pruned_ppl < base_ppl * 3.0
        assert report.memory_reduction > 0.05

    def test_composes_with_milo_quantization(self):
        """Pruning then MiLo quantization — the combination the paper proposes."""
        model = build_model("tiny-finegrained")
        model, prune_report = prune_experts_by_frequency(model, keep_ratio=0.75)
        model, quant_report = ModelCompressor(
            method="milo", bits=3, rank_policy=UniformRank(1)
        ).compress(model)
        assert quant_report.memory_bytes < prune_report.memory_before_bytes
        tokens = np.random.default_rng(1).integers(0, 64, size=(1, 10))
        assert np.isfinite(model.forward(tokens)).all()
