"""Tests for tile shapes, kernel-config validation, and the tile tuner."""

import pytest

from repro.kernels.tiles import (
    SUPPORTED_TILE_SHAPES,
    KernelConfigError,
    TileShape,
    choose_tile_shape,
    global_reduction_splits,
    validate_kernel_config,
)


class TestValidation:
    def test_supported_menu_matches_paper(self):
        assert {t.as_tuple() for t in SUPPORTED_TILE_SHAPES} == {(256, 64), (128, 128), (64, 256)}

    def test_group_size_must_be_64(self):
        with pytest.raises(KernelConfigError, match="group_size"):
            validate_kernel_config(4096, 14336, 128, TileShape(128, 128))

    def test_shape_must_be_tile_multiple(self):
        with pytest.raises(KernelConfigError, match="multiple"):
            validate_kernel_config(4000, 14336, 64, TileShape(128, 128))

    def test_unsupported_tile_rejected(self):
        with pytest.raises(KernelConfigError, match="unsupported"):
            validate_kernel_config(4096, 14336, 64, (32, 32))

    def test_valid_config_passes(self):
        tile = validate_kernel_config(4096, 14336, 64, (128, 128))
        assert tile == TileShape(128, 128)

    def test_tuple_accepted(self):
        assert validate_kernel_config(256, 256, 64, (256, 64)) == TileShape(256, 64)

    def test_non_positive_shape_rejected(self):
        with pytest.raises(KernelConfigError):
            validate_kernel_config(0, 128, 64, (128, 128))


class TestReductionSplits:
    def test_wide_output_needs_no_split(self):
        # Mixtral w1: n=14336 provides 112 column tiles, enough to fill 108 SMs.
        assert global_reduction_splits(4096, 14336, TileShape(128, 128)) == 1

    def test_narrow_output_needs_splits(self):
        # DeepSeek w2: n=2048 gives only 16 column tiles -> split-K needed.
        assert global_reduction_splits(11008, 2048, TileShape(128, 128)) > 1

    def test_splits_bounded_by_pipeline_stages(self):
        splits = global_reduction_splits(256, 64, TileShape(64, 256))
        assert splits <= 1  # only one pipeline stage available along k

    def test_more_sms_need_more_splits(self):
        few = global_reduction_splits(11008, 2048, TileShape(128, 128), num_sms=32)
        many = global_reduction_splits(11008, 2048, TileShape(128, 128), num_sms=128)
        assert many >= few


class TestTileTuner:
    def test_small_n_prefers_narrow_tile(self):
        """DeepSeek-like down-projection: tuning reduces reduction splits."""
        tuned = choose_tile_shape(11008, 2048)
        fixed = TileShape(128, 128)
        assert global_reduction_splits(11008, 2048, tuned) <= global_reduction_splits(
            11008, 2048, fixed
        )

    def test_large_matrix_keeps_square_tile(self):
        assert choose_tile_shape(4096, 14336) == TileShape(128, 128)

    def test_returns_supported_shape(self):
        assert choose_tile_shape(512, 192) in SUPPORTED_TILE_SHAPES

    def test_no_padding_requested_but_impossible_raises(self):
        with pytest.raises(KernelConfigError):
            choose_tile_shape(100, 100, allow_padding=False)

    def test_divisible_candidates_preferred(self):
        tile = choose_tile_shape(256, 64, allow_padding=True)
        assert 256 % tile.tile_k == 0 and 64 % tile.tile_n == 0
