"""Tests for the A100 kernel performance model and backend simulators."""

import numpy as np
import pytest

from repro.kernels.device import A100_40GB
from repro.kernels.simulators import (
    DequantCutlassSim,
    FP16KernelSim,
    GemmShape,
    GPTQ3bitKernelSim,
    KernelSimulator,
    MarlinKernelSim,
    MiLoKernelSim,
    UnsupportedBatchError,
    default_backends,
)
from repro.models import REFERENCE_FFN_SHAPES

MIXTRAL = REFERENCE_FFN_SHAPES["mixtral-8x7b"]
DEEPSEEK = REFERENCE_FFN_SHAPES["deepseek-moe"]


class TestGemmShape:
    def test_flops(self):
        assert GemmShape(2, 3, 4).flops == 2 * 2 * 3 * 4

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            GemmShape(0, 4, 4)


class TestDeviceModel:
    def test_tensor_core_efficiency_increases_with_batch(self):
        effs = [A100_40GB.tensor_core_efficiency(b) for b in (1, 8, 16, 64, 256)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[-1] <= 1.0

    def test_memory_capacity(self):
        assert A100_40GB.memory_gb == 40.0

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            A100_40GB.tensor_core_efficiency(0)


class TestCostDecomposition:
    def test_breakdown_sums_to_total_when_not_overlapped(self):
        sim = MiLoKernelSim(async_load=False)
        cost = sim.gemm_cost(GemmShape(16, 4096, 14336))
        expected = (
            cost.memory_time + cost.compute_time + cost.dequant_time
            + cost.sync_time + cost.overhead_time
        )
        assert cost.total == pytest.approx(expected)

    def test_overlap_takes_max_of_pipelines(self):
        sim = MiLoKernelSim(async_load=True)
        cost = sim.gemm_cost(GemmShape(16, 4096, 14336))
        assert cost.total == pytest.approx(
            max(cost.memory_time, cost.compute_time + cost.dequant_time)
            + cost.sync_time + cost.overhead_time
        )

    def test_weight_bytes_scale_with_bits(self):
        shape = GemmShape(16, 4096, 4096)
        b3 = MiLoKernelSim().weight_bytes(shape)
        b4 = MarlinKernelSim().weight_bytes(shape)
        b16 = FP16KernelSim().weight_bytes(shape)
        assert b3 < b4 < b16
        assert b16 == 4096 * 4096 * 2

    def test_tflops_positive_and_bounded_by_peak(self):
        for sim in default_backends().values():
            if isinstance(sim, GPTQ3bitKernelSim):
                continue
            cost = sim.gemm_cost(GemmShape(32, 4096, 14336))
            assert 0 < cost.tflops < A100_40GB.tensor_core_flops / 1e12


class TestBackendBehaviours:
    def test_gptq3bit_rejects_batched_inference(self):
        sim = GPTQ3bitKernelSim()
        assert sim.supports_batch(1)
        assert not sim.supports_batch(16)
        with pytest.raises(UnsupportedBatchError):
            sim.gemm_cost(GemmShape(16, 4096, 14336))

    def test_batch1_is_memory_bound_and_3bit_wins(self):
        """At batch 1 the 3-bit backends beat the 4-bit MARLIN (paper Fig. 9 / Table 7)."""
        milo = MiLoKernelSim(symmetric=True).mlp_latency(MIXTRAL, 1)
        gptq = GPTQ3bitKernelSim().mlp_latency(MIXTRAL, 1)
        marlin = MarlinKernelSim().mlp_latency(MIXTRAL, 1)
        assert milo < marlin
        assert gptq < marlin
        assert abs(milo - gptq) / gptq < 0.25  # "similar behaviour at batch 1"
        assert 1.1 < marlin / milo < 1.45      # paper reports ~1.2x

    @pytest.mark.parametrize("model", ["deepseek-moe", "arctic-moe", "mixtral-8x7b", "falcon-180b"])
    def test_milo_beats_marlin_at_batch_16(self, model):
        shapes = REFERENCE_FFN_SHAPES[model]
        milo = MiLoKernelSim(symmetric=True).mlp_tflops(shapes, 16)
        marlin = MarlinKernelSim().mlp_tflops(shapes, 16)
        assert milo > marlin
        assert milo / marlin < 1.6  # a modest edge, not an order of magnitude

    def test_milo_not_worse_than_marlin_at_batch_32(self):
        milo = MiLoKernelSim(symmetric=True).mlp_tflops(DEEPSEEK, 32)
        marlin = MarlinKernelSim().mlp_tflops(DEEPSEEK, 32)
        assert milo > marlin

    def test_unfused_dequant_cutlass_is_much_slower(self):
        fused = MiLoKernelSim(symmetric=True).mlp_latency(MIXTRAL, 16)
        unfused = DequantCutlassSim().mlp_latency(MIXTRAL, 16)
        assert unfused > 2 * fused

    def test_throughput_grows_with_batch(self):
        sim = MiLoKernelSim(symmetric=True)
        t1 = sim.mlp_tflops(MIXTRAL, 1)
        t16 = sim.mlp_tflops(MIXTRAL, 16)
        t32 = sim.mlp_tflops(MIXTRAL, 32)
        assert t1 < t16 < t32

    def test_marlin_asymmetric_handling_costs_extra(self):
        plain = MarlinKernelSim(handle_asymmetric_model=False).mlp_latency(MIXTRAL, 16)
        with_zero_points = MarlinKernelSim(handle_asymmetric_model=True).mlp_latency(MIXTRAL, 16)
        assert with_zero_points > plain

    def test_default_backend_lineup(self):
        backends = default_backends()
        assert set(backends) == {
            "MiLo Dequant + CUTLASS",
            "GPTQ3bit Kernel",
            "MARLIN Kernel",
            "MiLo Kernel (sym)",
            "MiLo Kernel (asym)",
        }


class TestAblationSwitches:
    """The Fig. 10 ablation: each optimization must cost something when removed."""

    @pytest.mark.parametrize("model", ["deepseek-moe", "mixtral-8x7b", "falcon-180b"])
    def test_async_load_is_most_important(self, model):
        shapes = REFERENCE_FFN_SHAPES[model]
        base = MiLoKernelSim(symmetric=False).mlp_latency(shapes, 16)
        no_async = MiLoKernelSim(symmetric=False, async_load=False).mlp_latency(shapes, 16)
        no_dequant = MiLoKernelSim(symmetric=False, milo_dequant=False).mlp_latency(shapes, 16)
        no_tiles = MiLoKernelSim(symmetric=False, tile_tuning=False).mlp_latency(shapes, 16)
        assert no_async > base
        assert no_async >= no_dequant
        assert no_async >= no_tiles

    def test_dequant_matters_more_for_larger_mlps(self):
        def slowdown(shapes):
            base = MiLoKernelSim(symmetric=False).mlp_latency(shapes, 16)
            return MiLoKernelSim(symmetric=False, milo_dequant=False).mlp_latency(shapes, 16) / base

        assert slowdown(REFERENCE_FFN_SHAPES["falcon-180b"]) > slowdown(DEEPSEEK)

    def test_tile_tuning_matters_most_for_small_mlps(self):
        def slowdown(shapes):
            base = MiLoKernelSim(symmetric=False).mlp_latency(shapes, 16)
            return MiLoKernelSim(symmetric=False, tile_tuning=False).mlp_latency(shapes, 16) / base

        assert slowdown(DEEPSEEK) > slowdown(REFERENCE_FFN_SHAPES["falcon-180b"])
        assert slowdown(DEEPSEEK) > 1.05
