"""Reproduction of the paper's Appendix D kernel correctness suite.

The artifact defines three groups of tests — functional correctness on
real-model matrix shapes, error handling of invalid configurations, and
boundary conditions on the batch and reduction dimensions — with a pass
criterion of relative error below 0.005 against the reference, over 5 random
seeds.  The shapes are scaled down (the full 4096x14336 GEMMs would be slow
in numpy) but keep the same divisibility structure.
"""

import numpy as np
import pytest

from repro.kernels.gemm import packed_gemm_w3a16, quantize_for_kernel, reference_gemm
from repro.kernels.tiles import KernelConfigError, validate_kernel_config

#: Appendix D pass criterion.
RELATIVE_ERROR_THRESHOLD = 0.005

#: Scaled-down stand-ins for the Mixtral / Llama2 shapes of the artifact's
#: functional tests (k, n); divisible by every supported tile shape.
MIXTRAL_LIKE_SHAPES = [(512, 1792), (1792, 512), (512, 512)]
LLAMA_LIKE_SHAPES = [(512, 1536), (1536, 512), (512, 768), (768, 512)]


def _relative_error(x, qw, seed):
    """Relative error of the packed GEMM against the de-quantized reference."""
    from repro.kernels.gemm import _dequantize_kernel_weight

    y = packed_gemm_w3a16(x, qw)
    y_ref = reference_gemm(x, _dequantize_kernel_weight(qw))
    denom = np.linalg.norm(y_ref)
    return np.linalg.norm(y - y_ref) / denom if denom else 0.0


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("shape", MIXTRAL_LIKE_SHAPES)
    @pytest.mark.parametrize("batch", [1, 16, 64, 256])
    def test_mixtral_shapes(self, shape, batch):
        k, n = shape
        rng = np.random.default_rng(hash((k, n, batch)) % 2**32)
        qw = quantize_for_kernel(rng.normal(0, 0.05, size=(k, n)), bits=3, group_size=64)
        x = rng.normal(size=(batch, k))
        assert _relative_error(x, qw, 0) < RELATIVE_ERROR_THRESHOLD

    @pytest.mark.parametrize("shape", LLAMA_LIKE_SHAPES)
    def test_llama_shapes(self, shape):
        k, n = shape
        rng = np.random.default_rng(hash((k, n)) % 2**32)
        qw = quantize_for_kernel(rng.normal(0, 0.05, size=(k, n)), bits=3, group_size=64)
        x = rng.normal(size=(16, k))
        assert _relative_error(x, qw, 0) < RELATIVE_ERROR_THRESHOLD

    @pytest.mark.parametrize("seed", range(5))
    def test_five_random_seeds(self, seed):
        """The artifact repeats every correctness test with 5 random seeds."""
        rng = np.random.default_rng(seed)
        qw = quantize_for_kernel(rng.normal(0, 0.05, size=(512, 512)), bits=3, group_size=64)
        x = rng.normal(size=(32, 512))
        assert _relative_error(x, qw, seed) < RELATIVE_ERROR_THRESHOLD


class TestErrorHandling:
    def test_group_size_must_be_64(self):
        with pytest.raises(KernelConfigError):
            validate_kernel_config(512, 512, 128, (128, 128))

    def test_weight_shape_must_be_tile_multiple(self):
        with pytest.raises(KernelConfigError):
            validate_kernel_config(500, 512, 64, (128, 128))
        with pytest.raises(KernelConfigError):
            validate_kernel_config(512, 500, 64, (128, 128))

    def test_tile_shape_restricted_to_supported_set(self):
        for bad in [(128, 64), (64, 64), (512, 32)]:
            with pytest.raises(KernelConfigError):
                validate_kernel_config(512, 512, 64, bad)

    def test_all_supported_tiles_accepted(self):
        for tile in [(256, 64), (128, 128), (64, 256)]:
            validate_kernel_config(1024, 1024, 64, tile)


class TestBoundaryConditions:
    @pytest.mark.parametrize("batch", [1, 7, 15, 17, 31, 33])
    def test_batch_not_multiple_of_16_padded_correctly(self, batch):
        """Tensor cores do 16x8x16 MMAs; odd batches require padding."""
        rng = np.random.default_rng(batch)
        qw = quantize_for_kernel(rng.normal(0, 0.05, size=(512, 256)), bits=3, group_size=64)
        x = rng.normal(size=(batch, 512))
        y = packed_gemm_w3a16(x, qw)
        assert y.shape == (batch, 256)
        assert _relative_error(x, qw, batch) < RELATIVE_ERROR_THRESHOLD

    @pytest.mark.parametrize("k", [256, 320, 576])
    def test_reduction_dim_not_multiple_of_pipeline_stage(self, k):
        """k not divisible by 4 * tile_k terminates the last pipeline stage early."""
        rng = np.random.default_rng(k)
        qw = quantize_for_kernel(rng.normal(0, 0.05, size=(k, 256)), bits=3, group_size=64)
        x = rng.normal(size=(16, k))
        y = packed_gemm_w3a16(x, qw, tile_shape=(64, 256), validate=False)
        assert y.shape == (16, 256)
        assert _relative_error(x, qw, k) < RELATIVE_ERROR_THRESHOLD
