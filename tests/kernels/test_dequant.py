"""Tests for the binary-manipulation I2F de-quantization path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.dequant import (
    MAGIC_FP16_BIAS,
    dequantize_int3_codes,
    dequantize_packed_matrix,
    i2f_binary_manipulation,
)
from repro.kernels.packing import pack_int3_matrix


class TestBinaryManipulation:
    def test_matches_plain_cast_for_int3_codes(self):
        codes = np.arange(8)
        assert np.array_equal(i2f_binary_manipulation(codes), codes.astype(float))

    def test_magic_constant_is_1024(self):
        assert np.frombuffer(np.uint16(MAGIC_FP16_BIAS).tobytes(), dtype=np.float16)[0] == 1024.0

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_exact_for_all_mantissa_range(self, values):
        codes = np.array(values)
        assert np.array_equal(i2f_binary_manipulation(codes), codes.astype(float))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            i2f_binary_manipulation(np.array([1024]))
        with pytest.raises(ValueError):
            i2f_binary_manipulation(np.array([-1]))


class TestGroupDequant:
    def _setup(self, symmetric):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 8, size=(4, 128))
        scales = rng.uniform(0.01, 0.1, size=(4, 2))
        zeros = rng.uniform(0, 7, size=(4, 2))
        return codes, scales, zeros

    def test_asymmetric_matches_reference(self):
        codes, scales, zeros = self._setup(False)
        dq = dequantize_int3_codes(codes, scales, zeros, group_size=64, symmetric=False)
        reference = (
            (codes.reshape(4, 2, 64) - zeros[:, :, None]) * scales[:, :, None]
        ).reshape(4, 128)
        assert np.allclose(dq, reference)

    def test_symmetric_subtracts_midcode(self):
        codes, scales, _ = self._setup(True)
        dq = dequantize_int3_codes(codes, scales, None, group_size=64, symmetric=True)
        reference = ((codes.reshape(4, 2, 64) - 4.0) * scales[:, :, None]).reshape(4, 128)
        assert np.allclose(dq, reference)

    def test_asymmetric_requires_zeros(self):
        codes, scales, _ = self._setup(False)
        with pytest.raises(ValueError):
            dequantize_int3_codes(codes, scales, None, group_size=64, symmetric=False)

    def test_group_size_must_divide_columns(self):
        codes, scales, zeros = self._setup(False)
        with pytest.raises(ValueError):
            dequantize_int3_codes(codes, scales, zeros, group_size=60)

    def test_packed_matrix_dequant_equals_code_dequant(self):
        codes, scales, zeros = self._setup(False)
        packed = pack_int3_matrix(codes)
        via_packed = dequantize_packed_matrix(packed, scales, zeros, 64, symmetric=False)
        via_codes = dequantize_int3_codes(codes, scales, zeros, 64, symmetric=False)
        assert np.allclose(via_packed, via_codes)
