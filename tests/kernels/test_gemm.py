"""Functional tests for the packed W3A16 / W4A16 GEMM."""

import numpy as np
import pytest

from repro.kernels.gemm import (
    packed_gemm_w3a16,
    packed_gemm_w4a16,
    quantize_for_kernel,
    reference_gemm,
)
from repro.kernels.tiles import KernelConfigError


@pytest.fixture()
def weight_kn():
    return np.random.default_rng(0).normal(0, 0.05, size=(256, 128))


@pytest.fixture()
def activations():
    return np.random.default_rng(1).normal(size=(8, 256))


class TestKernelQuantization:
    def test_symmetric_int3_roundtrip_close(self, weight_kn):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        assert qw.shape == (256, 128)
        assert qw.zeros is None
        assert qw.scales.shape == (128, 4)

    def test_asymmetric_has_zero_points(self, weight_kn):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=False)
        assert qw.zeros is not None

    def test_k_must_be_group_multiple(self):
        with pytest.raises(ValueError):
            quantize_for_kernel(np.zeros((100, 64)), group_size=64)

    def test_unsupported_bits_rejected(self, weight_kn):
        with pytest.raises(ValueError):
            quantize_for_kernel(weight_kn, bits=2)


class TestW3A16Gemm:
    def test_matches_fp_reference_within_quantization_error(self, weight_kn, activations):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        y = packed_gemm_w3a16(activations, qw)
        y_ref = reference_gemm(activations, weight_kn)
        rel = np.linalg.norm(y - y_ref) / np.linalg.norm(y_ref)
        assert rel < 0.3  # INT3 quantization error, not a kernel bug

    def test_bit_exact_against_dequantized_weight(self, weight_kn, activations):
        """The packed GEMM must equal a dense GEMM on the de-quantized weight."""
        from repro.kernels.gemm import _dequantize_kernel_weight

        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        y = packed_gemm_w3a16(activations, qw)
        y_exact = reference_gemm(activations, _dequantize_kernel_weight(qw))
        assert np.allclose(y, y_exact, atol=1e-9)

    def test_asymmetric_path(self, weight_kn, activations):
        from repro.kernels.gemm import _dequantize_kernel_weight

        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=False)
        y = packed_gemm_w3a16(activations, qw)
        assert np.allclose(y, reference_gemm(activations, _dequantize_kernel_weight(qw)), atol=1e-9)

    def test_all_supported_tile_shapes_agree(self, weight_kn, activations):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        outputs = [
            packed_gemm_w3a16(activations, qw, tile_shape=t, validate=False)
            for t in ((256, 64), (128, 128), (64, 256))
        ]
        assert np.allclose(outputs[0], outputs[1]) and np.allclose(outputs[1], outputs[2])

    @pytest.mark.parametrize("batch", [1, 3, 16, 17, 33])
    def test_batch_padding_to_tensor_core_fragment(self, weight_kn, batch):
        """Batch sizes that are not multiples of 16 must be padded, not rejected."""
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        x = np.random.default_rng(2).normal(size=(batch, 256))
        assert packed_gemm_w3a16(x, qw).shape == (batch, 128)

    def test_wrong_activation_width_rejected(self, weight_kn):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64)
        with pytest.raises(ValueError):
            packed_gemm_w3a16(np.zeros((4, 100)), qw)

    def test_invalid_tile_configuration_rejected(self, weight_kn, activations):
        qw = quantize_for_kernel(weight_kn, bits=3, group_size=64)
        with pytest.raises(KernelConfigError):
            packed_gemm_w3a16(activations, qw, tile_shape=(32, 32))

    def test_requires_3bit_weight(self, weight_kn, activations):
        qw4 = quantize_for_kernel(weight_kn, bits=4, group_size=64)
        with pytest.raises(ValueError):
            packed_gemm_w3a16(activations, qw4)


class TestW4A16Gemm:
    def test_more_accurate_than_int3(self, weight_kn, activations):
        y_ref = reference_gemm(activations, weight_kn)
        q3 = quantize_for_kernel(weight_kn, bits=3, group_size=64, symmetric=True)
        q4 = quantize_for_kernel(weight_kn, bits=4, group_size=64, symmetric=True)
        err3 = np.linalg.norm(packed_gemm_w3a16(activations, q3) - y_ref)
        err4 = np.linalg.norm(packed_gemm_w4a16(activations, q4) - y_ref)
        assert err4 < err3

    def test_requires_4bit_weight(self, weight_kn, activations):
        q3 = quantize_for_kernel(weight_kn, bits=3, group_size=64)
        with pytest.raises(ValueError):
            packed_gemm_w4a16(activations, q3)
