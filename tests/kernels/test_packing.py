"""Tests for the zero-bit-waste INT3 packing and INT4 packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels.packing import (
    WEIGHTS_PER_GROUP,
    WORDS_PER_GROUP,
    pack_int3_groups,
    pack_int3_matrix,
    pack_int4_matrix,
    unpack_int3_groups,
    unpack_int3_matrix,
    unpack_int4_matrix,
)

int3_rows = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 6), st.sampled_from([32, 64, 96, 128])),
    elements=st.integers(0, 7),
)


class TestGroupPacking:
    def test_32_codes_become_3_words(self):
        codes = np.arange(32) % 8
        words = pack_int3_groups(codes[None, :])
        assert words.shape == (1, WORDS_PER_GROUP)

    def test_roundtrip_simple(self):
        codes = np.tile(np.arange(8), 4)[None, :]
        assert np.array_equal(unpack_int3_groups(pack_int3_groups(codes)), codes)

    def test_zero_bit_waste(self):
        """32 x 3-bit codes occupy exactly 96 bits = 3 x INT32 (no padding bits)."""
        assert WEIGHTS_PER_GROUP * 3 == WORDS_PER_GROUP * 32

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            pack_int3_groups(np.full((1, 32), 8))
        with pytest.raises(ValueError):
            pack_int3_groups(np.full((1, 32), -1))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pack_int3_groups(np.zeros((1, 30), dtype=int))

    @given(int3_rows)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, codes):
        words = pack_int3_groups(codes)
        assert words.shape[-1] == codes.shape[-1] // 32 * 3
        assert np.array_equal(unpack_int3_groups(words), codes)

    def test_all_code_values_survive_in_every_position(self):
        for value in range(8):
            codes = np.full((1, 32), value)
            assert np.array_equal(unpack_int3_groups(pack_int3_groups(codes)), codes)

    def test_last_eight_weights_reassembled_from_spare_bits(self):
        """Weights e24..e31 are stored across the spare bytes of all 3 words."""
        codes = np.zeros((1, 32), dtype=int)
        codes[0, 24:] = [1, 2, 3, 4, 5, 6, 7, 0]
        words = pack_int3_groups(codes)
        # The low 24 bits of every word encode only e0..e23, which are all zero.
        assert np.all(words & np.uint32(0x00FFFFFF) == 0)
        assert np.array_equal(unpack_int3_groups(words), codes)


class TestMatrixPacking:
    def test_split_layout_sizes(self):
        codes = np.random.default_rng(0).integers(0, 8, size=(16, 128))
        packed = pack_int3_matrix(codes)
        groups_per_row = 128 // 32
        assert packed.main.shape == (16, 2 * groups_per_row)
        assert packed.rest.shape == (16, groups_per_row)
        assert packed.packed_bytes == pytest.approx(packed.ideal_bytes)

    def test_roundtrip(self):
        codes = np.random.default_rng(1).integers(0, 8, size=(8, 256))
        assert np.array_equal(unpack_int3_matrix(pack_int3_matrix(codes)), codes)

    def test_roundtrip_with_column_padding(self):
        codes = np.random.default_rng(2).integers(0, 8, size=(4, 50))
        packed = pack_int3_matrix(codes)
        assert np.array_equal(unpack_int3_matrix(packed), codes)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_int3_matrix(np.zeros(32, dtype=int))

    def test_storage_is_three_sixteenths_of_fp16(self):
        codes = np.random.default_rng(3).integers(0, 8, size=(64, 256))
        packed = pack_int3_matrix(codes)
        fp16_bytes = codes.size * 2
        assert packed.packed_bytes / fp16_bytes == pytest.approx(3 / 16)


class TestRandomShapeRoundTrips:
    """Property-style pack→unpack identity over ≥50 seeded random shapes.

    Shapes deliberately hit the awkward cases: single rows/columns, column
    counts exactly on the 32-weight packing-group boundary, one off either
    side of it, quant-group-sized (64) and non-divisible K, and odd sizes.
    """

    INTERESTING_COLS = [1, 31, 32, 33, 63, 64, 65, 95, 96, 97, 50, 127, 128, 129, 200]

    @pytest.mark.parametrize("case", range(55))
    def test_int3_matrix_roundtrip_random_shape(self, case):
        rng = np.random.default_rng(1000 + case)
        if case < len(self.INTERESTING_COLS):
            cols = self.INTERESTING_COLS[case]
        else:
            cols = int(rng.integers(1, 400))
        rows = int(rng.integers(1, 12))
        codes = rng.integers(0, 8, size=(rows, cols))
        packed = pack_int3_matrix(codes)
        assert np.array_equal(unpack_int3_matrix(packed), codes)
        # Padded storage is whole packing groups of 3 words each.
        groups_per_row = -(-cols // WEIGHTS_PER_GROUP)
        assert packed.main.shape == (rows, 2 * groups_per_row)
        assert packed.rest.shape == (rows, groups_per_row)

    @pytest.mark.parametrize("case", range(55))
    def test_int4_matrix_roundtrip_random_shape(self, case):
        rng = np.random.default_rng(2000 + case)
        if case < len(self.INTERESTING_COLS):
            cols = self.INTERESTING_COLS[case]
        else:
            cols = int(rng.integers(1, 400))
        rows = int(rng.integers(1, 12))
        codes = rng.integers(0, 16, size=(rows, cols))
        words = pack_int4_matrix(codes)
        assert words.shape == (rows, -(-cols // 8))
        assert np.array_equal(unpack_int4_matrix(words, cols), codes)

    @pytest.mark.parametrize("cols", [32, 64, 96, 128, 160])
    def test_int3_group_boundary_columns_need_no_padding(self, cols):
        rng = np.random.default_rng(cols)
        codes = rng.integers(0, 8, size=(3, cols))
        packed = pack_int3_matrix(codes)
        # Exactly on the boundary: storage is the zero-waste ideal.
        assert packed.packed_bytes == pytest.approx(packed.ideal_bytes)
        assert np.array_equal(unpack_int3_matrix(packed), codes)

    @pytest.mark.parametrize("cols", [33, 63, 65, 100])
    def test_int3_padding_never_bleeds_into_codes(self, cols):
        """Padded tail positions must not corrupt the stored prefix."""
        rng = np.random.default_rng(cols)
        codes = rng.integers(0, 8, size=(2, cols))
        out = unpack_int3_matrix(pack_int3_matrix(codes))
        assert out.shape == codes.shape
        assert np.array_equal(out, codes)

    def test_extreme_values_roundtrip_across_group_boundaries(self):
        # All-7s stresses every code bit; all-0s stresses the spare bytes.
        for fill in (0, 7):
            codes = np.full((5, 97), fill)
            assert np.array_equal(unpack_int3_matrix(pack_int3_matrix(codes)), codes)


class TestInt4Packing:
    def test_roundtrip(self):
        codes = np.random.default_rng(4).integers(0, 16, size=(8, 64))
        words = pack_int4_matrix(codes)
        assert words.shape == (8, 8)
        assert np.array_equal(unpack_int4_matrix(words, 64), codes)

    def test_roundtrip_with_padding(self):
        codes = np.random.default_rng(5).integers(0, 16, size=(4, 30))
        assert np.array_equal(unpack_int4_matrix(pack_int4_matrix(codes), 30), codes)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_int4_matrix(np.full((1, 8), 16))
