"""Tests for the three linear-layer deployment states."""

import numpy as np
import pytest

from repro.models.linear import CompensatedLinear, Linear, QuantizedLinear


@pytest.fixture()
def weight():
    return np.random.default_rng(0).normal(0, 0.05, size=(12, 8))


class TestLinear:
    def test_forward_matches_matmul(self, weight):
        layer = Linear(8, 12, weight=weight)
        x = np.random.default_rng(1).normal(size=(5, 8))
        assert np.allclose(layer(x), x @ weight.T)

    def test_bias_is_added(self, weight):
        bias = np.arange(12, dtype=float)
        layer = Linear(8, 12, weight=weight, bias=bias)
        x = np.zeros((2, 8))
        assert np.allclose(layer(x), np.tile(bias, (2, 1)))

    def test_wrong_weight_shape_raises(self):
        with pytest.raises(ValueError):
            Linear(8, 12, weight=np.zeros((8, 12)))

    def test_default_weight_is_zero(self):
        layer = Linear(4, 4)
        assert np.allclose(layer(np.ones((1, 4))), 0.0)

    def test_effective_weight(self, weight):
        layer = Linear(8, 12, weight=weight)
        assert np.array_equal(layer.effective_weight(), weight)


class TestQuantizedLinear:
    def test_memory_smaller_than_fp16(self, weight):
        fp = Linear(8, 12, weight=weight)
        q = QuantizedLinear(8, 12, weight, bits=3, group_size=4)
        assert q.memory_bytes() < fp.memory_bytes()

    def test_asymmetric_metadata_twice_symmetric(self, weight):
        asym = QuantizedLinear(8, 12, weight, bits=3, group_size=4, symmetric=False)
        sym = QuantizedLinear(8, 12, weight, bits=3, group_size=4, symmetric=True)
        assert asym.extra_memory_bytes() == 2 * sym.extra_memory_bytes()

    def test_forward_uses_dequantized_weight(self, weight):
        q = QuantizedLinear(8, 12, weight, bits=3, group_size=4)
        x = np.random.default_rng(2).normal(size=(3, 8))
        assert np.allclose(q(x), x @ weight.T)

    def test_group_count_rounds_up(self):
        q = QuantizedLinear(10, 4, np.zeros((4, 10)), bits=3, group_size=4)
        assert q.num_groups() == 4 * 3


class TestCompensatedLinear:
    def test_forward_adds_low_rank_correction(self, weight):
        rng = np.random.default_rng(3)
        U = rng.normal(size=(12, 2))
        V = rng.normal(size=(2, 8))
        layer = CompensatedLinear(8, 12, weight, U=U, V=V, bits=3, group_size=4)
        x = rng.normal(size=(4, 8))
        expected = x @ (weight + U @ V).T
        assert np.allclose(layer(x), expected)

    def test_rank_zero_behaves_like_quantized(self, weight):
        layer = CompensatedLinear(
            8, 12, weight, U=np.zeros((12, 0)), V=np.zeros((0, 8)), bits=3, group_size=4
        )
        x = np.random.default_rng(4).normal(size=(2, 8))
        assert np.allclose(layer(x), x @ weight.T)
        assert layer.extra_memory_bytes() == QuantizedLinear(
            8, 12, weight, bits=3, group_size=4
        ).extra_memory_bytes()

    def test_shape_mismatch_raises(self, weight):
        with pytest.raises(ValueError):
            CompensatedLinear(
                8, 12, weight, U=np.zeros((12, 2)), V=np.zeros((3, 8)), bits=3, group_size=4
            )
        with pytest.raises(ValueError):
            CompensatedLinear(
                8, 12, weight, U=np.zeros((11, 2)), V=np.zeros((2, 8)), bits=3, group_size=4
            )

    def test_memory_grows_with_rank(self, weight):
        def layer(rank):
            return CompensatedLinear(
                8, 12, weight,
                U=np.zeros((12, rank)), V=np.zeros((rank, 8)),
                bits=3, group_size=4,
            )

        assert layer(4).memory_bytes() > layer(1).memory_bytes() > layer(0).memory_bytes()

    def test_effective_weight_includes_correction(self, weight):
        U = np.ones((12, 1))
        V = np.ones((1, 8))
        layer = CompensatedLinear(8, 12, weight, U=U, V=V, bits=3, group_size=4)
        assert np.allclose(layer.effective_weight(), weight + 1.0)
