"""Tests for Parameter and logical-dtype memory accounting."""

import numpy as np
import pytest

from repro.models.parameter import (
    FP16,
    INT3,
    INT4,
    Parameter,
    bits_per_element,
    tensor_bytes,
)


class TestBitsPerElement:
    def test_known_dtypes(self):
        assert bits_per_element("fp16") == 16
        assert bits_per_element("fp32") == 32
        assert bits_per_element("int8") == 8
        assert bits_per_element("int4") == 4
        assert bits_per_element("int3") == 3

    def test_dtype_object(self):
        assert bits_per_element(INT3) == 3
        assert bits_per_element(FP16) == 16

    def test_unknown_dtype_raises(self):
        with pytest.raises(ValueError):
            bits_per_element("int5")


class TestTensorBytes:
    def test_fp16_matrix(self):
        assert tensor_bytes((4, 8), "fp16") == 4 * 8 * 2

    def test_int3_matrix(self):
        assert tensor_bytes((64, 64), INT3) == 64 * 64 * 3 / 8

    def test_scalar_shape(self):
        assert tensor_bytes((), "fp16") == 2


class TestParameter:
    def test_stores_float64(self):
        p = Parameter(np.ones((2, 3), dtype=np.float32))
        assert p.data.dtype == np.float64
        assert p.shape == (2, 3)
        assert p.numel() == 6

    def test_logical_bytes_depend_on_dtype(self):
        data = np.zeros((16, 16))
        fp16 = Parameter(data, dtype="fp16")
        int3 = Parameter(data, dtype=INT3)
        assert fp16.nbytes_logical() == 512
        assert int3.nbytes_logical() == 16 * 16 * 3 / 8
        assert int3.nbytes_logical() < fp16.nbytes_logical()

    def test_copy_is_independent(self):
        p = Parameter(np.ones((2, 2)))
        q = p.copy()
        q.data[0, 0] = 5.0
        assert p.data[0, 0] == 1.0

    def test_array_protocol(self):
        p = Parameter(np.arange(4).reshape(2, 2))
        assert np.array_equal(np.asarray(p), np.arange(4).reshape(2, 2))

    def test_int4_dtype_from_string(self):
        p = Parameter(np.zeros((8, 8)), dtype="int4")
        assert p.logical_dtype == INT4
