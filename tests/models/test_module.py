"""Tests for the minimal Module system."""

import numpy as np
import pytest

from repro.models.linear import Linear
from repro.models.module import Module
from repro.models.parameter import Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x @ self.weight.data


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.right = Leaf()
        self.bias = Parameter(np.zeros(2))

    def forward(self, x):
        return self.left(x) + self.right(x) + self.bias.data


class TestRegistration:
    def test_parameters_registered_via_setattr(self):
        leaf = Leaf()
        assert "weight" in dict(leaf.named_parameters())

    def test_nested_names_are_dotted(self):
        tree = Tree()
        names = {name for name, _ in tree.named_parameters()}
        assert names == {"bias", "left.weight", "right.weight"}

    def test_named_modules_includes_self_and_children(self):
        tree = Tree()
        names = {name for name, _ in tree.named_modules()}
        assert names == {"", "left", "right"}

    def test_num_parameters(self):
        tree = Tree()
        assert tree.num_parameters() == 2 * 4 + 2


class TestPathResolution:
    def test_get_submodule(self):
        tree = Tree()
        assert isinstance(tree.get_submodule("left"), Leaf)

    def test_get_submodule_missing_raises(self):
        with pytest.raises(KeyError):
            Tree().get_submodule("middle")

    def test_get_parameter(self):
        tree = Tree()
        param = tree.get_parameter("left.weight")
        assert param.shape == (2, 2)

    def test_get_parameter_top_level(self):
        tree = Tree()
        assert tree.get_parameter("bias").shape == (2,)

    def test_get_parameter_missing_raises(self):
        with pytest.raises(KeyError):
            Tree().get_parameter("left.missing")


class TestStateDict:
    def test_roundtrip(self):
        tree = Tree()
        state = tree.state_dict()
        state["left.weight"] = np.full((2, 2), 3.0)
        tree.load_state_dict(state)
        assert np.allclose(tree.left.weight.data, 3.0)

    def test_missing_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        del state["bias"]
        with pytest.raises(ValueError, match="missing"):
            tree.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["bias"] = np.zeros(3)
        with pytest.raises(ValueError, match="shape mismatch"):
            tree.load_state_dict(state)


class TestMemoryAccounting:
    def test_memory_includes_extra_bytes_of_children(self):
        class WithExtra(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.zeros((4, 4)), dtype="int3")

            def extra_memory_bytes(self):
                return 10.0

        class Parent(Module):
            def __init__(self):
                super().__init__()
                self.child = WithExtra()

        parent = Parent()
        expected = 4 * 4 * 3 / 8 + 10.0
        assert parent.memory_bytes() == pytest.approx(expected)

    def test_replacing_submodule_updates_memory(self):
        class Parent(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(4, 4, weight=np.zeros((4, 4)))

        parent = Parent()
        before = parent.memory_bytes()
        parent.proj = Linear(4, 4, weight=np.zeros((4, 4)), dtype="fp32")
        assert parent.memory_bytes() == pytest.approx(2 * before)
