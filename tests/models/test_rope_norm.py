"""Tests for rotary embeddings and RMSNorm layers."""

import numpy as np
import pytest

from repro.models.norm import RMSNorm
from repro.models.rope import RotaryEmbedding, apply_rotary


class TestRotaryEmbedding:
    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(7)

    def test_tables_shapes(self):
        rope = RotaryEmbedding(8, max_positions=16)
        cos, sin = rope.tables(10)
        assert cos.shape == (10, 4)
        assert sin.shape == (10, 4)

    def test_tables_extend_lazily(self):
        rope = RotaryEmbedding(8, max_positions=4)
        cos, _ = rope.tables(9)
        assert cos.shape[0] == 9
        assert rope.max_positions >= 9

    def test_rotation_preserves_norm(self):
        rope = RotaryEmbedding(16, max_positions=32)
        cos, sin = rope.tables(12)
        x = np.random.default_rng(0).normal(size=(2, 3, 12, 16))
        y = apply_rotary(x, cos, sin)
        assert np.allclose(np.linalg.norm(x, axis=-1), np.linalg.norm(y, axis=-1))

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(8)
        cos, sin = rope.tables(1)
        x = np.random.default_rng(1).normal(size=(1, 1, 1, 8))
        assert np.allclose(apply_rotary(x, cos, sin), x)

    def test_different_positions_rotate_differently(self):
        rope = RotaryEmbedding(8)
        cos, sin = rope.tables(2)
        x = np.tile(np.random.default_rng(2).normal(size=(1, 1, 1, 8)), (1, 1, 2, 1))
        y = apply_rotary(x, cos, sin)
        assert not np.allclose(y[..., 0, :], y[..., 1, :])


class TestRMSNorm:
    def test_output_rms_is_one_with_unit_weight(self):
        norm = RMSNorm(32)
        x = np.random.default_rng(3).normal(0, 5, size=(2, 4, 32))
        y = norm(x)
        assert np.allclose(np.sqrt(np.mean(y**2, axis=-1)), 1.0, atol=1e-3)

    def test_weight_parameter_registered(self):
        norm = RMSNorm(16)
        assert dict(norm.named_parameters())["weight"].shape == (16,)
