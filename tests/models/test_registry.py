"""Tests for the model registry and full-size reference metadata."""

import pytest

from repro.models import (
    FULL_MODEL_SPECS,
    MODEL_CONFIGS,
    REFERENCE_FFN_SHAPES,
    available_models,
    build_model,
    get_config,
)


class TestMiniConfigs:
    def test_expected_models_available(self):
        names = available_models()
        assert "mixtral-mini" in names
        assert "deepseek-moe-mini" in names
        assert "tiny-moe" in names

    def test_get_config_unknown_raises(self):
        with pytest.raises(KeyError):
            get_config("gpt-5")

    def test_mixtral_mini_is_coarse_grained(self):
        cfg = get_config("mixtral-mini")
        assert cfg.num_experts == 8
        assert cfg.experts_per_token == 2
        assert cfg.num_shared_experts == 0
        assert not cfg.is_fine_grained

    def test_deepseek_mini_is_fine_grained_with_shared_experts(self):
        cfg = get_config("deepseek-moe-mini")
        assert cfg.is_fine_grained
        assert cfg.num_shared_experts > 0
        assert cfg.first_layer_dense
        assert cfg.router_imbalance > get_config("mixtral-mini").router_imbalance

    def test_build_model_deterministic(self):
        a = build_model("tiny-moe")
        b = build_model("tiny-moe")
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            assert (pa.data == pb.data).all()

    def test_config_validation(self):
        from repro.models import MoEModelConfig

        with pytest.raises(ValueError):
            MoEModelConfig(name="bad", hidden_size=30, num_heads=4)
        with pytest.raises(ValueError):
            MoEModelConfig(name="bad", num_experts=4, experts_per_token=5)


class TestFullModelSpecs:
    def test_mixtral_exceeds_a100_memory(self):
        spec = FULL_MODEL_SPECS["mixtral-8x7b"]
        assert spec.fp16_gb > 80  # cannot fit a 40/80 GB A100 in FP16

    def test_appendix_c_gemm_shapes(self):
        # The exact shapes from Table 9 of the paper.
        assert REFERENCE_FFN_SHAPES["deepseek-moe"]["w1"] == (2048, 11008)
        assert REFERENCE_FFN_SHAPES["arctic-moe"]["w1"] == (7168, 4864)
        assert REFERENCE_FFN_SHAPES["mixtral-8x7b"]["w1"] == (4096, 14336)
        assert REFERENCE_FFN_SHAPES["mixtral-8x7b"]["w2"] == (14336, 4096)
        assert REFERENCE_FFN_SHAPES["falcon-180b"]["w1"] == (14848, 14848 * 5)

    def test_every_spec_has_positive_sizes(self):
        for spec in FULL_MODEL_SPECS.values():
            assert spec.params_billions > 0
            assert spec.hidden_size > 0
            assert spec.num_layers > 0

    def test_mini_configs_reference_their_full_models(self):
        assert MODEL_CONFIGS["mixtral-mini"].reference_fp16_gb == pytest.approx(90.0)
        assert MODEL_CONFIGS["deepseek-moe-mini"].reference_ffn_shapes == REFERENCE_FFN_SHAPES["deepseek-moe"]
