"""Tests (including property-based) for the numerical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.models.functional import (
    cross_entropy,
    log_softmax,
    one_hot,
    rms_norm,
    silu,
    softmax,
    top_k_indices,
)

finite_rows = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(2, 12)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSoftmax:
    @given(finite_rows)
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, x):
        p = softmax(x, axis=-1)
        assert np.allclose(p.sum(axis=-1), 1.0)
        assert np.all(p >= 0)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        x = np.array([[1e4, -1e4, 0.0]])
        p = softmax(x)
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    @given(finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_matches_log_of_softmax(self, x):
        assert np.allclose(log_softmax(x), np.log(softmax(x) + 1e-300), atol=1e-6)


class TestActivations:
    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_silu_positive_limit(self):
        x = np.array([20.0])
        assert silu(x)[0] == pytest.approx(20.0, rel=1e-6)

    @given(st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_silu_bounded_below(self, v):
        assert silu(np.array([v]))[0] >= -0.3


class TestCrossEntropy:
    def test_perfect_prediction_is_near_zero(self):
        logits = np.zeros((1, 4, 8))
        logits[..., 3] = 50.0
        targets = np.full((1, 4), 3)
        assert cross_entropy(logits, targets) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_is_log_vocab(self):
        logits = np.zeros((2, 5, 16))
        targets = np.zeros((2, 5), dtype=int)
        assert cross_entropy(logits, targets) == pytest.approx(np.log(16))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((1, 4, 8)), np.zeros((1, 3), dtype=int))


class TestRMSNorm:
    def test_unit_rms_output(self):
        x = np.random.default_rng(0).normal(0, 10, size=(3, 4, 16))
        y = rms_norm(x, np.ones(16))
        rms = np.sqrt(np.mean(y**2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_weight_scales_output(self):
        x = np.ones((1, 1, 4))
        y = rms_norm(x, 2.0 * np.ones(4))
        assert np.allclose(y, 2.0, atol=1e-5)


class TestTopK:
    def test_returns_largest_in_descending_order(self):
        scores = np.array([[0.1, 5.0, 3.0, 4.0]])
        idx = top_k_indices(scores, 2)
        assert idx.tolist() == [[1, 3]]

    def test_k_equals_dim(self):
        scores = np.array([[3.0, 1.0, 2.0]])
        idx = top_k_indices(scores, 3)
        assert idx.tolist() == [[0, 2, 1]]

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            top_k_indices(np.ones((2, 3)), 0)
        with pytest.raises(ValueError):
            top_k_indices(np.ones((2, 3)), 4)

    @given(arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(3, 10)),
                  elements=st.floats(-100, 100, allow_nan=False)),
           st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_topk_values_are_maximal(self, scores, k):
        k = min(k, scores.shape[-1])
        idx = top_k_indices(scores, k)
        selected = np.take_along_axis(scores, idx, axis=-1)
        worst_selected = selected.min(axis=-1)
        # Every non-selected score must be <= the smallest selected score.
        for row in range(scores.shape[0]):
            others = np.delete(scores[row], idx[row])
            if others.size:
                assert others.max() <= worst_selected[row] + 1e-12


class TestOneHot:
    def test_basic_encoding(self):
        out = one_hot(np.array([0, 2]), 3)
        assert out.shape == (2, 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_sums_to_one_per_row(self):
        idx = np.random.default_rng(0).integers(0, 7, size=(4, 5))
        out = one_hot(idx, 7)
        assert np.allclose(out.sum(axis=-1), 1.0)
