"""Tests for causal multi-head attention."""

import numpy as np
import pytest

from repro.models.attention import MultiHeadAttention
from repro.models.config import MoEModelConfig


def make_attention(num_heads=4, num_kv_heads=2, hidden=32):
    config = MoEModelConfig(
        name="attn-test",
        hidden_size=hidden,
        num_heads=num_heads,
        num_kv_heads=num_kv_heads,
        num_experts=2,
        experts_per_token=1,
        intermediate_size=16,
    )
    return MultiHeadAttention(config, np.random.default_rng(0)), config


class TestShapes:
    def test_output_shape_matches_input(self):
        attn, _ = make_attention()
        x = np.random.default_rng(1).normal(size=(2, 7, 32))
        assert attn(x).shape == (2, 7, 32)

    def test_rejects_non_3d_input(self):
        attn, _ = make_attention()
        with pytest.raises(ValueError):
            attn(np.zeros((7, 32)))

    def test_grouped_query_heads(self):
        attn, cfg = make_attention(num_heads=4, num_kv_heads=2)
        assert attn.k_proj.out_features == cfg.num_kv_heads * cfg.head_dim
        x = np.random.default_rng(2).normal(size=(1, 5, 32))
        assert attn(x).shape == (1, 5, 32)


class TestCausality:
    def test_future_tokens_do_not_affect_past_positions(self):
        attn, _ = make_attention()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 6, 32))
        y_full = attn(x)
        x_changed = x.copy()
        x_changed[0, 5] += rng.normal(size=32)
        y_changed = attn(x_changed)
        # Positions 0..4 must be identical: position 5 is in their future.
        assert np.allclose(y_full[0, :5], y_changed[0, :5])
        assert not np.allclose(y_full[0, 5], y_changed[0, 5])

    def test_prefix_consistency(self):
        attn, _ = make_attention()
        x = np.random.default_rng(4).normal(size=(1, 8, 32))
        y_full = attn(x)
        y_prefix = attn(x[:, :4])
        assert np.allclose(y_full[:, :4], y_prefix, atol=1e-10)


class TestWeights:
    def test_projections_are_heavy_tailed(self):
        from repro.models.init import excess_kurtosis

        attn, _ = make_attention(hidden=64)
        kurts = [excess_kurtosis(getattr(attn, p).weight.data) for p in ("q_proj", "k_proj", "v_proj", "o_proj")]
        assert all(k > 0 for k in kurts)
