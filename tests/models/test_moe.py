"""Tests for the Mixtral-style and DeepSeek-style MoE feed-forward layers."""

import numpy as np
import pytest

from repro.models.config import MoEModelConfig
from repro.models.moe import (
    DenseFeedForward,
    FineGrainedMoEFeedForward,
    MoEFeedForward,
    SwiGLUExpert,
)


def mixtral_like_config(**overrides):
    defaults = dict(
        name="moe-test",
        hidden_size=32,
        intermediate_size=24,
        num_heads=2,
        num_kv_heads=2,
        num_experts=4,
        experts_per_token=2,
    )
    defaults.update(overrides)
    return MoEModelConfig(**defaults)


class TestSwiGLUExpert:
    def test_output_shape(self):
        expert = SwiGLUExpert(32, 24, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 32))
        assert expert(x).shape == (5, 32)

    def test_zero_input_gives_zero_output(self):
        expert = SwiGLUExpert(16, 8, np.random.default_rng(0))
        assert np.allclose(expert(np.zeros((3, 16))), 0.0)


class TestMoEFeedForward:
    def test_output_shape(self):
        ffn = MoEFeedForward(mixtral_like_config(), np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 6, 32))
        assert ffn(x).shape == (2, 6, 32)

    def test_output_is_convex_combination_of_expert_outputs(self):
        """With k = num_experts = 1 the MoE layer must equal its single expert."""
        cfg = mixtral_like_config(num_experts=1, experts_per_token=1)
        ffn = MoEFeedForward(cfg, np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(1, 4, 32))
        expected = ffn.experts[0](x.reshape(-1, 32)).reshape(1, 4, 32)
        assert np.allclose(ffn(x), expected)

    def test_router_counts_accumulate(self):
        ffn = MoEFeedForward(mixtral_like_config(), np.random.default_rng(0))
        x = np.random.default_rng(3).normal(size=(2, 8, 32))
        ffn(x)
        assert ffn.router.activation_counts.sum() == 2 * 8 * 2

    def test_expert_linear_iteration(self):
        ffn = MoEFeedForward(mixtral_like_config(), np.random.default_rng(0))
        entries = list(ffn.iter_expert_linears())
        assert len(entries) == 4 * 3
        names = {name for name, _, _ in entries}
        assert "expert_0.w1" in names and "expert_3.w3" in names

    def test_no_dense_linears_for_mixtral_style(self):
        ffn = MoEFeedForward(mixtral_like_config(), np.random.default_rng(0))
        assert list(ffn.iter_dense_linears()) == []


class TestFineGrainedMoE:
    def _make(self):
        cfg = mixtral_like_config(
            num_experts=8, experts_per_token=3, num_shared_experts=2, router_imbalance=1.0
        )
        return FineGrainedMoEFeedForward(cfg, np.random.default_rng(0)), cfg

    def test_output_shape(self):
        ffn, _ = self._make()
        x = np.random.default_rng(1).normal(size=(2, 5, 32))
        assert ffn(x).shape == (2, 5, 32)

    def test_shared_experts_always_contribute(self):
        ffn, _ = self._make()
        x = np.random.default_rng(2).normal(size=(1, 4, 32))
        full = ffn(x)
        routed_only = MoEFeedForward.forward(ffn, x)
        shared = sum(e(x) for e in ffn.shared_experts)
        assert np.allclose(full, routed_only + shared)

    def test_dense_linears_are_shared_experts(self):
        ffn, _ = self._make()
        dense = list(ffn.iter_dense_linears())
        assert len(dense) == 2 * 3

    def test_expert_count(self):
        ffn, cfg = self._make()
        assert len(ffn.experts) == cfg.num_experts


class TestDenseFeedForward:
    def test_behaves_like_single_expert(self):
        ffn = DenseFeedForward(32, 48, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, 32))
        assert ffn(x).shape == (3, 32)
