"""Tests for the distribution-calibrated weight initializers."""

import numpy as np
import pytest

from repro.models.init import (
    excess_kurtosis,
    gaussian_weight,
    heavy_tailed_weight,
    light_tailed_weight,
)
from repro.models.init import intermediate_tailed_weight


class TestExcessKurtosis:
    def test_gaussian_is_near_zero(self):
        rng = np.random.default_rng(0)
        k = excess_kurtosis(rng.normal(size=(400, 400)))
        assert abs(k) < 0.1

    def test_uniform_is_negative(self):
        rng = np.random.default_rng(0)
        k = excess_kurtosis(rng.uniform(-1, 1, size=(300, 300)))
        assert k == pytest.approx(-1.2, abs=0.1)

    def test_constant_matrix_is_zero(self):
        assert excess_kurtosis(np.full((10, 10), 3.0)) == 0.0


class TestHeavyTailed:
    def test_positive_kurtosis(self):
        w = heavy_tailed_weight((256, 256), rng=np.random.default_rng(1))
        assert excess_kurtosis(w) > 0.5

    def test_heavier_than_light_tailed(self):
        rng = np.random.default_rng(2)
        heavy = heavy_tailed_weight((128, 128), rng=rng)
        light = light_tailed_weight((128, 128), rng=rng)
        assert excess_kurtosis(heavy) > excess_kurtosis(light)

    def test_outlier_scale_increases_kurtosis(self):
        low = heavy_tailed_weight((128, 128), outlier_scale=2.0, rng=np.random.default_rng(3))
        high = heavy_tailed_weight((128, 128), outlier_scale=8.0, rng=np.random.default_rng(3))
        assert excess_kurtosis(high) > excess_kurtosis(low)

    def test_channel_structure_concentrates_outliers(self):
        w = heavy_tailed_weight(
            (256, 256), channel_structured=True, rng=np.random.default_rng(4), outlier_scale=6.0
        )
        col_max = np.abs(w).max(axis=0)
        # A few "hot" input channels should hold the largest magnitudes.
        hot = np.sort(col_max)[-8:]
        cold = np.sort(col_max)[:-8]
        assert hot.mean() > 2.0 * cold.mean()


class TestLightTailed:
    def test_negative_kurtosis(self):
        w = light_tailed_weight((256, 256), rng=np.random.default_rng(5))
        assert -1.2 < excess_kurtosis(w) < -0.5

    def test_requested_std(self):
        w = light_tailed_weight((512, 512), std=0.05, rng=np.random.default_rng(6))
        assert w.std() == pytest.approx(0.05, rel=0.05)


class TestIntermediateTailed:
    def test_between_heavy_and_light(self):
        rng = np.random.default_rng(7)
        mid = excess_kurtosis(intermediate_tailed_weight((256, 256), rng=rng))
        light = excess_kurtosis(light_tailed_weight((256, 256), rng=np.random.default_rng(7)))
        heavy = excess_kurtosis(
            heavy_tailed_weight((256, 256), rng=np.random.default_rng(7))
        )
        assert light < mid < heavy


class TestGaussian:
    def test_std(self):
        w = gaussian_weight((512, 128), std=0.02, rng=np.random.default_rng(8))
        assert w.std() == pytest.approx(0.02, rel=0.05)

    def test_deterministic_with_same_rng_seed(self):
        a = gaussian_weight((16, 16), rng=np.random.default_rng(9))
        b = gaussian_weight((16, 16), rng=np.random.default_rng(9))
        assert np.array_equal(a, b)
