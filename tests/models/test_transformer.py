"""Tests for the full MoE transformer and its introspection helpers."""

import numpy as np
import pytest

from repro.models import (
    LayerKind,
    MoEModelConfig,
    MoETransformer,
    classify_parameter,
)


class TestClassifyParameter:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("layer_0.attn.q_proj.weight", LayerKind.ATTENTION),
            ("layer_2.attn.o_proj.weight", LayerKind.ATTENTION),
            ("layer_1.ffn.expert_3.w2.weight", LayerKind.EXPERT),
            ("layer_1.ffn.shared_expert_0.w1.weight", LayerKind.SHARED_EXPERT),
            ("layer_0.ffn.w1.weight", LayerKind.SHARED_EXPERT),
            ("embedding", LayerKind.OTHER),
            ("lm_head.weight", LayerKind.OTHER),
            ("layer_0.ffn.router.gate.weight", LayerKind.OTHER),
            ("layer_0.input_norm.weight", LayerKind.OTHER),
        ],
    )
    def test_classification(self, name, kind):
        assert classify_parameter(name) == kind


class TestForward:
    def test_logits_shape(self, tiny_moe):
        tokens = np.random.default_rng(0).integers(0, tiny_moe.config.vocab_size, size=(2, 9))
        logits = tiny_moe.forward(tokens)
        assert logits.shape == (2, 9, tiny_moe.config.vocab_size)

    def test_1d_input_promoted_to_batch(self, tiny_moe):
        tokens = np.arange(5)
        assert tiny_moe.forward(tokens).shape == (1, 5, tiny_moe.config.vocab_size)

    def test_out_of_vocab_raises(self, tiny_moe):
        with pytest.raises(ValueError):
            tiny_moe.forward(np.array([[0, tiny_moe.config.vocab_size]]))

    def test_deterministic(self, tiny_moe):
        tokens = np.random.default_rng(1).integers(0, 64, size=(1, 6))
        assert np.array_equal(tiny_moe.forward(tokens), tiny_moe.forward(tokens))

    def test_log_probs_normalized(self, tiny_moe):
        tokens = np.random.default_rng(2).integers(0, 64, size=(1, 4))
        lp = tiny_moe.log_probs(tokens)
        assert np.allclose(np.exp(lp).sum(axis=-1), 1.0)

    def test_causal_prefix_consistency(self, tiny_moe):
        tokens = np.random.default_rng(3).integers(0, 64, size=(1, 8))
        full = tiny_moe.forward(tokens)
        prefix = tiny_moe.forward(tokens[:, :5])
        assert np.allclose(full[:, :5], prefix, atol=1e-8)


class TestIntrospection:
    def test_quantizable_inventory_counts(self, tiny_moe):
        cfg = tiny_moe.config
        entries = list(tiny_moe.iter_quantizable())
        expected_attention = 4 * cfg.num_layers
        expected_experts = 3 * cfg.num_experts * cfg.num_layers
        assert len(entries) == expected_attention + expected_experts

    def test_quantizable_excludes_lm_head_and_gate(self, tiny_moe):
        names = [name for name, _, _ in tiny_moe.iter_quantizable()]
        assert not any("lm_head" in n or "gate" in n for n in names)

    def test_finegrained_has_shared_expert_entries(self, tiny_finegrained):
        kinds = {kind for _, kind, _ in tiny_finegrained.iter_quantizable()}
        assert LayerKind.SHARED_EXPERT in kinds

    def test_expert_counts_tracked_per_layer(self, tiny_moe):
        model = MoETransformer(tiny_moe.config)
        tokens = np.random.default_rng(4).integers(0, 64, size=(2, 10))
        model.forward(tokens)
        counts = model.expert_activation_counts()
        assert len(counts) == model.config.num_layers
        for layer_counts in counts.values():
            assert layer_counts.sum() == 2 * 10 * model.config.experts_per_token
        model.reset_expert_counts()
        assert all(c.sum() == 0 for c in model.expert_activation_counts().values())

    def test_first_layer_dense_has_no_router(self, tiny_finegrained):
        counts = {}
        model = MoETransformer(tiny_finegrained.config)
        model.forward(np.random.default_rng(5).integers(0, 64, size=(1, 8)))
        counts = model.expert_activation_counts()
        assert 0 not in counts  # first layer is a dense FFN, not an MoE layer


class TestMemory:
    def test_memory_gb_positive_and_fp16_sized(self, tiny_moe):
        expected = tiny_moe.num_parameters() * 2 / 1024**3
        assert tiny_moe.weight_memory_gb() == pytest.approx(expected)


class TestDistributionCalibration:
    def test_attention_kurtosis_exceeds_expert_kurtosis(self, mixtral_mini):
        from repro.models import excess_kurtosis

        attention, experts = [], []
        for name, kind, linear in mixtral_mini.iter_quantizable():
            k = excess_kurtosis(linear.weight.data)
            if kind == LayerKind.ATTENTION:
                attention.append(k)
            elif kind == LayerKind.EXPERT:
                experts.append(k)
        assert np.mean(attention) > 0.5
        assert np.mean(experts) < 0.0
