"""Tests for the top-k router and its load-imbalance control."""

import numpy as np
import pytest

from repro.models.router import TopKRouter


class TestRouting:
    def test_output_shapes(self):
        router = TopKRouter(16, num_experts=8, k=2, rng=np.random.default_rng(0))
        tokens = np.random.default_rng(1).normal(size=(10, 16))
        result = router(tokens)
        assert result.expert_indices.shape == (10, 2)
        assert result.expert_weights.shape == (10, 2)
        assert result.counts.shape == (8,)

    def test_weights_normalized_and_descending(self):
        router = TopKRouter(16, num_experts=8, k=3, rng=np.random.default_rng(0))
        result = router(np.random.default_rng(1).normal(size=(20, 16)))
        assert np.allclose(result.expert_weights.sum(axis=1), 1.0)
        assert np.all(np.diff(result.expert_weights, axis=1) <= 1e-12)

    def test_counts_equal_tokens_times_k(self):
        router = TopKRouter(16, num_experts=8, k=2, rng=np.random.default_rng(0))
        result = router(np.random.default_rng(1).normal(size=(25, 16)))
        assert result.counts.sum() == 25 * 2

    def test_indices_are_distinct_per_token(self):
        router = TopKRouter(16, num_experts=4, k=3, rng=np.random.default_rng(0))
        result = router(np.random.default_rng(2).normal(size=(30, 16)))
        for row in result.expert_indices:
            assert len(set(row.tolist())) == 3

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            TopKRouter(16, num_experts=4, k=5)
        with pytest.raises(ValueError):
            TopKRouter(16, num_experts=4, k=0)

    def test_requires_flat_tokens(self):
        router = TopKRouter(16, num_experts=4, k=2)
        with pytest.raises(ValueError):
            router(np.zeros((2, 3, 16)))


class TestImbalance:
    def _cv(self, imbalance, num_experts=16, k=4):
        router = TopKRouter(
            32, num_experts=num_experts, k=k, imbalance=imbalance, rng=np.random.default_rng(3)
        )
        router(np.random.default_rng(4).normal(size=(512, 32)))
        counts = router.activation_counts.astype(float)
        return counts.std() / counts.mean()

    def test_bias_increases_imbalance(self):
        assert self._cv(2.0) > self._cv(0.0)

    def test_cumulative_counts_and_reset(self):
        router = TopKRouter(16, num_experts=4, k=2, rng=np.random.default_rng(0))
        tokens = np.random.default_rng(5).normal(size=(10, 16))
        router(tokens)
        router(tokens)
        assert router.activation_counts.sum() == 40
        router.reset_counts()
        assert router.activation_counts.sum() == 0
