"""Tests for the command-line interface.

Covers argument parsing (defaults and overrides for every subcommand) and
golden output schemas: the JSON summaries printed by ``quantize`` and
``serve`` and the table headers printed by ``evaluate`` and ``kernel``.
"""

import json

import pytest

from repro.cli import SERVE_BACKENDS, SERVE_KV_POLICIES, build_parser, main
from repro.serving import ALLOCATION_POLICIES


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize"])
        assert args.model == "mixtral-mini"
        assert args.method == "milo"
        assert args.bits == 3
        assert args.group_size == 64
        assert args.compensator_bits == 3
        assert args.seed == 0

    def test_strategy_flag(self):
        args = build_parser().parse_args(["quantize", "--strategy", "mixtral-s1"])
        assert args.strategy == "mixtral-s1"

    def test_quantize_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "--method", "awq"])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.eval_sequences == 16
        assert args.eval_seq_len == 32
        assert args.task_items == 96

    def test_kernel_defaults(self):
        args = build_parser().parse_args(["kernel"])
        assert args.gemm_model == "mixtral-8x7b"
        assert args.batch_sizes == [1, 16, 32]
        assert args.asymmetric is False

    def test_kernel_batch_sizes_override(self):
        args = build_parser().parse_args(["kernel", "--batch-sizes", "1", "8", "64"])
        assert args.batch_sizes == [1, 8, 64]


class TestServeParser:
    def test_serve_defaults_match_acceptance_workload(self):
        args = build_parser().parse_args(["serve"])
        assert args.backend == "milo"
        assert args.model == "mixtral-8x7b"
        assert args.device == "a100-40gb"
        assert args.qps == 8.0
        assert args.requests == 200
        assert args.seed == 0
        assert args.block_size == 16
        assert args.max_batch == 64
        assert args.admission == "queue"
        assert args.kv_policy == "reserve"
        assert args.prefill_chunk is None
        assert args.replay is None
        assert args.trace is None
        assert args.per_request is False

    @pytest.mark.parametrize("policy", sorted(ALLOCATION_POLICIES))
    def test_kv_policy_choices_parse(self, policy):
        args = build_parser().parse_args(["serve", "--kv-policy", policy])
        assert args.kv_policy == policy

    def test_kv_policy_choices_derive_from_registry(self):
        """No hardcoded duplicate of the policy registry to drift out of sync."""
        assert set(SERVE_KV_POLICIES) == set(ALLOCATION_POLICIES)

    def test_kv_policy_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--kv-policy", "paging"])

    def test_shared_prefix_flags_parse(self):
        args = build_parser().parse_args(["serve"])
        assert args.shared_prefix_tokens == 0 and args.prefix_groups == 1
        args = build_parser().parse_args(
            ["serve", "--shared-prefix-tokens", "256", "--prefix-groups", "4"]
        )
        assert args.shared_prefix_tokens == 256 and args.prefix_groups == 4

    def test_prefill_chunk_parses(self):
        args = build_parser().parse_args(["serve", "--prefill-chunk", "32"])
        assert args.prefill_chunk == 32

    @pytest.mark.parametrize("backend", SERVE_BACKENDS)
    def test_all_serve_backends_parse(self, backend):
        args = build_parser().parse_args(["serve", "--backend", backend])
        assert args.backend == backend

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "tensorrt"])

    def test_serve_rejects_mini_model_names(self):
        # serve simulates full-size checkpoints, not the instantiable minis.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--model", "tiny-moe"])

    def test_serve_rejects_bad_admission(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--admission", "drop"])


class TestCommands:
    def test_quantize_outputs_json_summary(self, capsys):
        code = main(["quantize", "--model", "tiny-moe", "--method", "rtn", "--bits", "3"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["method"] == "rtn"
        assert summary["memory_mb"] < summary["fp16_memory_mb"]

    def test_quantize_json_schema(self, capsys):
        code = main(["quantize", "--model", "tiny-moe", "--method", "rtn"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) == {
            "model", "method", "bits", "group_size", "memory_mb",
            "fp16_memory_mb", "compression_ratio", "quant_time_s", "average_rank",
        }

    def test_quantize_milo_with_ranks(self, capsys):
        code = main([
            "quantize", "--model", "tiny-moe", "--method", "milo",
            "--dense-rank", "4", "--kurtosis-rank", "1",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["average_rank"] > 0

    def test_evaluate_prints_table(self, capsys):
        code = main([
            "evaluate", "--model", "tiny-moe", "--method", "rtn", "--bits", "4",
            "--eval-sequences", "4", "--eval-seq-len", "12", "--task-items", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wikitext2_ppl" in out
        assert "fp16" in out

    def test_kernel_command(self, capsys):
        code = main(["kernel", "--gemm-model", "mixtral-8x7b", "--batch-sizes", "1", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MARLIN Kernel" in out and "tflops" in out

    def test_kernel_unknown_model(self, capsys):
        assert main(["kernel", "--gemm-model", "nope"]) == 2


class TestServeCommand:
    SUMMARY_KEYS = {
        "backend", "model", "device", "policy", "num_requests", "completed",
        "rejected", "iterations", "preemptions", "recomputed_tokens",
        "sim_time_s", "sustained_qps", "ttft_s", "tpot_s", "e2e_s", "batch",
        "kv_cache", "kv_utilization_peak", "prefix_cache",
    }

    def serve(self, capsys, *extra):
        code = main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--qps", "20", "--requests", "12", "--seed", "0", *extra,
        ])
        out = capsys.readouterr().out
        return code, out

    def test_serve_json_report_schema(self, capsys):
        code, out = self.serve(capsys)
        assert code == 0
        report = json.loads(out)
        assert set(report) == self.SUMMARY_KEYS
        for block in ("ttft_s", "tpot_s", "e2e_s"):
            assert set(report[block]) == {"p50", "p95", "mean", "max"}
        assert report["completed"] == 12
        assert report["sustained_qps"] > 0

    def test_serve_is_deterministic_for_fixed_seed(self, capsys):
        _, first = self.serve(capsys)
        _, second = self.serve(capsys)
        assert first == second  # byte-identical JSON

    def test_serve_per_request_records(self, capsys):
        code, out = self.serve(capsys, "--per-request")
        assert code == 0
        report = json.loads(out)
        assert set(report) == self.SUMMARY_KEYS | {"requests", "completion_order"}
        assert len(report["requests"]) == 12
        assert set(report["requests"][0]) == {
            "request_id", "state", "arrival_s", "prompt_tokens",
            "new_tokens", "ttft_s", "tpot_s", "e2e_s",
        }

    def test_serve_fp16_mixtral_reports_oom(self, capsys):
        code = main(["serve", "--backend", "fp16", "--model", "mixtral-8x7b",
                     "--requests", "5"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["error"] == "out-of-memory"
        assert report["required_gb"] > report["available_gb"] == 40.0

    def test_serve_replay_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([[0.0, 16, 4], [0.01, 8, 2]]))
        code = main(["serve", "--replay", str(trace), "--per-request"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["num_requests"] == 2
        assert report["completion_order"] == [1, 0]

    def test_serve_reports_active_policies(self, capsys):
        code, out = self.serve(capsys, "--kv-policy", "ondemand")
        assert code == 0
        report = json.loads(out)
        assert report["policy"] == {"kv": "ondemand", "scheduler": "priority-fifo"}
        assert report["completed"] == 12

    def test_serve_ondemand_is_deterministic(self, capsys):
        _, first = self.serve(capsys, "--kv-policy", "ondemand", "--prefill-chunk", "32")
        _, second = self.serve(capsys, "--kv-policy", "ondemand", "--prefill-chunk", "32")
        assert first == second  # byte-identical JSON

    def test_serve_multi_device_reports_cluster_section(self, capsys):
        code, out = self.serve(capsys, "--devices", "4", "--placement", "frequency")
        assert code == 0
        report = json.loads(out)
        assert set(report) == self.SUMMARY_KEYS | {"cluster"}
        cluster = report["cluster"]
        assert cluster["devices"] == 4 and cluster["placement"] == "frequency"
        assert cluster["straggler_ratio"] >= 1.0 and cluster["alltoall_tokens"] > 0
        assert [set(d) for d in cluster["per_device"]] == [
            {"device", "experts", "expert_load_share", "kv_blocks",
             "kv_peak_used_blocks", "kv_utilization_peak"}
        ] * 4
        assert report["completed"] == 12

    def test_serve_multi_device_is_deterministic(self, capsys):
        _, first = self.serve(capsys, "--devices", "2", "--kv-policy", "ondemand")
        _, second = self.serve(capsys, "--devices", "2", "--kv-policy", "ondemand")
        assert first == second  # byte-identical JSON

    def test_serve_single_device_report_is_unchanged_by_the_devices_flag(self, capsys):
        _, implicit = self.serve(capsys)
        _, explicit = self.serve(capsys, "--devices", "1")
        assert implicit == explicit
        assert "cluster" not in json.loads(explicit)

    def test_serve_unknown_placement_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--placement", "random"])

    def test_serve_invalid_devices_exits_cleanly(self, capsys):
        assert main(["serve", "--devices", "0"]) == 2
        assert "invalid serving config" in capsys.readouterr().err

    def test_serve_multi_device_oom_names_the_device(self, capsys):
        # Two 40 GB devices still cannot host FP16 Mixtral (~3.2 GB replicated
        # + ~43.5 GB of experts per device); the typed report names the
        # first overloaded device.
        code = main(["serve", "--backend", "fp16", "--model", "mixtral-8x7b",
                     "--devices", "2", "--requests", "5"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["error"] == "out-of-memory"
        assert report["device"] == "gpu0"
        assert report["required_gb"] > report["available_gb"] == 40.0

    def test_serve_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"arrival": 0.0, "prompt": 16, "max_new_tokens": 4}\n'
            '{"arrival": 0.01, "prompt": 8, "max_new_tokens": 2, "priority": 1}\n'
        )
        code = main(["serve", "--trace", str(trace), "--per-request"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["num_requests"] == 2
        assert report["completion_order"] == [1, 0]

    @pytest.mark.parametrize(
        "payload",
        [
            "not json\n",
            '{"arrival": 0.0, "prompt": 16}\n',                              # missing field
            '{"arrival": 0.0, "prompt": 16, "max_new_tokens": "four"}\n',    # wrong type
            '{"arrival": 0.0, "prompt": 16, "max_new_tokens": 4, "qos": 1}\n',  # unknown field
            "",                                                              # empty trace
        ],
    )
    def test_serve_malformed_trace_exits_cleanly(self, capsys, tmp_path, payload):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(payload)
        assert main(["serve", "--trace", str(trace)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_serve_missing_trace_file_exits_cleanly(self, capsys, tmp_path):
        assert main(["serve", "--trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_serve_replay_and_trace_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--replay", "a.json", "--trace", "b.jsonl"]
            )

    def test_serve_invalid_prefill_chunk_exits_cleanly(self, capsys):
        assert main(["serve", "--prefill-chunk", "0"]) == 2
        assert "invalid serving config" in capsys.readouterr().err

    def test_serve_output_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code, out = self.serve(capsys, "--output", str(out_file))
        assert code == 0
        assert json.loads(out_file.read_text()) == json.loads(out)

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--qps", "0"],
            ["serve", "--requests", "0"],
            ["serve", "--prompt-tokens", "0"],
            ["serve", "--length-jitter", "-1"],
        ],
    )
    def test_serve_invalid_workload_exits_cleanly(self, capsys, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert "invalid workload" in captured.err

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--max-batch", "0"],
            ["serve", "--block-size", "0"],
            ["serve", "--reserve-gb", "-1"],
        ],
    )
    def test_serve_invalid_config_exits_cleanly(self, capsys, argv):
        assert main(argv) == 2
        assert "invalid serving config" in capsys.readouterr().err

    @pytest.mark.parametrize("payload", ["not json", "[[0, 10, null]]", "42"])
    def test_serve_malformed_replay_exits_cleanly(self, capsys, tmp_path, payload):
        trace = tmp_path / "trace.json"
        trace.write_text(payload)
        assert main(["serve", "--replay", str(trace)]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_serve_shared_prefix_workload_reports_hits(self, capsys):
        code, out = self.serve(
            capsys, "--kv-policy", "ondemand",
            "--shared-prefix-tokens", "128", "--prefix-groups", "2",
        )
        assert code == 0
        report = json.loads(out)
        assert report["completed"] == 12
        cache = report["prefix_cache"]
        assert cache["hit_tokens"] > 0 and cache["hit_blocks"] > 0
        assert cache["dedup_ratio"] > 1.0

    def test_serve_shared_prefix_is_deterministic(self, capsys):
        flags = ("--kv-policy", "ondemand", "--shared-prefix-tokens", "64",
                 "--prefix-groups", "3")
        _, first = self.serve(capsys, *flags)
        _, second = self.serve(capsys, *flags)
        assert first == second  # byte-identical JSON

    def test_serve_trace_with_prefix_fields(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"arrival": 0.0, "prompt": 64, "max_new_tokens": 4, "prefix_id": 0, "prefix_tokens": 48}\n'
            '{"arrival": 0.0, "prompt": 64, "max_new_tokens": 4, "prefix_id": 0, "prefix_tokens": 48}\n'
        )
        code = main(["serve", "--trace", str(trace), "--kv-policy", "ondemand"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 2
        assert report["prefix_cache"]["hit_tokens"] > 0

    def test_serve_all_rejected_report_is_valid_json(self, capsys):
        """Zero completions must serialize as null, not the invalid-JSON NaN."""
        code = main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--requests", "3", "--prompt-tokens", "2000000",
            "--length-jitter", "0",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)  # strict parser
        assert report["completed"] == 0 and report["rejected"] == 3
        assert report["ttft_s"]["p50"] is None
        assert report["sustained_qps"] == 0.0


class TestServeTelemetryFlags:
    def serve(self, capsys, *extra):
        code = main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--qps", "20", "--requests", "12", "--seed", "0", *extra,
        ])
        out = capsys.readouterr().out
        return code, out

    def test_trace_events_chrome_export(self, capsys, tmp_path):
        from repro.serving.telemetry import validate_chrome_trace

        trace = tmp_path / "run.trace.json"
        code, out = self.serve(
            capsys, "--devices", "4", "--overlap", "--trace-events", str(trace)
        )
        assert code == 0
        payload = json.loads(trace.read_text())
        validate_chrome_trace(payload)  # must not raise
        assert payload["otherData"]["sim_devices"] == 4
        # the report on stdout is unaffected by tracing.
        assert json.loads(out)["completed"] == 12

    def test_trace_events_jsonl_export(self, capsys, tmp_path):
        from repro.serving.telemetry import load_trace_file

        trace = tmp_path / "run.jsonl"
        code, _ = self.serve(capsys, "--trace-events", str(trace))
        assert code == 0
        events, samples, meta = load_trace_file(str(trace))
        assert sum(1 for e in events if e["kind"] == "finish") == 12
        assert samples == [] and meta["model"] == "mixtral-8x7b"

    def test_metrics_out(self, capsys, tmp_path):
        from repro.serving.telemetry import load_metrics_file

        metrics = tmp_path / "run.metrics.jsonl"
        code, _ = self.serve(
            capsys, "--metrics-out", str(metrics), "--metrics-interval", "0.25"
        )
        assert code == 0
        rows = load_metrics_file(str(metrics))
        assert rows and all(row["kv_utilization"] <= 1.0 for row in rows)

    def test_invalid_metrics_interval_exits_cleanly(self, capsys, tmp_path):
        code = main([
            "serve", "--metrics-out", str(tmp_path / "m.jsonl"),
            "--metrics-interval", "0",
        ])
        assert code == 2
        assert "invalid serving config" in capsys.readouterr().err

    def test_telemetry_flags_leave_report_byte_identical(self, capsys, tmp_path):
        _, plain = self.serve(capsys)
        _, traced = self.serve(
            capsys,
            "--trace-events", str(tmp_path / "t.jsonl"),
            "--metrics-out", str(tmp_path / "m.jsonl"),
        )
        assert plain == traced

    def test_report_out_alias(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code, out = self.serve(capsys, "--report-out", str(out_file))
        assert code == 0
        assert json.loads(out_file.read_text()) == json.loads(out)


class TestAnalyzeCommand:
    def test_analyze_reconciles_with_serve_report(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.jsonl"
        code = main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--qps", "20", "--requests", "12", "--seed", "0",
            "--devices", "4", "--overlap",
            "--trace-events", str(trace), "--metrics-out", str(metrics),
        ])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        code = main(["analyze", str(trace), "--metrics", str(metrics)])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ttft_s"] == report["ttft_s"]
        assert summary["e2e_s"] == report["e2e_s"]
        assert summary["sim_time_s"] == report["sim_time_s"]
        assert summary["requests"]["finished"] == report["completed"]
        assert len(summary["devices"]) == 4
        assert "pressure" in summary["kv"]

    def test_analyze_jsonl_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code = main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--qps", "20", "--requests", "12", "--seed", "0",
            "--trace-events", str(trace),
        ])
        capsys.readouterr()
        assert code == 0
        assert main(["analyze", str(trace)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["requests"]["submitted"] == 12

    def test_analyze_missing_file_exits_cleanly(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_analyze_malformed_trace_exits_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["analyze", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_analyze_malformed_metrics_exits_cleanly(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        main([
            "serve", "--backend", "milo", "--model", "mixtral-8x7b",
            "--qps", "20", "--requests", "4", "--seed", "0",
            "--trace-events", str(trace),
        ])
        capsys.readouterr()
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"no": "schema"}\n')
        assert main(["analyze", str(trace), "--metrics", str(bad)]) == 2
        assert "invalid metrics file" in capsys.readouterr().err
