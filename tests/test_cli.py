"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize"])
        assert args.model == "mixtral-mini"
        assert args.method == "milo"
        assert args.bits == 3

    def test_strategy_flag(self):
        args = build_parser().parse_args(["quantize", "--strategy", "mixtral-s1"])
        assert args.strategy == "mixtral-s1"


class TestCommands:
    def test_quantize_outputs_json_summary(self, capsys):
        code = main(["quantize", "--model", "tiny-moe", "--method", "rtn", "--bits", "3"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["method"] == "rtn"
        assert summary["memory_mb"] < summary["fp16_memory_mb"]

    def test_quantize_milo_with_ranks(self, capsys):
        code = main([
            "quantize", "--model", "tiny-moe", "--method", "milo",
            "--dense-rank", "4", "--kurtosis-rank", "1",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["average_rank"] > 0

    def test_evaluate_prints_table(self, capsys):
        code = main([
            "evaluate", "--model", "tiny-moe", "--method", "rtn", "--bits", "4",
            "--eval-sequences", "4", "--eval-seq-len", "12", "--task-items", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wikitext2_ppl" in out
        assert "fp16" in out

    def test_kernel_command(self, capsys):
        code = main(["kernel", "--gemm-model", "mixtral-8x7b", "--batch-sizes", "1", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MARLIN Kernel" in out and "tflops" in out

    def test_kernel_unknown_model(self, capsys):
        assert main(["kernel", "--gemm-model", "nope"]) == 2
