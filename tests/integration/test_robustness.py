"""Robustness / failure-injection tests for the compression pipeline."""

import numpy as np
import pytest

from repro.core import (
    DenseRank,
    MiLoConfig,
    MiLoMatrixOptimizer,
    ModelCompressor,
    UniformRank,
)
from repro.models import MoEModelConfig, MoETransformer, build_model
from repro.quant import GPTQQuantizer, HQQConfig, HQQQuantizer, RTNQuantizer


class TestAwkwardShapes:
    def test_group_size_larger_than_matrix(self):
        """A group size exceeding in_features must still round-trip correctly."""
        weight = np.random.default_rng(0).normal(size=(8, 10))
        for quantizer in (RTNQuantizer(3, 64), HQQQuantizer(HQQConfig(bits=3, group_size=64))):
            dq = quantizer.quantize(weight).dequantize()
            assert dq.shape == weight.shape
            assert np.isfinite(dq).all()

    def test_milo_rank_exceeding_dimensions_is_clipped(self):
        weight = np.random.default_rng(1).normal(size=(12, 20))
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=3)).optimize(weight, rank=500)
        assert result.compensator.rank <= 12
        assert np.isfinite(result.reconstructed()).all()

    def test_single_column_weight(self):
        weight = np.random.default_rng(2).normal(size=(16, 1))
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=2)).optimize(weight, rank=1)
        assert result.reconstructed().shape == (16, 1)

    def test_constant_weight_matrix(self):
        weight = np.full((8, 64), 0.25)
        result = MiLoMatrixOptimizer(MiLoConfig(bits=3, max_iterations=2)).optimize(weight, rank=2)
        assert np.allclose(result.reconstructed(), 0.25, atol=1e-6)


class TestDegenerateCalibration:
    def test_gptq_with_single_calibration_row(self):
        weight = np.random.default_rng(3).normal(size=(8, 32))
        calib = np.random.default_rng(4).normal(size=(1, 32))
        dq = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calib).dequantize()
        assert np.isfinite(dq).all()

    def test_gptq_with_zero_activation_channels(self):
        weight = np.random.default_rng(5).normal(size=(8, 32))
        calib = np.zeros((16, 32))
        calib[:, :4] = np.random.default_rng(6).normal(size=(16, 4))
        dq = GPTQQuantizer(3, 32).quantize(weight, calibration_inputs=calib).dequantize()
        assert np.isfinite(dq).all()

    def test_compressor_with_tiny_calibration_batch(self):
        model = build_model("tiny-moe")
        calib = np.random.default_rng(7).integers(0, 64, size=(1, 4))
        model, report = ModelCompressor(
            method="gptq", bits=3, calibration_tokens=calib
        ).compress(model)
        assert report.memory_bytes < report.fp16_memory_bytes
        assert np.isfinite(model.forward(calib)).all()


class TestCorruptionDetection:
    def test_zeroing_a_compensator_degrades_output_fidelity(self):
        """Failure injection: wiping a compensator must visibly hurt fidelity."""
        teacher = build_model("tiny-moe")
        tokens = np.random.default_rng(8).integers(0, 64, size=(2, 12))
        reference = teacher.forward(tokens)

        model = build_model("tiny-moe")
        model, _ = ModelCompressor(method="milo", bits=3, rank_policy=DenseRank(8)).compress(model)
        healthy_err = np.linalg.norm(model.forward(tokens) - reference)

        from repro.models import CompensatedLinear

        for module in model.modules():
            if isinstance(module, CompensatedLinear) and module.rank > 0:
                module.U.data[...] = 0.0
                module.V.data[...] = 0.0
        corrupted_err = np.linalg.norm(model.forward(tokens) - reference)
        assert corrupted_err > healthy_err

    def test_double_compression_is_rejected_gracefully(self):
        """Compressing an already-compressed model finds no plain Linear layers."""
        model = build_model("tiny-moe")
        model, first = ModelCompressor(method="rtn", bits=3).compress(model)
        model, second = ModelCompressor(method="rtn", bits=3).compress(model)
        # Nothing left to quantize: no layer stats, memory unchanged.
        assert second.layer_stats == {}
        assert second.memory_bytes == pytest.approx(first.memory_bytes)


class TestUnusualConfigs:
    def test_single_expert_model_end_to_end(self):
        config = MoEModelConfig(
            name="one-expert",
            vocab_size=32,
            hidden_size=16,
            intermediate_size=24,
            num_layers=1,
            num_heads=2,
            num_kv_heads=2,
            num_experts=1,
            experts_per_token=1,
            seed=3,
        )
        model = MoETransformer(config)
        model, report = ModelCompressor(method="milo", bits=3, rank_policy=UniformRank(2)).compress(model)
        tokens = np.random.default_rng(9).integers(0, 32, size=(1, 6))
        assert np.isfinite(model.forward(tokens)).all()
        assert report.memory_bytes < report.fp16_memory_bytes

    def test_two_bit_quantization_supported_and_worse_than_three(self):
        teacher = build_model("tiny-moe")
        tokens = np.random.default_rng(10).integers(0, 64, size=(2, 8))
        reference = teacher.forward(tokens)
        errors = {}
        for bits in (2, 3):
            model = build_model("tiny-moe")
            model, _ = ModelCompressor(method="rtn", bits=bits).compress(model)
            errors[bits] = np.linalg.norm(model.forward(tokens) - reference)
        assert errors[3] < errors[2]
