"""Integration tests: the full quantize -> deploy -> evaluate pipeline.

These tests exercise the same paths as the benchmark harness but on the tiny
models, asserting the *orderings* the paper reports rather than absolute
numbers.
"""

import numpy as np
import pytest

from repro.core import ModelCompressor, build_strategy
from repro.data import zipfian_corpus
from repro.eval import EvaluationEnvironment, EvaluationHarness
from repro.models import build_model


@pytest.fixture(scope="module")
def mixtral_env():
    teacher = build_model("mixtral-mini")
    env = EvaluationEnvironment.from_teacher(
        teacher, num_sequences=16, seq_len=24, num_task_items=96, seed=0
    )
    return teacher, EvaluationHarness(env)


def compress(model_name, method, bits, strategy=None, calibration=None):
    model = build_model(model_name)
    policy = build_strategy(strategy, model.config) if strategy else None
    compressor = ModelCompressor(
        method=method, bits=bits, rank_policy=policy, calibration_tokens=calibration
    )
    return compressor.compress(model)


class TestTable1Shape:
    """Existing methods (RTN / GPTQ) at INT4 vs INT3 — paper Table 1."""

    def test_int3_hurts_much_more_than_int4(self, mixtral_env):
        teacher, harness = mixtral_env
        fp16_ppl = harness.evaluate(teacher, "fp16", tasks=[]).wikitext2_ppl
        calib = zipfian_corpus(teacher.config.vocab_size, 16, 24, seed=9).tokens
        ppl = {}
        for bits in (3, 4):
            model, _ = compress("mixtral-mini", "rtn", bits)
            ppl[bits] = harness.evaluate(model, f"rtn{bits}", tasks=[]).wikitext2_ppl
        assert fp16_ppl < ppl[4] < ppl[3]
        # INT4 is a minor loss; INT3 is a major one.
        assert (ppl[4] - fp16_ppl) < 0.5 * (ppl[3] - fp16_ppl)


class TestTable3Shape:
    """Main results ordering — paper Table 3."""

    def test_milo_beats_calibration_free_baselines(self, mixtral_env):
        teacher, harness = mixtral_env
        results = {}
        for label, method, strategy in [
            ("rtn", "rtn", None),
            ("hqq", "hqq", None),
            ("milo-s1", "milo", "mixtral-s1"),
            ("milo-s2", "milo", "mixtral-s2"),
        ]:
            model, report = compress("mixtral-mini", method, 3, strategy)
            row = harness.evaluate(model, label, include_few_shot=False)
            results[label] = (row, report)

        milo_s1, milo_s2 = results["milo-s1"][0], results["milo-s2"][0]
        rtn, hqq = results["rtn"][0], results["hqq"][0]

        # Perplexity: MiLo recovers most of the INT3 loss.
        assert milo_s1.wikitext2_ppl < rtn.wikitext2_ppl
        assert milo_s1.wikitext2_ppl < hqq.wikitext2_ppl
        assert milo_s2.wikitext2_ppl <= milo_s1.wikitext2_ppl * 1.05

        # Zero-shot accuracy: MiLo wins as well.
        assert milo_s1.zero_shot_average > rtn.zero_shot_average
        assert milo_s1.zero_shot_average > hqq.zero_shot_average

        # Memory: compensators add only a small overhead over plain INT3.
        assert results["milo-s1"][1].memory_bytes < 1.1 * results["hqq"][1].memory_bytes
        assert results["milo-s2"][1].memory_bytes >= results["milo-s1"][1].memory_bytes

    def test_milo_recovers_majority_of_int3_quality_loss(self, mixtral_env):
        """The paper reports recovering >87% of the Wikitext-2 perplexity loss."""
        teacher, harness = mixtral_env
        fp16_ppl = harness.evaluate(teacher, "fp16", tasks=[]).wikitext2_ppl
        hqq_model, _ = compress("mixtral-mini", "hqq", 3)
        hqq_ppl = harness.evaluate(hqq_model, "hqq", tasks=[]).wikitext2_ppl
        milo_model, _ = compress("mixtral-mini", "milo", 3, "mixtral-s2")
        milo_ppl = harness.evaluate(milo_model, "milo", tasks=[]).wikitext2_ppl
        recovered = (hqq_ppl - milo_ppl) / (hqq_ppl - fp16_ppl)
        assert recovered > 0.5


class TestCalibrationFreeAdvantage:
    def test_gptq_depends_on_calibration_data_milo_does_not(self, mixtral_env):
        """Different calibration sets change GPTQ's output; MiLo is calibration-free."""
        teacher, harness = mixtral_env
        vocab = teacher.config.vocab_size
        calib_a = zipfian_corpus(vocab, 16, 24, seed=1).tokens
        calib_b = zipfian_corpus(vocab, 16, 24, seed=2).tokens

        gptq_a, _ = compress("mixtral-mini", "gptq", 3, calibration=calib_a)
        gptq_b, _ = compress("mixtral-mini", "gptq", 3, calibration=calib_b)
        weight_a = gptq_a.get_submodule("layer_0.attn.q_proj").weight.data
        weight_b = gptq_b.get_submodule("layer_0.attn.q_proj").weight.data
        assert not np.allclose(weight_a, weight_b)

        milo_a, _ = compress("mixtral-mini", "milo", 3, "mixtral-s1")
        milo_b, _ = compress("mixtral-mini", "milo", 3, "mixtral-s1")
        assert np.allclose(
            milo_a.get_submodule("layer_0.attn.q_proj").weight.data,
            milo_b.get_submodule("layer_0.attn.q_proj").weight.data,
        )


class TestDeepSeekPipeline:
    def test_frequency_strategy_runs_end_to_end(self):
        teacher = build_model("deepseek-moe-mini")
        env = EvaluationEnvironment.from_teacher(
            teacher, num_sequences=8, seq_len=20, num_task_items=48, seed=1
        )
        harness = EvaluationHarness(env)
        hqq_model, _ = compress("deepseek-moe-mini", "hqq", 3)
        milo_model, report = compress("deepseek-moe-mini", "milo", 3, "deepseek-s2")
        assert "frequency-profiling" in report.stage_times
        hqq_row = harness.evaluate(hqq_model, "hqq", include_few_shot=False)
        milo_row = harness.evaluate(milo_model, "milo-s2", include_few_shot=False)
        assert milo_row.wikitext2_ppl < hqq_row.wikitext2_ppl
        assert milo_row.zero_shot_average > hqq_row.zero_shot_average
