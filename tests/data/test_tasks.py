"""Tests for the synthetic task suites."""

import numpy as np
import pytest

from repro.data import TASK_SPECS, build_default_suite, build_task
from repro.data.tasks import FEW_SHOT_TASKS, ZERO_SHOT_TASKS
from repro.eval import evaluate_task


class TestTaskSpecs:
    def test_all_six_benchmarks_represented(self):
        # Five task suites + WikiText-2 perplexity cover the paper's six benchmarks.
        assert set(TASK_SPECS) == {
            "piqa-syn", "hellaswag-syn", "lambada-syn", "mmlu-syn", "triqa-syn",
        }

    def test_zero_and_few_shot_partition(self):
        assert set(ZERO_SHOT_TASKS) | set(FEW_SHOT_TASKS) == set(TASK_SPECS)
        assert not set(ZERO_SHOT_TASKS) & set(FEW_SHOT_TASKS)

    def test_few_shot_tasks_have_longer_contexts(self):
        zero_len = max(TASK_SPECS[t].prefix_len for t in ZERO_SHOT_TASKS)
        few_len = min(TASK_SPECS[t].prefix_len for t in FEW_SHOT_TASKS)
        assert few_len > zero_len

    def test_choice_counts_match_real_benchmarks(self):
        assert TASK_SPECS["piqa-syn"].num_candidates == 2
        assert TASK_SPECS["hellaswag-syn"].num_candidates == 4
        assert TASK_SPECS["mmlu-syn"].num_candidates == 4


class TestBuildTask:
    def test_multiple_choice_structure(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["hellaswag-syn"], num_items=16, seed=0)
        assert len(task.items) == 16
        for item in task.items:
            assert len(item.candidates) == 4
            assert 0 <= item.gold < 4
            assert len(set(item.candidates)) == len(item.candidates)

    def test_cloze_structure(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["lambada-syn"], num_items=8, seed=0)
        for item in task.items:
            assert item.candidates is None
            assert 0 <= item.gold < tiny_moe.config.vocab_size

    def test_teacher_scores_perfectly_on_its_own_tasks(self, tiny_moe):
        for name in ("piqa-syn", "lambada-syn"):
            task = build_task(tiny_moe, TASK_SPECS[name], num_items=24, seed=1)
            assert evaluate_task(tiny_moe, task) == 100.0

    def test_deterministic_given_seed(self, tiny_moe):
        a = build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=8, seed=2)
        b = build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=8, seed=2)
        assert all(
            np.array_equal(x.prefix, y.prefix) and x.candidates == y.candidates and x.gold == y.gold
            for x, y in zip(a.items, b.items)
        )

    def test_invalid_item_count(self, tiny_moe):
        with pytest.raises(ValueError):
            build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=0)

    def test_prefixes_batch_shape(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["mmlu-syn"], num_items=12, seed=3)
        assert task.prefixes().shape == (12, TASK_SPECS["mmlu-syn"].prefix_len)


class TestDefaultSuite:
    def test_contains_all_tasks(self, tiny_moe):
        suite = build_default_suite(tiny_moe, num_items=8, seed=0)
        assert set(suite.names()) == set(TASK_SPECS)
        assert len(list(iter(suite))) == len(TASK_SPECS)
