"""Tests for the synthetic corpora."""

import numpy as np
import pytest

from repro.data import TokenCorpus, generate_from_model, teacher_corpus, zipfian_corpus
from repro.eval import perplexity


class TestTokenCorpus:
    def test_batches_cover_all_sequences(self):
        corpus = TokenCorpus("x", np.arange(40).reshape(10, 4) % 7, "zipfian")
        batches = corpus.batches(3)
        assert sum(b.shape[0] for b in batches) == 10
        assert corpus.num_tokens == 40

    def test_invalid_batch_size(self):
        corpus = TokenCorpus("x", np.zeros((2, 4), dtype=int), "zipfian")
        with pytest.raises(ValueError):
            corpus.batches(0)


class TestGeneration:
    def test_shapes_and_vocabulary_range(self, tiny_moe):
        tokens = generate_from_model(tiny_moe, num_sequences=4, seq_len=10, seed=0)
        assert tokens.shape == (4, 10)
        assert tokens.min() >= 0 and tokens.max() < tiny_moe.config.vocab_size

    def test_deterministic_given_seed(self, tiny_moe):
        a = generate_from_model(tiny_moe, 2, 8, seed=3)
        b = generate_from_model(tiny_moe, 2, 8, seed=3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, tiny_moe):
        a = generate_from_model(tiny_moe, 2, 12, seed=1)
        b = generate_from_model(tiny_moe, 2, 12, seed=2)
        assert not np.array_equal(a, b)

    def test_invalid_lengths_rejected(self, tiny_moe):
        with pytest.raises(ValueError):
            generate_from_model(tiny_moe, 1, 1)
        with pytest.raises(ValueError):
            generate_from_model(tiny_moe, 1, 8, temperature=0.0)

    def test_teacher_corpus_gives_teacher_low_perplexity(self, tiny_moe):
        """The FP16 teacher must beat random data on its own samples by a wide margin."""
        corpus = teacher_corpus(tiny_moe, num_sequences=8, seq_len=16, seed=0)
        random_tokens = np.random.default_rng(0).integers(
            0, tiny_moe.config.vocab_size, size=(8, 16)
        )
        ppl_teacher_data = perplexity(tiny_moe, corpus)
        ppl_random_data = perplexity(tiny_moe, random_tokens)
        assert ppl_teacher_data < 0.5 * ppl_random_data


class TestZipfianCorpus:
    def test_shape_and_range(self):
        corpus = zipfian_corpus(vocab_size=100, num_sequences=6, seq_len=20, seed=0)
        assert corpus.tokens.shape == (6, 20)
        assert corpus.tokens.max() < 100

    def test_zipf_skew_present(self):
        corpus = zipfian_corpus(vocab_size=50, num_sequences=64, seq_len=64, seed=1)
        counts = np.bincount(corpus.tokens.ravel(), minlength=50)
        top_share = np.sort(counts)[-5:].sum() / counts.sum()
        assert top_share > 0.3  # a handful of tokens dominate

    def test_independent_of_any_model(self):
        a = zipfian_corpus(64, 4, 16, seed=5)
        b = zipfian_corpus(64, 4, 16, seed=5)
        assert np.array_equal(a.tokens, b.tokens)

    def test_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            zipfian_corpus(vocab_size=1)
