"""Tests for the end-to-end inference backends (Table 7)."""

import pytest

from repro.kernels.simulators import UnsupportedBatchError
from repro.models import FULL_MODEL_SPECS
from repro.runtime.backends import (
    GPTQ3bitBackend,
    MarlinBackend,
    MiLoBackend,
    OutOfMemoryError,
    PyTorchFP16Backend,
    default_backend_lineup,
)

MIXTRAL = FULL_MODEL_SPECS["mixtral-8x7b"]
DEEPSEEK = FULL_MODEL_SPECS["deepseek-moe"]


class TestMemoryChecks:
    def test_pytorch_fp16_ooms_on_mixtral(self):
        """Table 7: the un-quantized model cannot fit a 40 GB A100 at all."""
        with pytest.raises(OutOfMemoryError):
            PyTorchFP16Backend().step_latency(MIXTRAL, 1)

    def test_oom_error_carries_structured_fields(self):
        """The typed OOM (not a sentinel string) reports the memory gap."""
        with pytest.raises(OutOfMemoryError) as exc_info:
            PyTorchFP16Backend().check_memory(MIXTRAL)
        err = exc_info.value
        assert isinstance(err, RuntimeError)
        assert err.backend == "pytorch-fp16"
        assert err.available_gb == 40.0
        assert err.required_gb > 80
        assert err.deficit_gb == pytest.approx(err.required_gb - 40.0)

    def test_oom_error_fields_default_to_none(self):
        err = OutOfMemoryError("bare message")
        assert err.backend is None and err.deficit_gb is None

    def test_free_memory_gb_is_vram_minus_weights(self):
        backend = MiLoBackend()
        free = backend.free_memory_gb(MIXTRAL)
        assert free == pytest.approx(40.0 - backend.model_memory_gb(MIXTRAL))
        assert free > 15  # the 3-bit checkpoint leaves most of the A100 free

    def test_free_memory_gb_raises_on_misfit(self):
        with pytest.raises(OutOfMemoryError):
            PyTorchFP16Backend().free_memory_gb(MIXTRAL)

    def test_pytorch_fp16_fits_deepseek(self):
        result = PyTorchFP16Backend().step_latency(DEEPSEEK, 1)
        assert result.memory_gb < 40

    def test_quantized_backends_fit_mixtral(self):
        for backend in (GPTQ3bitBackend(), MarlinBackend(), MiLoBackend()):
            assert backend.step_latency(MIXTRAL, 1).memory_gb < 40

    def test_milo_compensators_add_memory(self):
        plain = MiLoBackend().model_memory_gb(MIXTRAL)
        with_comp = MiLoBackend(compensator_gb=0.3).model_memory_gb(MIXTRAL)
        assert with_comp == pytest.approx(plain + 0.3)


class TestBatchSupport:
    def test_gptq3bit_only_batch_1(self):
        backend = GPTQ3bitBackend()
        backend.step_latency(MIXTRAL, 1)
        with pytest.raises(UnsupportedBatchError):
            backend.step_latency(MIXTRAL, 16)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            MiLoBackend().step_latency(MIXTRAL, 0)


class TestLatencyShape:
    def test_milo_fastest_quantized_backend_at_batch_1(self):
        milo = MiLoBackend().step_latency(MIXTRAL, 1).total
        gptq = GPTQ3bitBackend().step_latency(MIXTRAL, 1).total
        marlin = MarlinBackend().step_latency(MIXTRAL, 1).total
        assert milo < marlin
        # GPTQ's GeMV kernel and MiLo behave similarly at batch 1.
        assert abs(milo - gptq) / gptq < 0.3

    @pytest.mark.parametrize("batch", [1, 16, 32])
    def test_milo_beats_marlin_at_every_batch(self, batch):
        """Paper Table 7: 1.2x at batch 1, ~1.26x at larger batches."""
        milo = MiLoBackend().step_latency(MIXTRAL, batch).total
        marlin = MarlinBackend(serve_asymmetric_model=True).step_latency(MIXTRAL, batch).total
        assert 1.05 < marlin / milo < 1.6

    def test_latency_grows_mildly_with_batch(self):
        milo_1 = MiLoBackend().step_latency(MIXTRAL, 1).total
        milo_32 = MiLoBackend().step_latency(MIXTRAL, 32).total
        assert milo_32 > milo_1
        assert milo_32 / milo_1 < 6  # weight streaming dominates; far from 32x

    def test_result_breakdown(self):
        result = MiLoBackend().step_latency(MIXTRAL, 16)
        assert result.total == pytest.approx(result.gemm_time + result.overhead_time)
        assert result.backend == "milo"
        assert result.batch_size == 16


class TestIterationLatency:
    def test_uncapped_kernel_matches_step_latency(self):
        backend = MiLoBackend()
        step = backend.step_latency(MIXTRAL, 24)
        iteration = backend.iteration_latency(MIXTRAL, 24)
        assert iteration.total == step.total
        assert iteration.batch_size == 24

    def test_capped_kernel_chunks_into_supported_batches(self):
        """GPTQ's GeMV (max batch 1) pays one full step per token row."""
        backend = GPTQ3bitBackend()
        one = backend.iteration_latency(MIXTRAL, 1)
        five = backend.iteration_latency(MIXTRAL, 5)
        assert five.batch_size == 5
        assert five.total == pytest.approx(5 * one.total, rel=1e-9)
        assert five.overhead_time == pytest.approx(5 * one.overhead_time)

    def test_chunking_is_worse_than_native_batching(self):
        """Per-chunk framework overhead is why GeMV backends serve poorly."""
        tokens = 32
        gptq = GPTQ3bitBackend().iteration_latency(MIXTRAL, tokens).total
        milo = MiLoBackend().iteration_latency(MIXTRAL, tokens).total
        assert gptq > 10 * milo

    def test_invalid_token_count_rejected(self):
        with pytest.raises(ValueError):
            MiLoBackend().iteration_latency(MIXTRAL, 0)


class TestLineup:
    def test_default_lineup_names(self):
        lineup = default_backend_lineup()
        assert set(lineup) == {"PyTorch", "GPTQ3bit Backend", "MARLIN Backend", "MiLo Backend"}

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            default_backend_lineup("gpt-5")

    def test_device_is_plumbed_to_every_backend(self):
        from repro.kernels.device import A100_80GB

        lineup = default_backend_lineup("mixtral-8x7b", device=A100_80GB)
        for backend in lineup.values():
            assert backend.device is A100_80GB
            assert backend.kernel.device is A100_80GB

    def test_default_lineup_device_is_a100_40gb(self):
        for backend in default_backend_lineup().values():
            assert backend.device.memory_gb == 40.0

    def test_device_reaches_the_oom_path(self):
        """The lineup's device flows into memory checks: FP16 Mixtral (~87 GB)
        still OOMs on the 80 GB part, but the error reports the new budget."""
        from repro.kernels.device import A100_80GB

        lineup = default_backend_lineup(device=A100_80GB)
        with pytest.raises(OutOfMemoryError) as exc_info:
            lineup["PyTorch"].free_memory_gb(MIXTRAL)
        assert exc_info.value.available_gb == 80.0
        # The quantized backends gain ~40 GB of KV headroom from the bigger part.
        assert (
            lineup["MiLo Backend"].free_memory_gb(MIXTRAL)
            > default_backend_lineup()["MiLo Backend"].free_memory_gb(MIXTRAL) + 39
        )
