"""Tests for full-scale deployment memory accounting (Table 3 / Table 7 memory column)."""

import pytest

from repro.models import FULL_MODEL_SPECS
from repro.runtime.memory import (
    build_inventory,
    fp16_model_memory_gb,
    quantized_model_memory_gb,
    strategy_compensator_gb,
)

MIXTRAL = FULL_MODEL_SPECS["mixtral-8x7b"]
DEEPSEEK = FULL_MODEL_SPECS["deepseek-moe"]


class TestInventory:
    def test_quantizable_params_near_total(self):
        inventory = build_inventory(MIXTRAL)
        total = MIXTRAL.params_billions * 1e9
        assert 0.9 * total < inventory.quantizable_params <= total * 1.05

    def test_deepseek_has_shared_expert_shapes(self):
        inventory = build_inventory(DEEPSEEK)
        assert inventory.shared_expert_shapes
        assert inventory.expert_shapes

    def test_mixtral_has_no_shared_experts(self):
        assert build_inventory(MIXTRAL).shared_expert_shapes == []


class TestFP16Memory:
    def test_mixtral_needs_about_90gb(self):
        assert fp16_model_memory_gb(MIXTRAL) == pytest.approx(90.0, rel=0.05)

    def test_mixtral_exceeds_a100(self):
        assert fp16_model_memory_gb(MIXTRAL) > 40.0
        assert fp16_model_memory_gb(MIXTRAL) > 80.0


class TestQuantizedMemory:
    def test_mixtral_w3_matches_table3(self):
        """Paper Table 3: W3A16 Mixtral-8x7B is ~20.5 GB (RTN/HQQ columns)."""
        gb = quantized_model_memory_gb(MIXTRAL, bits=3, group_size=64, asymmetric=True)
        assert gb == pytest.approx(20.5, rel=0.10)

    def test_deepseek_w3_matches_table3(self):
        """Paper Table 3: W3A16 DeepSeek-MoE is ~7.67 GB."""
        gb = quantized_model_memory_gb(DEEPSEEK, bits=3, group_size=64, asymmetric=True)
        assert gb == pytest.approx(7.67, rel=0.10)

    def test_w4_larger_than_w3(self):
        w3 = quantized_model_memory_gb(MIXTRAL, bits=3)
        w4 = quantized_model_memory_gb(MIXTRAL, bits=4)
        assert w3 < w4 < fp16_model_memory_gb(MIXTRAL)

    def test_symmetric_metadata_cheaper(self):
        asym = quantized_model_memory_gb(MIXTRAL, bits=3, asymmetric=True)
        sym = quantized_model_memory_gb(MIXTRAL, bits=3, asymmetric=False)
        assert sym < asym

    def test_larger_groups_cheaper(self):
        g64 = quantized_model_memory_gb(MIXTRAL, bits=3, group_size=64)
        g128 = quantized_model_memory_gb(MIXTRAL, bits=3, group_size=128)
        assert g128 < g64


class TestCompensatorMemory:
    def test_mixtral_s1_adds_about_300mb(self):
        """Paper Table 3: MiLo-s1 is 20.8 GB vs 20.5 GB for HQQ (~0.3 GB of compensators)."""
        extra = strategy_compensator_gb(MIXTRAL, "mixtral-s1")
        assert extra == pytest.approx(0.3, rel=0.3)

    def test_deepseek_s1_adds_about_300mb(self):
        """Paper Table 3: MiLo-s1 DeepSeek is 7.98 GB vs 7.67 GB for HQQ."""
        extra = strategy_compensator_gb(DEEPSEEK, "deepseek-s1")
        assert extra == pytest.approx(0.31, rel=0.35)

    def test_s2_larger_than_s1(self):
        assert strategy_compensator_gb(MIXTRAL, "mixtral-s2") > strategy_compensator_gb(
            MIXTRAL, "mixtral-s1"
        )

    def test_compensators_are_small_fraction_of_model(self):
        extra = strategy_compensator_gb(MIXTRAL, "mixtral-s2")
        base = quantized_model_memory_gb(MIXTRAL, bits=3)
        assert extra / base < 0.05

    def test_accepts_strategy_object(self):
        from repro.core.strategies import PAPER_STRATEGIES

        via_name = strategy_compensator_gb(MIXTRAL, "mixtral-s1")
        via_obj = strategy_compensator_gb(MIXTRAL, PAPER_STRATEGIES["mixtral-s1"])
        assert via_name == via_obj
