"""Tests for the kurtosis analysis (paper Table 2, Kurtosis row)."""

import numpy as np

from repro.analysis import kurtosis_by_kind, model_kurtosis_records
from repro.models.transformer import LayerKind


class TestKurtosisRecords:
    def test_one_record_per_quantizable_matrix(self, tiny_moe):
        records = model_kurtosis_records(tiny_moe)
        assert len(records) == len(list(tiny_moe.iter_quantizable()))

    def test_records_have_finite_kurtosis(self, tiny_moe):
        for record in model_kurtosis_records(tiny_moe):
            assert np.isfinite(record.kurtosis)


class TestTable2Shape:
    def test_mixtral_attention_more_heavy_tailed_than_experts(self, mixtral_mini):
        by_kind = kurtosis_by_kind(mixtral_mini)
        assert by_kind[LayerKind.ATTENTION] > 0
        assert by_kind[LayerKind.EXPERT] < 0
        assert by_kind[LayerKind.ATTENTION] > by_kind[LayerKind.EXPERT]

    def test_deepseek_ordering_attention_shared_expert(self, deepseek_mini):
        """Table 2 (DeepSeek): attention and shared experts > routed experts."""
        by_kind = kurtosis_by_kind(deepseek_mini)
        assert by_kind[LayerKind.ATTENTION] > by_kind[LayerKind.EXPERT]
        assert by_kind[LayerKind.SHARED_EXPERT] > by_kind[LayerKind.EXPERT]
        assert by_kind[LayerKind.EXPERT] < 0
