"""Tests for the ``milo lint`` AST rule engine (:mod:`repro.analysis.lint`).

Each rule gets a trigger fixture (a snippet that must be flagged with the
right code) and a clear fixture (the corrected idiom, which must pass).
Fixtures are written into ``tmp_path`` trees that mirror the repo layout
(``src/repro/serving/...``) so the path-scoped rules see them as in-scope —
and so no file with a deliberate violation is ever committed where the CI
self-run would trip over it.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULE_REGISTRY,
    LintEngine,
    default_rules,
    load_baseline,
    suppressed_codes,
    write_baseline,
)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.engine import SYNTAX_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Repo-relative path in DET/SLOT/RPT scope; fixtures are written here.
SERVING_REL = "src/repro/serving"


def lint_snippet(
    tmp_path: Path,
    source: str,
    rel_path: str = f"{SERVING_REL}/fixture.py",
    select: tuple[str, ...] | None = None,
):
    """Write ``source`` at ``rel_path`` under a scratch root and lint it."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    engine = LintEngine(root=tmp_path, rules=default_rules(select))
    return engine.run([target])


def codes(result) -> list[str]:
    return [d.code for d in result.fresh]


# ---------------------------------------------------------------------------
# DET001 — wall-clock
# ---------------------------------------------------------------------------


class TestDet001WallClock:
    def test_time_time_flagged(self, tmp_path):
        result = lint_snippet(tmp_path, "import time\nnow = time.time()\n")
        assert codes(result) == ["DET001"]
        assert "time.time" in result.fresh[0].message

    def test_perf_counter_from_import_alias_flagged(self, tmp_path):
        source = "from time import perf_counter as pc\nstamp = pc()\n"
        result = lint_snippet(tmp_path, source)
        assert codes(result) == ["DET001"]

    def test_datetime_now_flagged(self, tmp_path):
        source = "from datetime import datetime\nwhen = datetime.now()\n"
        result = lint_snippet(tmp_path, source)
        assert codes(result) == ["DET001"]

    def test_simulated_clock_clean(self, tmp_path):
        source = "def step(clock):\n    return clock + 0.5\n"
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_quant_timing_whitelisted(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        result = lint_snippet(
            tmp_path, source, rel_path="src/repro/quant/timing.py"
        )
        assert codes(result) == []

    def test_benchmarks_whitelisted(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        result = lint_snippet(
            tmp_path,
            source,
            rel_path="benchmarks/bench_engine.py",
            select=("DET001",),
        )
        assert codes(result) == []

    def test_outside_serving_not_in_scope(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        result = lint_snippet(
            tmp_path, source, rel_path="src/repro/eval/harness.py"
        )
        assert codes(result) == []


# ---------------------------------------------------------------------------
# DET002 — global-state randomness
# ---------------------------------------------------------------------------


class TestDet002GlobalRandomness:
    def test_random_module_flagged(self, tmp_path):
        source = "import random\nx = random.random()\n"
        result = lint_snippet(tmp_path, source, rel_path="src/repro/util.py")
        assert codes(result) == ["DET002"]

    def test_np_random_legacy_flagged(self, tmp_path):
        source = "import numpy as np\nx = np.random.rand(4)\n"
        result = lint_snippet(tmp_path, source, rel_path="src/repro/util.py")
        assert codes(result) == ["DET002"]

    def test_np_random_from_import_flagged(self, tmp_path):
        source = "from numpy.random import shuffle\nshuffle([1, 2])\n"
        result = lint_snippet(tmp_path, source, rel_path="src/repro/util.py")
        assert codes(result) == ["DET002"]

    def test_default_rng_allowed(self, tmp_path):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.random(4)\n"
        )
        result = lint_snippet(tmp_path, source, rel_path="src/repro/util.py")
        assert codes(result) == []

    def test_explicit_random_instance_allowed(self, tmp_path):
        source = "import random\nrng = random.Random(0)\nx = rng.random()\n"
        result = lint_snippet(tmp_path, source, rel_path="src/repro/util.py")
        assert codes(result) == []


# ---------------------------------------------------------------------------
# DET003 — unordered-set iteration
# ---------------------------------------------------------------------------


class TestDet003UnorderedIteration:
    def test_for_over_set_literal_flagged(self, tmp_path):
        source = "total = 0\nfor x in {3, 1, 2}:\n    total += x\n"
        assert codes(lint_snippet(tmp_path, source)) == ["DET003"]

    def test_for_over_set_call_flagged(self, tmp_path):
        source = "def f(items):\n    for x in set(items):\n        print(x)\n"
        assert codes(lint_snippet(tmp_path, source)) == ["DET003"]

    def test_for_over_set_valued_name_flagged(self, tmp_path):
        source = (
            "def f(a, b):\n"
            "    pending = set(a) - set(b)\n"
            "    for x in pending:\n"
            "        print(x)\n"
        )
        assert codes(lint_snippet(tmp_path, source)) == ["DET003"]

    def test_list_of_set_flagged(self, tmp_path):
        source = "def f(items):\n    return list(set(items))\n"
        assert codes(lint_snippet(tmp_path, source)) == ["DET003"]

    def test_comprehension_over_set_flagged(self, tmp_path):
        source = "def f(items):\n    return [x + 1 for x in set(items)]\n"
        assert codes(lint_snippet(tmp_path, source)) == ["DET003"]

    def test_sorted_wrapped_clean(self, tmp_path):
        source = (
            "def f(a, b):\n"
            "    for x in sorted(set(a) - set(b)):\n"
            "        print(x)\n"
            "    return sorted(set(a))\n"
        )
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_membership_test_clean(self, tmp_path):
        source = "def f(items, x):\n    seen = set(items)\n    return x in seen\n"
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_set_comprehension_over_set_clean(self, tmp_path):
        # A set built from a set is order-insensitive by construction.
        source = "def f(items):\n    return {x + 1 for x in set(items)}\n"
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_reassigned_name_not_flagged(self, tmp_path):
        source = (
            "def f(items):\n"
            "    xs = set(items)\n"
            "    xs = sorted(xs)\n"
            "    for x in xs:\n"
            "        print(x)\n"
        )
        assert codes(lint_snippet(tmp_path, source)) == []


# ---------------------------------------------------------------------------
# REG001 — hardcoded argparse choices
# ---------------------------------------------------------------------------


class TestReg001HardcodedChoices:
    CLI_PATH = "src/repro/cli.py"

    def test_literal_choices_flagged(self, tmp_path):
        source = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            'p.add_argument("--method", choices=["rtn", "milo"])\n'
        )
        result = lint_snippet(tmp_path, source, rel_path=self.CLI_PATH)
        assert codes(result) == ["REG001"]

    def test_constant_choices_clean(self, tmp_path):
        source = (
            "import argparse\n"
            'METHODS = ("rtn", "milo")\n'
            "p = argparse.ArgumentParser()\n"
            'p.add_argument("--method", choices=METHODS)\n'
        )
        result = lint_snippet(tmp_path, source, rel_path=self.CLI_PATH)
        assert codes(result) == []

    def test_registry_derived_choices_clean(self, tmp_path):
        source = (
            "import argparse\n"
            "REGISTRY = {'a': 1, 'b': 2}\n"
            "p = argparse.ArgumentParser()\n"
            'p.add_argument("--policy", choices=sorted(REGISTRY))\n'
        )
        result = lint_snippet(tmp_path, source, rel_path=self.CLI_PATH)
        assert codes(result) == []

    def test_non_cli_module_not_in_scope(self, tmp_path):
        source = (
            "import argparse\n"
            "p = argparse.ArgumentParser()\n"
            'p.add_argument("--method", choices=["rtn", "milo"])\n'
        )
        result = lint_snippet(tmp_path, source, rel_path="src/repro/tool.py")
        assert codes(result) == []


# ---------------------------------------------------------------------------
# SLOT001 — hot-path __slots__
# ---------------------------------------------------------------------------


class TestSlot001Slots:
    HOT_MODULE = "src/repro/serving/request.py"

    def test_unslotted_class_in_hot_module_flagged(self, tmp_path):
        source = "class Sequence:\n    def __init__(self):\n        self.x = 1\n"
        result = lint_snippet(tmp_path, source, rel_path=self.HOT_MODULE)
        assert codes(result) == ["SLOT001"]

    def test_slots_clean(self, tmp_path):
        source = "class Sequence:\n    __slots__ = ('x',)\n"
        result = lint_snippet(tmp_path, source, rel_path=self.HOT_MODULE)
        assert codes(result) == []

    def test_dataclass_slots_clean(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\n"
            "class Sequence:\n"
            "    x: int = 0\n"
        )
        result = lint_snippet(tmp_path, source, rel_path=self.HOT_MODULE)
        assert codes(result) == []

    def test_enum_exempt(self, tmp_path):
        source = "import enum\nclass State(enum.Enum):\n    A = 1\n"
        result = lint_snippet(tmp_path, source, rel_path=self.HOT_MODULE)
        assert codes(result) == []

    def test_marker_comment_opts_in(self, tmp_path):
        source = (
            "# milo: hot-path\n"
            "class Entry:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        )
        result = lint_snippet(
            tmp_path, source, rel_path="src/repro/serving/extra.py"
        )
        assert codes(result) == ["SLOT001"]

    def test_unmarked_class_elsewhere_clean(self, tmp_path):
        source = "class Entry:\n    def __init__(self):\n        self.x = 1\n"
        result = lint_snippet(
            tmp_path, source, rel_path="src/repro/serving/extra.py"
        )
        assert codes(result) == []


# ---------------------------------------------------------------------------
# RPT001 — report schema closure
# ---------------------------------------------------------------------------


class TestRpt001ReportSchema:
    ENGINE_PATH = "src/repro/serving/engine.py"

    def test_undeclared_key_flagged(self, tmp_path):
        source = (
            "REPORT_SCHEMA_KEYS = frozenset({'backend'})\n"
            "def _build_report():\n"
            "    return {'backend': 'milo', 'surprise': 1}\n"
        )
        result = lint_snippet(tmp_path, source, rel_path=self.ENGINE_PATH)
        assert codes(result) == ["RPT001"]
        assert "surprise" in result.fresh[0].message

    def test_subscript_store_flagged(self, tmp_path):
        source = (
            "REPORT_SCHEMA_KEYS = frozenset({'backend'})\n"
            "def _build_report():\n"
            "    out = {'backend': 'milo'}\n"
            "    out['sneaky'] = 2\n"
            "    return out\n"
        )
        result = lint_snippet(tmp_path, source, rel_path=self.ENGINE_PATH)
        assert codes(result) == ["RPT001"]

    def test_missing_schema_constant_flagged(self, tmp_path):
        source = "def _build_report():\n    return {'backend': 'milo'}\n"
        result = lint_snippet(tmp_path, source, rel_path=self.ENGINE_PATH)
        assert codes(result) == ["RPT001"]
        assert "REPORT_SCHEMA_KEYS" in result.fresh[0].message

    def test_declared_keys_clean(self, tmp_path):
        source = (
            "REPORT_SCHEMA_KEYS = frozenset({'backend', 'model'})\n"
            "def _build_report():\n"
            "    out = {'backend': 'milo'}\n"
            "    out['model'] = 'mixtral'\n"
            "    return out\n"
        )
        result = lint_snippet(tmp_path, source, rel_path=self.ENGINE_PATH)
        assert codes(result) == []

    def test_non_report_function_ignored(self, tmp_path):
        source = (
            "REPORT_SCHEMA_KEYS = frozenset({'backend'})\n"
            "def helper():\n"
            "    return {'anything': 'goes'}\n"
        )
        result = lint_snippet(tmp_path, source, rel_path=self.ENGINE_PATH)
        assert codes(result) == []


# ---------------------------------------------------------------------------
# OBS001 — guarded telemetry hooks
# ---------------------------------------------------------------------------


class TestObs001GuardedTelemetry:
    def test_unguarded_call_in_loop_flagged(self, tmp_path):
        source = (
            "def run(self, tracer):\n"
            "    while True:\n"
            "        tracer.iteration(0, 0.0, 1.0, 4, 2)\n"
        )
        result = lint_snippet(tmp_path, source, select=("OBS001",))
        assert codes(result) == ["OBS001"]
        assert "tracer.iteration" in result.fresh[0].message

    def test_unguarded_metrics_in_for_flagged(self, tmp_path):
        source = (
            "def run(self, metrics):\n"
            "    for step in steps:\n"
            "        metrics.sample(step)\n"
        )
        result = lint_snippet(tmp_path, source, select=("OBS001",))
        assert codes(result) == ["OBS001"]

    def test_guarded_call_clean(self, tmp_path):
        source = (
            "def run(self, tracer):\n"
            "    while True:\n"
            "        if tracer is not None:\n"
            "            tracer.iteration(0, 0.0, 1.0, 4, 2)\n"
        )
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []

    def test_inverted_fast_path_split_clean(self, tmp_path):
        # The fast-path idiom: the *disabled* branch holds the original
        # loop, the else branch emits telemetry.  Branch polarity is the
        # equivalence tests' business, not the linter's.
        source = (
            "def run(self, tracer, metrics):\n"
            "    while True:\n"
            "        if tracer is None and metrics is None:\n"
            "            pass\n"
            "        else:\n"
            "            tracer.iteration(0, 0.0, 1.0, 4, 2)\n"
        )
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []

    def test_conditional_expression_guard_clean(self, tmp_path):
        source = (
            "def run(self, tracer):\n"
            "    while True:\n"
            "        pd = self._telemetry_per_device(4) "
            "if tracer is not None else None\n"
        )
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []

    def test_guard_outside_loop_clean(self, tmp_path):
        source = (
            "def drain(self):\n"
            "    tracer = self.tracer\n"
            "    if tracer is not None:\n"
            "        for seq in self.stranded:\n"
            "            tracer.strand(seq)\n"
        )
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []

    def test_call_outside_loop_clean(self, tmp_path):
        source = "def add(self, tracer, req):\n    tracer.submit(req)\n"
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []

    def test_unrelated_guard_still_flagged(self, tmp_path):
        source = (
            "def run(self, tracer):\n"
            "    while True:\n"
            "        if batch:\n"
            "            tracer.iteration(0, 0.0, 1.0, 4, 2)\n"
        )
        result = lint_snippet(tmp_path, source, select=("OBS001",))
        assert codes(result) == ["OBS001"]

    def test_telemetry_package_exempt(self, tmp_path):
        source = (
            "def flush(self):\n"
            "    for event in queue:\n"
            "        self.tracer.emit(event)\n"
        )
        result = lint_snippet(
            tmp_path,
            source,
            rel_path=f"{SERVING_REL}/telemetry/tracer.py",
            select=("OBS001",),
        )
        assert codes(result) == []

    def test_outside_serving_not_in_scope(self, tmp_path):
        source = (
            "def run(tracer):\n"
            "    for _ in range(3):\n"
            "        tracer.submit(None)\n"
        )
        result = lint_snippet(
            tmp_path,
            source,
            rel_path="src/repro/eval/fixture.py",
            select=("OBS001",),
        )
        assert codes(result) == []

    def test_non_telemetry_call_in_loop_clean(self, tmp_path):
        source = (
            "def run(self):\n"
            "    while True:\n"
            "        self.scheduler.admit(0.0)\n"
        )
        assert codes(lint_snippet(tmp_path, source, select=("OBS001",))) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_inline_disable_silences_code(self, tmp_path):
        source = "import time\nnow = time.time()  # milo: disable=DET001\n"
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_disable_wrong_code_does_not_silence(self, tmp_path):
        source = "import time\nnow = time.time()  # milo: disable=DET002\n"
        assert codes(lint_snippet(tmp_path, source)) == ["DET001"]

    def test_disable_all_silences_everything(self, tmp_path):
        source = "import time\nnow = time.time()  # milo: disable=all\n"
        assert codes(lint_snippet(tmp_path, source)) == []

    def test_multiple_codes(self):
        line = "x = 1  # milo: disable=DET001, RPT001"
        assert suppressed_codes(line) == {"DET001", "RPT001"}

    def test_no_comment(self):
        assert suppressed_codes("x = 1") == frozenset()


# ---------------------------------------------------------------------------
# Baseline round trip
# ---------------------------------------------------------------------------


class TestBaseline:
    SOURCE = "import time\nnow = time.time()\n"

    def test_round_trip_grandfathers_finding(self, tmp_path):
        result = lint_snippet(tmp_path, self.SOURCE)
        assert codes(result) == ["DET001"]

        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, result.all_findings)

        engine = LintEngine(root=tmp_path, baseline_path=baseline_path)
        rerun = engine.run([tmp_path / SERVING_REL / "fixture.py"])
        assert rerun.fresh == []
        assert len(rerun.all_findings) == 1

    def test_baseline_survives_line_shift(self, tmp_path):
        result = lint_snippet(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, result.all_findings)

        # Unrelated edit above the finding shifts its line number.
        target = tmp_path / SERVING_REL / "fixture.py"
        target.write_text("import time\n\n\nnow = time.time()\n", encoding="utf-8")
        engine = LintEngine(root=tmp_path, baseline_path=baseline_path)
        assert engine.run([target]).fresh == []

    def test_new_finding_not_covered(self, tmp_path):
        result = lint_snippet(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, result.all_findings)

        target = tmp_path / SERVING_REL / "fixture.py"
        target.write_text(
            "import time\nnow = time.time()\nlater = time.monotonic()\n",
            encoding="utf-8",
        )
        engine = LintEngine(root=tmp_path, baseline_path=baseline_path)
        rerun = engine.run([target])
        assert [d.code for d in rerun.fresh] == ["DET001"]
        assert "monotonic" in rerun.fresh[0].message

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text("not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(baseline_path)

    def test_baseline_file_is_sorted_json(self, tmp_path):
        result = lint_snippet(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, result.all_findings)
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 1
        assert payload["findings"][0]["code"] == "DET001"
        assert payload["findings"][0]["path"] == f"{SERVING_REL}/fixture.py"


# ---------------------------------------------------------------------------
# Engine / CLI behavior
# ---------------------------------------------------------------------------


class TestEngineAndCli:
    def test_syntax_error_is_a_finding(self, tmp_path):
        result = lint_snippet(tmp_path, "def broken(:\n")
        assert codes(result) == [SYNTAX_ERROR_CODE]

    def test_registry_has_all_documented_codes(self):
        assert set(RULE_REGISTRY) == {
            "DET001",
            "DET002",
            "DET003",
            "REG001",
            "SLOT001",
            "RPT001",
            "OBS001",
        }

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            default_rules(("NOPE999",))

    def test_cli_exit_one_on_finding(self, tmp_path, capsys):
        target = tmp_path / SERVING_REL / "fixture.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        code = lint_main(["--root", str(tmp_path), str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out
        assert f"{SERVING_REL}/fixture.py:2:" in out

    def test_cli_exit_zero_on_clean(self, tmp_path, capsys):
        target = tmp_path / SERVING_REL / "fixture.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n", encoding="utf-8")
        assert lint_main(["--root", str(tmp_path), str(target)]) == 0

    def test_cli_exit_two_on_missing_path(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), "no/such/dir"])
        assert code == 2

    def test_cli_exit_two_on_bad_select(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), "--select", "NOPE999", "."])
        assert code == 2

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / SERVING_REL / "fixture.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        assert (
            lint_main(["--root", str(tmp_path), "--write-baseline", str(target)])
            == 0
        )
        assert lint_main(["--root", str(tmp_path), str(target)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_REGISTRY:
            assert code in out


# ---------------------------------------------------------------------------
# Self-run: the repo passes its own linter at HEAD
# ---------------------------------------------------------------------------


class TestSelfRun:
    def test_repo_src_is_clean_at_head(self):
        engine = LintEngine(
            root=REPO_ROOT,
            baseline_path=REPO_ROOT / "lint-baseline.json",
        )
        result = engine.run([REPO_ROOT / "src"])
        assert result.fresh == [], "\n".join(d.render() for d in result.fresh)
        assert result.files_checked > 50

    def test_milo_lint_subcommand_clean_at_head(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--root", str(REPO_ROOT), "src"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
