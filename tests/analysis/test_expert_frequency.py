"""Tests for expert activation-frequency profiling (paper Fig. 3)."""

import numpy as np

from repro.analysis import profile_expert_frequency
from repro.models import build_model


class TestProfiling:
    def test_heatmap_shape(self):
        model = build_model("tiny-moe")
        profile = profile_expert_frequency(model, num_tokens=512, seed=0)
        heatmap = profile.heatmap()
        assert heatmap.shape == (model.config.num_layers, model.config.num_experts)
        assert np.allclose(heatmap.sum(axis=1), 1.0)

    def test_counts_reset_after_profiling(self):
        model = build_model("tiny-moe")
        profile_expert_frequency(model, num_tokens=256)
        assert all(c.sum() == 0 for c in model.expert_activation_counts().values())

    def test_accepts_explicit_tokens(self):
        model = build_model("tiny-moe")
        tokens = np.random.default_rng(0).integers(0, 64, size=(4, 16))
        profile = profile_expert_frequency(model, tokens=tokens)
        total = sum(c.sum() for c in profile.counts.values())
        assert total == 4 * 16 * model.config.experts_per_token * model.config.num_layers

    def test_dense_first_layer_excluded(self):
        model = build_model("tiny-finegrained")
        profile = profile_expert_frequency(model, num_tokens=256)
        assert 0 not in profile.frequencies


class TestImbalanceShape:
    def test_fine_grained_model_more_imbalanced_than_coarse(self):
        """Fig. 3: DeepSeek-style fine-grained experts show much stronger skew."""
        mixtral = profile_expert_frequency(build_model("mixtral-mini"), num_tokens=2048, seed=1)
        deepseek = profile_expert_frequency(build_model("deepseek-moe-mini"), num_tokens=2048, seed=1)
        assert deepseek.coefficient_of_variation() > mixtral.coefficient_of_variation()

    def test_deepseek_imbalance_ratio_is_large(self):
        """The paper reports an ~11.7x max/min activation ratio for DeepSeek-MoE."""
        profile = profile_expert_frequency(build_model("deepseek-moe-mini"), num_tokens=4096, seed=2)
        assert profile.imbalance_ratio() > 5.0

    def test_empty_profile_degenerates_gracefully(self):
        from repro.analysis.expert_frequency import ExpertFrequencyProfile

        empty = ExpertFrequencyProfile(model_name="none", counts={}, frequencies={})
        assert empty.imbalance_ratio() == 1.0
        assert empty.coefficient_of_variation() == 0.0
        assert empty.heatmap().shape == (0, 0)
