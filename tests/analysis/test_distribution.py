"""Tests for the information-loss / distribution analysis (paper Figs. 2, 4, 5)."""

import numpy as np
import pytest

from repro.analysis import (
    histogram_overlap,
    information_loss_report,
    kurtosis_error_correlation,
    sample_layer_weights,
)
from repro.models.init import heavy_tailed_weight


class TestHistogramOverlap:
    def test_identical_distributions_overlap_fully(self):
        x = np.random.default_rng(0).normal(size=1000)
        assert histogram_overlap(x, x.copy()) == pytest.approx(1.0)

    def test_disjoint_distributions_overlap_zero(self):
        a = np.zeros(100) + 0.1
        b = np.zeros(100) + 10.0
        assert histogram_overlap(a, b, bins=16) < 0.1

    def test_bounded_between_zero_and_one(self):
        rng = np.random.default_rng(1)
        overlap = histogram_overlap(rng.normal(size=500), rng.normal(size=500) * 0.5)
        assert 0.0 <= overlap <= 1.0


class TestWeightSampling:
    def test_fig2_sample_shapes_and_kinds(self, mixtral_mini):
        attn = sample_layer_weights(mixtral_mini, "layer_0.attn.q_proj", max_rows=16, max_cols=16)
        expert = sample_layer_weights(mixtral_mini, "layer_0.ffn.expert_0.w1", max_rows=16, max_cols=16)
        assert attn.kind == "attention" and expert.kind == "expert"
        assert attn.fp16.shape == (16, 16)
        assert attn.int3.shape == attn.fp16.shape == attn.int4.shape

    def test_int4_sample_closer_to_fp16_than_int3(self, mixtral_mini):
        sample = sample_layer_weights(mixtral_mini, "layer_0.attn.q_proj")
        err3 = np.linalg.norm(sample.fp16 - sample.int3)
        err4 = np.linalg.norm(sample.fp16 - sample.int4)
        assert err4 < err3


class TestInformationLoss:
    def test_fig4_ordering_int3_lorc_recovers_most(self):
        """INT3 < INT4 <= INT3+LoRC in distribution overlap for heavy-tailed weights."""
        weight = heavy_tailed_weight((64, 128), rng=np.random.default_rng(2))
        report = information_loss_report(weight, rank=16)
        assert report["int3"] < report["int4"]
        assert report["int3+lorc"] > report["int3"]
        assert report["int3+lorc"] >= report["int4"] - 0.05


class TestKurtosisErrorCorrelation:
    def test_fig5_positive_correlation(self, mixtral_mini):
        kurts, errors, corr = kurtosis_error_correlation(mixtral_mini, bits=3)
        assert len(kurts) == len(errors) == len(list(mixtral_mini.iter_quantizable()))
        assert corr > 0.3

    def test_layer_filter(self, mixtral_mini):
        kurts, errors, _ = kurtosis_error_correlation(mixtral_mini, bits=3, layer_index=0)
        per_layer = len(list(mixtral_mini.iter_quantizable())) // mixtral_mini.config.num_layers
        assert len(kurts) == per_layer
