"""Tests for the residual-rank analysis (paper Table 2, Res. Rank row)."""

import numpy as np
import pytest

from repro.analysis import model_residual_ranks, residual_rank, residual_rank_by_kind


class TestResidualRankMetric:
    def test_zero_matrix_has_rank_zero(self):
        assert residual_rank(np.zeros((8, 8))) == 0

    def test_identity_has_no_small_singular_values(self):
        assert residual_rank(np.eye(16), tau=0.5) == 0

    def test_one_dominant_direction(self):
        rng = np.random.default_rng(0)
        matrix = 100.0 * np.outer(rng.normal(size=32), rng.normal(size=32))
        matrix += 0.001 * rng.normal(size=(32, 32))
        # All but the dominant singular value fall below tau * sigma_max.
        assert residual_rank(matrix, tau=0.5) == 31

    def test_tau_monotonicity(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(32, 32))
        assert residual_rank(matrix, tau=0.2) <= residual_rank(matrix, tau=0.8)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            residual_rank(np.eye(4), tau=0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            residual_rank(np.zeros(8))


class TestModelResidualRanks:
    def test_records_cover_all_quantizable(self, tiny_moe):
        records = model_residual_ranks(tiny_moe, bits=3)
        assert len(records) == len(list(tiny_moe.iter_quantizable()))
        for record in records:
            assert 0 <= record.rank <= min(record.shape)
            assert record.relative_error > 0

    def test_by_kind_summary(self, tiny_moe):
        by_kind = residual_rank_by_kind(tiny_moe, bits=3)
        assert set(by_kind) <= {"attention", "expert", "shared_expert"}
        assert all(v >= 0 for v in by_kind.values())

    def test_unsupported_method_rejected(self, tiny_moe):
        with pytest.raises(ValueError):
            model_residual_ranks(tiny_moe, method="awq")

    def test_attention_residual_error_larger_than_expert(self, mixtral_mini):
        """Heavy-tailed attention weights lose more to INT3 than expert weights (Fig. 5)."""
        records = model_residual_ranks(mixtral_mini, bits=3)
        attention = [r.relative_error for r in records if r.kind == "attention"]
        experts = [r.relative_error for r in records if r.kind == "expert"]
        assert np.mean(attention) > np.mean(experts)
