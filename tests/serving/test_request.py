"""Tests for the serving request/sequence lifecycle and per-request metrics."""

import pytest

from repro.serving import Request, RequestState, Sequence


def make_request(**overrides):
    defaults = dict(request_id=0, arrival_time=0.0, prompt_tokens=8, max_new_tokens=4)
    defaults.update(overrides)
    return Request(**defaults)


class TestRequestValidation:
    def test_total_tokens(self):
        req = make_request(prompt_tokens=10, max_new_tokens=6)
        assert req.total_tokens == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prompt_tokens": 0},
            {"max_new_tokens": 0},
            {"prompt_tokens": -3},
            {"arrival_time": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_request(**kwargs)

    def test_prefix_identity_accepted(self):
        req = make_request(prompt_tokens=16, prefix_id=3, prefix_tokens=8)
        assert (req.prefix_id, req.prefix_tokens) == (3, 8)
        assert make_request().prefix_id is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prefix_tokens": 4},                                  # id missing
            {"prefix_id": -1, "prefix_tokens": 4},                 # bad id
            {"prefix_id": 0, "prefix_tokens": 0},                  # empty prefix
            {"prompt_tokens": 8, "prefix_id": 0, "prefix_tokens": 9},  # > prompt
        ],
    )
    def test_invalid_prefix_identity_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_request(**kwargs)


class TestSequenceLifecycle:
    def test_prefill_iteration_emits_first_token(self):
        seq = Sequence(request=make_request(arrival_time=1.0))
        seq.admit(now=2.0)
        assert seq.is_prefill
        assert seq.tokens_this_iteration() == 8  # whole prompt in one iteration
        seq.advance(now=2.5)
        assert seq.prefill_done
        assert seq.generated_tokens == 1
        assert seq.first_token_time == 2.5
        assert seq.ttft == pytest.approx(1.5)  # includes queueing delay

    def test_decode_iterations_emit_one_token_each(self):
        seq = Sequence(request=make_request(max_new_tokens=3))
        seq.admit(now=0.0)
        seq.advance(now=1.0)
        assert seq.tokens_this_iteration() == 1
        seq.advance(now=2.0)
        seq.advance(now=3.0)
        assert seq.is_finished
        assert seq.finish_time == 3.0
        # Two decode gaps after the first token: (3.0 - 1.0) / 2.
        assert seq.tpot == pytest.approx(1.0)
        assert seq.e2e_latency == pytest.approx(3.0)

    def test_single_token_request_has_zero_tpot(self):
        seq = Sequence(request=make_request(max_new_tokens=1))
        seq.admit(now=0.0)
        seq.advance(now=0.7)
        assert seq.is_finished
        assert seq.tpot == 0.0

    def test_kv_tokens_held_matches_reservation(self):
        """Reservation-based admission: a running sequence holds its full extent."""
        seq = Sequence(request=make_request(prompt_tokens=8, max_new_tokens=4))
        assert seq.kv_tokens_held() == 0  # queued: holds nothing
        seq.admit(now=0.0)
        assert seq.kv_tokens_held() == 12
        seq.advance(now=1.0)  # prefill
        assert seq.kv_tokens_held() == 12  # reservation does not grow
        for now in (2.0, 3.0, 4.0):
            seq.advance(now=now)
        assert seq.is_finished
        assert seq.kv_tokens_held() == 0  # freed on finish

    def test_invalid_transitions_raise(self):
        seq = Sequence(request=make_request())
        with pytest.raises(RuntimeError):
            seq.advance(now=0.0)  # not admitted yet
        seq.admit(now=0.0)
        with pytest.raises(RuntimeError):
            seq.admit(now=0.0)  # double admit
        with pytest.raises(RuntimeError):
            seq.reject()  # already running

    def test_metrics_none_until_available(self):
        seq = Sequence(request=make_request())
        assert seq.ttft is None and seq.tpot is None and seq.e2e_latency is None
        assert seq.state is RequestState.QUEUED
