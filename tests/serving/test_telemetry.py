"""Telemetry (:mod:`repro.serving.telemetry`) determinism and reconciliation.

Four properties are pinned here, mirroring the guarantees the package
docstring makes:

1. **Fast/general stream equivalence** — the fast path's macro-stepped
   decode synthesizes byte-for-byte the same trace and metrics streams the
   general per-iteration loop emits, across every engine mode (chunked
   prefill, prefix sharing, cluster, overlap, dynamic re-placement, reject
   admission).
2. **Disabled-path byte identity** — attaching no tracer/registry leaves
   the report byte-identical to a run with telemetry attached: hooks
   observe, never perturb.
3. **Chrome export validity** — :func:`chrome_trace` output passes the
   trace-event schema check (the same one CI runs on the uploaded
   artifact) and carries the raw exact-float stream round-trippable by
   :func:`load_trace_file`.
4. **Report reconciliation** — ``milo analyze`` totals match the run's
   JSON report float-for-float (latency summaries, sim time) or to within
   1e-9 (straggler ratio, accumulated in a different order by design).
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import EngineConfig, ServingEngine, poisson_workload
from repro.serving.telemetry import (
    MetricsRegistry,
    Tracer,
    analyze_trace,
    chrome_trace,
    load_metrics_file,
    load_trace_file,
    validate_chrome_trace,
)

WORKLOADS = {
    "mixed": dict(num_requests=60, qps=30.0, seed=31, mean_new_tokens=48),
    "prefix_shared": dict(
        num_requests=60, qps=30.0, seed=23, mean_new_tokens=48,
        shared_prefix_tokens=32, prefix_groups=3,
    ),
    "single_token": dict(
        num_requests=40, qps=20.0, seed=24, mean_new_tokens=1, length_jitter=0.0,
    ),
}

CONFIGS = {
    "single": dict(),
    "chunked": dict(prefill_chunk=32),
    "cluster": dict(devices=4),
    "overlap": dict(devices=4, overlap=True),
    "replace": dict(devices=2, overlap=True, replacement_threshold=0.05),
    "reject": dict(admission="reject", max_batch_size=8),
}

#: On-demand growth under KV pressure: exercises grow/cow/preempt events.
ONDEMAND_CONFIG = dict(kv_policy="ondemand", reserve_gb=20.0, max_batch_size=256)
ONDEMAND_WORKLOAD = dict(
    num_requests=120, qps=40.0, seed=25,
    mean_prompt_tokens=512, mean_new_tokens=256,
)


def run_traced(config_kwargs, workload_kwargs, *, interval=0.25, **overrides):
    config = EngineConfig(**{**config_kwargs, **overrides})
    engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
    tracer = Tracer()
    metrics = MetricsRegistry(interval=interval)
    engine.enable_telemetry(tracer=tracer, metrics=metrics)
    report = engine.run(poisson_workload(**workload_kwargs))
    return report, tracer, metrics


# ---------------------------------------------------------------------------
# 1. fast path vs general loop: byte-identical streams
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_fast_and_general_streams_byte_identical(workload, config):
    fast = run_traced(CONFIGS[config], WORKLOADS[workload], fast_path=True)
    general = run_traced(CONFIGS[config], WORKLOADS[workload], fast_path=False)
    assert fast[1].to_jsonl() == general[1].to_jsonl()
    assert fast[2].to_jsonl() == general[2].to_jsonl()
    assert json.dumps(fast[0].to_dict(), sort_keys=True) == json.dumps(
        general[0].to_dict(), sort_keys=True
    )


def test_ondemand_streams_byte_identical():
    """Growth workloads always take the general loop, so this pins that the
    flag is stream-inert there too."""
    fast = run_traced(ONDEMAND_CONFIG, ONDEMAND_WORKLOAD, fast_path=True)
    general = run_traced(ONDEMAND_CONFIG, ONDEMAND_WORKLOAD, fast_path=False)
    assert fast[1].to_jsonl() == general[1].to_jsonl()
    assert fast[2].to_jsonl() == general[2].to_jsonl()


# ---------------------------------------------------------------------------
# 2. telemetry never perturbs the simulation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_disabled_path_report_byte_identical(config):
    plain = ServingEngine(
        MiLoBackend(), "mixtral-8x7b", EngineConfig(**CONFIGS[config])
    )
    bare = plain.run(poisson_workload(**WORKLOADS["mixed"]))
    traced, _, _ = run_traced(CONFIGS[config], WORKLOADS["mixed"])
    assert json.dumps(bare.to_dict(), sort_keys=True) == json.dumps(
        traced.to_dict(), sort_keys=True
    )


# ---------------------------------------------------------------------------
# event-stream semantics
# ---------------------------------------------------------------------------


def test_lifecycle_event_counts_match_report():
    report, tracer, _ = run_traced(CONFIGS["overlap"], WORKLOADS["mixed"])
    kinds = [e["kind"] for e in tracer.events]
    assert kinds.count("submit") == report.num_requests
    assert kinds.count("finish") == report.completed
    assert kinds.count("reject") == report.rejected
    assert kinds.count("iter") == report.iterations
    assert kinds.count("preempt") == report.preemptions


def test_ondemand_emits_preempt_grow_and_free_events():
    report, tracer, _ = run_traced(ONDEMAND_CONFIG, ONDEMAND_WORKLOAD)
    assert report.preemptions > 0  # the scenario must actually preempt
    kinds = [e["kind"] for e in tracer.events]
    assert kinds.count("preempt") == report.preemptions
    ops = [e["op"] for e in tracer.events if e["kind"] == "kv"]
    assert "grow" in ops and "free" in ops
    recomputed = sum(
        e["recomputed"] for e in tracer.events if e["kind"] == "preempt"
    )
    assert recomputed == report.recomputed_tokens


def test_prefix_sharing_emits_share_events_with_hits():
    report, tracer, _ = run_traced(CONFIGS["single"], WORKLOADS["prefix_shared"])
    shares = [
        e for e in tracer.events if e["kind"] == "kv" and e["op"] == "share"
    ]
    # The first request of each group populates the index (0 hits); later
    # arrivals map resident prefix blocks.
    assert shares and any(e["hit_blocks"] > 0 for e in shares)
    assert sum(e["hit_blocks"] for e in shares) == report.prefix_hit_blocks


def test_event_timestamps_monotonic_per_iteration():
    _, tracer, _ = run_traced(CONFIGS["overlap"], WORKLOADS["mixed"])
    iters = [e for e in tracer.events if e["kind"] == "iter"]
    assert [e["i"] for e in iters] == list(range(len(iters)))
    for prev, cur in zip(iters, iters[1:]):
        assert prev["t1"] <= cur["t0"]  # idle gaps allowed, overlap not
        assert cur["t0"] <= cur["t1"]


def test_metrics_sampling_grid_aligned():
    _, _, metrics = run_traced(CONFIGS["single"], WORKLOADS["mixed"], interval=0.25)
    rows = metrics.samples
    assert rows, "a multi-second sim must produce samples at 0.25s interval"
    times = [row["t"] for row in rows]
    assert times == sorted(times)
    for prev, cur in zip(rows, rows[1:]):
        # next sample falls past the grid line following the previous one.
        assert cur["t"] >= 0.25 * (int(prev["t"] / 0.25) + 1)
    for row in rows:
        assert 0.0 <= row["kv_utilization"] <= 1.0
        assert row["used_blocks"] + row["free_blocks"] > 0


def test_metrics_interval_must_be_positive():
    with pytest.raises(ValueError, match="interval must be positive"):
        MetricsRegistry(interval=0.0)


# ---------------------------------------------------------------------------
# 3. exports
# ---------------------------------------------------------------------------


def test_chrome_trace_validates_and_has_device_tracks():
    report, tracer, metrics = run_traced(CONFIGS["overlap"], WORKLOADS["mixed"])
    trace = chrome_trace(tracer, metrics)
    validate_chrome_trace(trace)  # must not raise
    events = trace["traceEvents"]
    slice_tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert slice_tids == {1, 2, 3, 4}  # one track per device
    # async request spans open and close in pairs.
    begins = sum(1 for e in events if e["ph"] == "b")
    ends = sum(1 for e in events if e["ph"] == "e")
    assert begins == ends > 0
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"batch", "waiting", "free_blocks", "kv_utilization"} <= counters
    # the exact-float raw stream rides along for lossless re-analysis.
    assert trace["milo"]["events"] == tracer.events


def test_validate_chrome_trace_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "n", "ts": -1.0, "dur": 1.0}]}
        )


def test_jsonl_round_trip(tmp_path):
    _, tracer, metrics = run_traced(CONFIGS["cluster"], WORKLOADS["mixed"])
    trace_path = tmp_path / "run.jsonl"
    metrics_path = tmp_path / "run.metrics.jsonl"
    tracer.write_jsonl(str(trace_path))
    metrics.write_jsonl(str(metrics_path))
    events, samples, meta = load_trace_file(str(trace_path))
    assert events == tracer.events
    assert samples == []
    assert meta == tracer.meta
    assert load_metrics_file(str(metrics_path)) == metrics.samples


def test_chrome_trace_file_round_trip(tmp_path):
    _, tracer, metrics = run_traced(CONFIGS["overlap"], WORKLOADS["mixed"])
    path = tmp_path / "run.trace.json"
    path.write_text(json.dumps(chrome_trace(tracer, metrics)))
    events, samples, meta = load_trace_file(str(path))
    assert events == tracer.events
    assert samples == metrics.samples
    assert meta == tracer.meta


# ---------------------------------------------------------------------------
# 4. milo analyze reconciles with the report
# ---------------------------------------------------------------------------


def test_analyze_reconciles_with_report_exactly():
    report, tracer, metrics = run_traced(CONFIGS["overlap"], WORKLOADS["mixed"])
    res = analyze_trace(tracer.events, metrics.samples, tracer.meta)
    rep = report.to_dict()
    # Latency summaries accumulate in finish order == the engine's order, so
    # the floats are identical, not merely close.
    assert res["ttft_s"] == rep["ttft_s"]
    assert res["tpot_s"] == rep["tpot_s"]
    assert res["e2e_s"] == rep["e2e_s"]
    assert res["sim_time_s"] == rep["sim_time_s"]
    assert res["iterations"] == rep["iterations"]
    assert res["requests"]["finished"] == rep["completed"]
    assert res["requests"]["submitted"] == rep["num_requests"]
    # Straggler totals replay the same memoized floats in the same order.
    assert res["straggler"]["ratio"] == pytest.approx(
        rep["cluster"]["straggler_ratio"], abs=1e-9
    )
    assert res["overlap"]["hidden_s"] == pytest.approx(
        rep["overlap"]["hidden_comm_s"], abs=1e-9
    )
    assert len(res["devices"]) == 4
    assert res["kv"]["peak_utilization"] <= 1.0


def test_analyze_reconciles_preemption_run():
    report, tracer, metrics = run_traced(ONDEMAND_CONFIG, ONDEMAND_WORKLOAD)
    res = analyze_trace(tracer.events, metrics.samples, tracer.meta)
    rep = report.to_dict()
    assert res["ttft_s"] == rep["ttft_s"]
    assert res["e2e_s"] == rep["e2e_s"]
    assert res["requests"]["preemptions"] == rep["preemptions"]
    assert res["kv"]["grow_blocks"] > 0
    # every phase share is a fraction and they partition the total.
    shares = [res["phases"][p]["share"] for p in ("queued", "prefill", "decode")]
    assert all(0.0 <= s <= 1.0 for s in shares)
    assert sum(shares) == pytest.approx(1.0)


def test_analyze_single_token_requests_report_zero_tpot():
    report, tracer, _ = run_traced(CONFIGS["single"], WORKLOADS["single_token"])
    res = analyze_trace(tracer.events)
    assert res["tpot_s"] == report.to_dict()["tpot_s"]
    assert res["tpot_s"]["max"] == 0.0


# ---------------------------------------------------------------------------
# 5. milo analyze edge traces (PR 10)
# ---------------------------------------------------------------------------


DISAGG_CONFIG = dict(
    devices=3, prefill_devices=1, decode_devices=2,
    kv_policy="ondemand", block_size=8, max_batch_size=1000,
)
DISAGG_WORKLOAD = dict(num_requests=35, qps=60.0, seed=44, mean_new_tokens=96)


def run_traced_small_pools(config_kwargs, workload_kwargs, *, num_blocks=40, **overrides):
    config = EngineConfig(**{**config_kwargs, **overrides})
    engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
    for pool in engine.block_manager.pools:
        pool.num_blocks = num_blocks
    tracer = Tracer()
    engine.enable_telemetry(tracer=tracer)
    report = engine.run(poisson_workload(**workload_kwargs))
    return report, tracer


def test_analyze_empty_trace_is_all_zero():
    """An empty event stream (a run that served nothing) summarizes cleanly
    instead of crashing: zero counters, null latency summaries, no migration
    section."""
    res = analyze_trace([])
    assert res["sim_time_s"] == 0.0
    assert res["iterations"] == 0
    assert res["requests"] == {
        "submitted": 0, "finished": 0, "rejected": 0,
        "preempted_requests": 0, "preemptions": 0, "stranded": 0,
    }
    for section in ("ttft_s", "tpot_s", "e2e_s"):
        assert res[section] == {"p50": None, "p95": None, "mean": None, "max": None}
    for phase in ("queued", "prefill", "decode"):
        assert res["phases"][phase]["total_s"] == 0
        assert res["phases"][phase]["share"] == 0.0
    assert "migration" not in res
    assert res["kv"] == {"min_free_blocks": None, "cow_copies": 0, "grow_blocks": 0}


def test_analyze_only_rejected_trace():
    """A trace where every request was shed at admission: finished stays 0,
    latency summaries stay null, rejected counts every shed."""
    from repro.serving.request import Request, Sequence

    tracer = Tracer()
    for rid in range(5):
        request = Request(
            rid, arrival_time=rid * 0.1, prompt_tokens=16, max_new_tokens=8
        )
        tracer.submit(request)
        tracer.reject(Sequence(request), rid * 0.1)
    res = analyze_trace(tracer.events)
    assert res["requests"]["submitted"] == 5
    assert res["requests"]["rejected"] == 5
    assert res["requests"]["finished"] == 0
    assert res["ttft_s"]["p50"] is None
    assert res["e2e_s"]["mean"] is None
    # The Chrome export of the same stream validates too (instant events
    # only, no spans).
    validate_chrome_trace(chrome_trace(tracer))


def test_analyze_handoff_and_migration_spans_float_for_float():
    """The migration section reproduces the engine's stall accounting
    *exactly* — summed from the per-event ``s`` floats, not recomputed."""
    report, tracer = run_traced_small_pools(DISAGG_CONFIG, DISAGG_WORKLOAD)
    res = analyze_trace(tracer.events, meta=tracer.meta)
    migration = report.to_dict()["migration"]
    handoffs = [e for e in tracer.events if e["kind"] == "handoff"]
    rebalances = [e for e in tracer.events if e["kind"] == "migrate"]
    assert handoffs, "workload must actually exercise handoffs"
    assert res["migration"]["handoffs"] == migration["handoffs"] == len(handoffs)
    assert res["migration"]["handoff_s"] == migration["handoff_s"]
    assert res["migration"]["handoff_s"] == sum(e["s"] for e in handoffs)
    assert res["migration"]["handoff_blocks"] == sum(e["blocks"] for e in handoffs)
    assert res["migration"]["rebalances"] == migration["rebalances"] == len(rebalances)
    assert res["migration"]["rebalance_s"] == migration["rebalance_s"]
    assert res["migration"]["rebalance_s"] == sum(e["s"] for e in rebalances)
    # Every span is well-formed: t1 - t0 equals the priced stall exactly as
    # the engine computed it (t1 = t0 + s by construction).
    for event in handoffs + rebalances:
        assert event["t1"] == event["t0"] + event["s"]
        assert event["blocks"] > 0


def test_analyze_swap_spans_float_for_float():
    report, tracer = run_traced_small_pools(
        DISAGG_CONFIG, DISAGG_WORKLOAD, preempt_mode="swap"
    )
    res = analyze_trace(tracer.events, meta=tracer.meta)
    migration = report.to_dict()["migration"]
    outs = [e for e in tracer.events if e["kind"] == "swap" and e["op"] == "out"]
    ins = [e for e in tracer.events if e["kind"] == "swap" and e["op"] == "in"]
    assert outs, "workload must actually exercise swap preemption"
    assert res["migration"]["swaps"] == migration["swaps"] == len(outs)
    assert res["migration"]["swapped_blocks"] == sum(e["blocks"] for e in outs)
    assert res["migration"]["swap_in_s"] == migration["swap_in_s"]
    assert res["migration"]["swap_in_s"] == sum(e["s"] for e in ins)
    # Chrome export of a swap/handoff-bearing stream stays schema-valid.
    validate_chrome_trace(chrome_trace(tracer))


def test_analyze_colocated_trace_has_no_migration_section():
    """Colocated recompute traces predate PR 10 conceptually: analyze must
    not invent a migration section for them."""
    _, tracer, _ = run_traced(CONFIGS["cluster"], WORKLOADS["mixed"])
    res = analyze_trace(tracer.events, meta=tracer.meta)
    assert "migration" not in res
