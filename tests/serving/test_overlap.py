"""Overlap-aware layered cost model: properties, equivalence, re-placement.

Three claims of the ``--overlap`` engine mode are pinned here:

* **never slower than serial** — for *any* draw of per-layer compute and
  communication times and any efficiency in [0, 1],
  :func:`~repro.serving.engine.overlap_step_seconds` is monotonically <=
  the serial layered cost (hiding work cannot add time), both as a pure
  function under Hypothesis and at the engine's iteration-cost layer under
  random (tokens, placement, frequencies) draws;
* **efficiency 0 == serial, bit for bit** — with ``overlap_efficiency=0``
  the layered step reproduces the no-overlap accumulation
  ``sum_l (compute_l + comm_{l-1})`` exactly (same float operations:
  ``x - 0.0 == x`` in IEEE arithmetic);
* **dynamic re-placement** — with a ``replacement_threshold`` the drift
  window re-packs layers whose measured routing drifted from the profile,
  charges a migration stall to the clock, bumps the placement epoch stamped
  onto later admissions, and stays byte-identical between the fast and
  general loops (covered in ``test_engine_equivalence.py``) and across
  repeated ``run()`` calls on one engine.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expert_frequency import fig3_layer_frequencies
from repro.kernels.device import A100_80GB
from repro.runtime.backends import MiLoBackend
from repro.serving import (
    EngineConfig,
    ServingEngine,
    overlap_step_seconds,
    poisson_workload,
)

MODEL = "mixtral-8x7b"


def make_engine(efficiency: float | None = None, **config_kwargs) -> ServingEngine:
    device = A100_80GB
    if efficiency is not None:
        device = dataclasses.replace(A100_80GB, overlap_efficiency=efficiency)
    config = EngineConfig(**{"devices": 4, "overlap": True, **config_kwargs})
    return ServingEngine(MiLoBackend(device=device), MODEL, config)


def serial_layered_step(compute_s, comm_s) -> float:
    """The no-overlap accumulation ``overlap_step_seconds`` claims to match
    at efficiency 0: layer compute plus the previous layer's (unhidden)
    communication, in the identical float-operation order."""
    step = 0.0
    carry = 0.0
    for compute, comm in zip(compute_s, comm_s):
        step += compute + carry
        carry = comm
    step += carry
    return step


# -- pure-function properties ------------------------------------------------
LAYER_TIMES = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=64
)


@given(
    compute_s=LAYER_TIMES,
    comm_s=LAYER_TIMES,
    efficiency=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=300, deadline=None)
def test_overlap_never_exceeds_serial(compute_s, comm_s, efficiency):
    n = min(len(compute_s), len(comm_s))
    compute_s, comm_s = compute_s[:n], comm_s[:n]
    step, hidden = overlap_step_seconds(compute_s, comm_s, efficiency)
    serial = serial_layered_step(compute_s, comm_s)
    assert 0.0 <= hidden
    assert step <= serial  # hiding communication can only remove time
    # Full hiding is bounded by the ideal pipeline: nothing below the
    # compute critical path alone.
    assert step >= sum(compute_s)


@given(compute_s=LAYER_TIMES, comm_s=LAYER_TIMES)
@settings(max_examples=300, deadline=None)
def test_efficiency_zero_is_serial_bit_for_bit(compute_s, comm_s):
    n = min(len(compute_s), len(comm_s))
    compute_s, comm_s = compute_s[:n], comm_s[:n]
    step, hidden = overlap_step_seconds(compute_s, comm_s, 0.0)
    assert hidden == 0.0
    assert step == serial_layered_step(compute_s, comm_s)  # byte-identical


# -- engine iteration-cost properties ----------------------------------------
@given(
    tokens=st.integers(min_value=1, max_value=4096),
    split=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    efficiency=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_engine_overlap_step_never_exceeds_serial(tokens, split, efficiency, seed):
    """Any (tokens, home split, per-layer frequencies) draw: the overlap
    iteration step at efficiency e is <= the same engine's step at 0."""
    import numpy as np

    rng = np.random.default_rng(seed)
    rows = rng.random((32, 8)) + 1e-3
    rows = tuple(tuple(row / row.sum()) for row in rows)
    # Apportion the batch's home tokens by the drawn split.
    total = sum(split) or 1.0
    home = [int(tokens * s / total) for s in split]
    home[0] += tokens - sum(home)
    home_key = tuple(home)

    overlapped = make_engine(efficiency, layer_frequencies=rows)
    serial = make_engine(0.0, layer_frequencies=rows)
    step_e = overlapped._iteration_cost_overlap(tokens, home_key)[0]
    step_0 = serial._iteration_cost_overlap(tokens, home_key)[0]
    assert step_e <= step_0


# -- report-level behavior ----------------------------------------------------
WORKLOAD = dict(num_requests=60, qps=25.0, seed=31, mean_new_tokens=48)


def test_overlap_report_section():
    report = make_engine(0.9).run(poisson_workload(**WORKLOAD)).to_dict()
    section = report["overlap"]
    assert section["efficiency"] == 0.9
    assert section["hidden_comm_s"] > 0.0
    assert 0.0 < section["overlap_ratio"] <= 0.9
    assert section["replacements"] == 0  # no threshold -> no re-placement
    assert section["migration_s"] == 0.0
    # Serial reports must not grow the section.
    serial = ServingEngine(
        MiLoBackend(), MODEL, EngineConfig(devices=4)
    ).run(poisson_workload(**WORKLOAD)).to_dict()
    assert "overlap" not in serial


def test_efficiency_zero_report_hides_nothing_and_is_slowest():
    hidden = make_engine(0.9).run(poisson_workload(**WORKLOAD)).to_dict()
    unhidden = make_engine(0.0).run(poisson_workload(**WORKLOAD)).to_dict()
    assert unhidden["overlap"]["hidden_comm_s"] == 0.0
    assert unhidden["overlap"]["overlap_ratio"] == 0.0
    assert hidden["sim_time_s"] <= unhidden["sim_time_s"]


def test_replacement_triggers_and_stamps_epochs():
    engine = make_engine(
        0.9,
        placement="frequency",
        kv_policy="ondemand",
        max_batch_size=1000,
        replacement_threshold=0.05,
    )
    workload = poisson_workload(num_requests=120, qps=40.0, seed=32, mean_new_tokens=64)
    report = engine.run(workload).to_dict()
    section = report["overlap"]
    assert section["replacements"] >= 1
    assert section["migration_s"] > 0.0
    # Requests admitted after the re-placement carry the bumped epoch.
    epochs = {
        r["placement_epoch"] for r in report["requests"] if r["state"] == "finished"
    }
    assert 0 in epochs and max(epochs) >= 1
    # Repeated runs on the same engine reset the layered placement and
    # report byte-identically (run-to-run determinism).
    again = engine.run(workload).to_dict()
    assert json.dumps(again, sort_keys=True) == json.dumps(report, sort_keys=True)


def test_overlap_without_replacement_has_no_epoch_drift():
    report = make_engine(0.9).run(poisson_workload(**WORKLOAD)).to_dict()
    assert all(
        r["placement_epoch"] == 0
        for r in report["requests"]
        if r["state"] == "finished"
    )


# -- config validation ---------------------------------------------------------
def test_overlap_requires_multiple_devices():
    with pytest.raises(ValueError, match="devices > 1"):
        EngineConfig(overlap=True)


def test_layer_frequencies_require_overlap():
    rows = tuple(tuple(r) for r in fig3_layer_frequencies(32, 8))
    with pytest.raises(ValueError, match="requires overlap"):
        EngineConfig(devices=4, layer_frequencies=rows)


def test_replacement_threshold_validation():
    with pytest.raises(ValueError, match="requires overlap"):
        EngineConfig(devices=4, replacement_threshold=0.1)
    with pytest.raises(ValueError, match="total-variation"):
        EngineConfig(devices=4, overlap=True, replacement_threshold=1.5)


def test_layer_frequencies_row_count_must_match_model():
    rows = tuple(tuple(r) for r in fig3_layer_frequencies(4, 8))
    with pytest.raises(ValueError, match="rows"):
        make_engine(0.9, layer_frequencies=rows)
