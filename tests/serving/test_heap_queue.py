"""Property tests: the heap-backed waiting queue == the old sorted list.

PR 6 replaced the scheduler's plain-list ``waiting`` (re-sorted on every
insert) with :class:`repro.serving.scheduler.WaitingQueue`, a heap keyed by
the scheduling policy's ``queue_key`` with a push-counter tiebreak.  The
refactor claims *exact* behavioral equivalence: every admission order, every
iteration view, every head peek matches what ``list.sort`` (a stable sort)
produced.  Hypothesis drives random priority mixes and preemption-style
re-pushes against a model list to pin that claim.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.request import Request, Sequence
from repro.serving.scheduler import FifoPriorityPolicy, WaitingQueue


def make_seq(request_id: int, priority: int, enqueue_index: int) -> Sequence:
    return Sequence(
        request=Request(
            request_id=request_id,
            arrival_time=0.0,
            prompt_tokens=8,
            max_new_tokens=4,
            priority=priority,
        ),
        enqueue_index=enqueue_index,
    )


def model_sorted(seqs, key):
    """The pre-PR behavior: a list re-sorted (stably) after every insert."""
    return sorted(seqs, key=key)  # sorted() is stable, like list.sort


#: A scripted queue workload: each element is a priority (push) or None
#: (pop the head, as admission does).
OPS = st.lists(
    st.one_of(st.integers(min_value=-3, max_value=3), st.none()),
    min_size=1,
    max_size=60,
)


class TestHeapMatchesStableSort:
    @given(priorities=st.lists(st.integers(min_value=-5, max_value=5), max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_iteration_order_matches_sorted_list(self, priorities):
        policy = FifoPriorityPolicy()
        queue = WaitingQueue(policy.queue_key)
        model = []
        for i, prio in enumerate(priorities):
            seq = make_seq(i, prio, i)
            queue.push(seq)
            model.append(seq)
        expected = model_sorted(model, policy.queue_key)
        assert list(queue) == expected
        assert len(queue) == len(expected)
        if expected:
            assert queue.peek() is expected[0]
            assert queue[0] is expected[0]

    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_pop_sequence_matches_sorted_list(self, ops):
        """Interleaved pushes and head pops drain in stable-sorted order."""
        policy = FifoPriorityPolicy()
        queue = WaitingQueue(policy.queue_key)
        model = []
        next_id = 0
        for op in ops:
            if op is None:
                if not model:
                    continue
                model = model_sorted(model, policy.queue_key)
                expected_head = model.pop(0)
                assert queue.pop(0) is expected_head
            else:
                seq = make_seq(next_id, op, next_id)
                next_id += 1
                queue.push(seq)
                model.append(seq)
        assert list(queue) == model_sorted(model, policy.queue_key)

    @given(
        priorities=st.lists(
            st.integers(min_value=-3, max_value=3), min_size=2, max_size=30
        ),
        requeue_picks=st.lists(st.integers(min_value=0, max_value=10**6), max_size=10),
    )
    @settings(max_examples=150, deadline=None)
    def test_preemption_requeue_keeps_original_precedence(
        self, priorities, requeue_picks
    ):
        """A preempted sequence re-pushed with its *original* enqueue_index
        rejoins ahead of every later arrival of its priority class — the
        anti-starvation property the stable sort used to provide."""
        policy = FifoPriorityPolicy()
        queue = WaitingQueue(policy.queue_key)
        model = []
        for i, prio in enumerate(priorities):
            seq = make_seq(i, prio, i)
            queue.push(seq)
            model.append(seq)
        # Simulate preempt->requeue churn: pop the head, push it back.
        for pick in requeue_picks:
            if not model:
                break
            model = model_sorted(model, policy.queue_key)
            victim = model.pop(0)
            popped = queue.pop(0)
            assert popped is victim
            queue.push(victim)  # key unchanged: same (priority, enqueue_index)
            model.append(victim)
        assert list(queue) == model_sorted(model, policy.queue_key)

    @given(priorities=st.lists(st.integers(min_value=-2, max_value=2), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_equal_keys_pop_in_insertion_order(self, priorities):
        """Ties on the policy key drain FIFO (the stable-sort guarantee)."""
        policy = FifoPriorityPolicy()
        queue = WaitingQueue(policy.queue_key)
        # Same enqueue_index for everyone: the key ties completely within a
        # priority class, leaving only the push counter to break it.
        seqs = [make_seq(i, prio, 0) for i, prio in enumerate(priorities)]
        for seq in seqs:
            queue.push(seq)
        drained = [queue.pop(0) for _ in range(len(queue))]
        by_priority = sorted(seqs, key=lambda s: s.request.priority)
        # sorted() is stable: within a priority class, original (push) order.
        assert drained == by_priority

    def test_list_compat_surface(self):
        policy = FifoPriorityPolicy()
        queue = WaitingQueue(policy.queue_key)
        assert not queue and len(queue) == 0
        seq = make_seq(0, 0, 0)
        queue.append(seq)  # list-compat alias
        queue.sort()  # no-op shim
        assert queue and queue[0] is seq
        try:
            queue.pop(1)
        except IndexError:
            pass
        else:  # pragma: no cover
            raise AssertionError("pop(1) must raise IndexError")
        assert queue.pop(0) is seq
        queue.push(seq)
        queue.clear()
        assert len(queue) == 0
